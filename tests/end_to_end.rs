//! Cross-crate integration: every benchmark, both execution modes, on the
//! full simulated stack.

use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{Benchmark, BenchmarkId, WorkloadClass};

/// Every benchmark runs to completion in both modes at n = 2, and
/// virtualization never loses (the paper's claim holds at every point we
/// can afford to test here).
#[test]
fn all_benchmarks_run_both_modes() {
    let sc = Scenario::default();
    for id in BenchmarkId::all() {
        let task = Benchmark::scaled_task(id, &sc.device, 64);
        let direct = sc.run_uniform(ExecutionMode::Direct, &task, 2);
        let virt = sc.run_uniform(ExecutionMode::Virtualized, &task, 2);
        assert_eq!(direct.runs.len(), 2, "{id:?}");
        assert_eq!(virt.runs.len(), 2, "{id:?}");
        assert!(
            virt.turnaround_ms < direct.turnaround_ms,
            "{id:?}: virtualized {:.1} ms should beat direct {:.1} ms",
            virt.turnaround_ms,
            direct.turnaround_ms
        );
        // The virtualized run must not switch contexts; the direct run
        // must switch exactly n-1 times.
        assert_eq!(virt.device.ctx_switches, 0, "{id:?}");
        assert_eq!(direct.device.ctx_switches, 1, "{id:?}");
    }
}

/// Compute-intensive small-grid benchmarks actually exercise concurrent
/// kernel execution under the GVM (the Fermi feature the paper leans on).
#[test]
fn small_grid_benchmarks_run_kernels_concurrently() {
    let sc = Scenario::default();
    for id in [BenchmarkId::Ep, BenchmarkId::Cg] {
        let task = Benchmark::scaled_task(id, &sc.device, 64);
        let virt = sc.run_uniform(ExecutionMode::Virtualized, &task, 4);
        assert!(
            virt.device.max_concurrent_kernels >= 2,
            "{id:?}: expected concurrent kernels, max was {}",
            virt.device.max_concurrent_kernels
        );
    }
}

/// Turnaround grows roughly linearly in n for the direct mode, with slope
/// at least the context-switch cost — Eq. (1)'s structure emerges from the
/// simulation rather than being baked in.
#[test]
fn direct_mode_slope_includes_switch_cost() {
    let sc = Scenario::default();
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 64);
    let t2 = sc
        .run_uniform(ExecutionMode::Direct, &task, 2)
        .turnaround_ms;
    let t4 = sc
        .run_uniform(ExecutionMode::Direct, &task, 4)
        .turnaround_ms;
    let slope = (t4 - t2) / 2.0;
    let switch_ms = task.ctx_switch_cost.as_millis_f64();
    assert!(
        slope > switch_ms,
        "per-task slope {slope:.1} ms must exceed the switch cost {switch_ms:.1} ms"
    );
}

/// The catalogue's classification matches each task's measured phase split
/// in a single-process direct run.
#[test]
fn classification_matches_measured_phases() {
    let sc = Scenario::default();
    for id in [
        BenchmarkId::VecAdd,
        BenchmarkId::Ep,
        BenchmarkId::Electrostatics,
    ] {
        let desc = Benchmark::describe(id);
        let task = Benchmark::scaled_task(id, &sc.device, 16);
        let r = sc.run_uniform(ExecutionMode::Direct, &task, 1);
        let run = &r.runs[0];
        let io = run.t_data_in() + run.t_data_out();
        let comp = run.t_comp();
        match desc.class {
            WorkloadClass::IoIntensive => {
                assert!(io > comp, "{id:?}: io {io:.3} vs comp {comp:.3}")
            }
            WorkloadClass::ComputeIntensive => {
                assert!(comp > io, "{id:?}: comp {comp:.3} vs io {io:.3}")
            }
            WorkloadClass::Intermediate => {}
        }
    }
}

/// Eight processes is the node's limit; the GVM serves all of them and the
/// group turnaround beats direct sharing by a solid factor for EP.
#[test]
fn full_node_ep_speedup() {
    let sc = Scenario::default();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &sc.device, 64);
    let direct = sc.run_uniform(ExecutionMode::Direct, &task, 8);
    let virt = sc.run_uniform(ExecutionMode::Virtualized, &task, 8);
    let speedup = direct.turnaround_ms / virt.turnaround_ms;
    assert!(
        speedup > 3.0,
        "EP speedup at 8 processes was only {speedup:.2}×"
    );
}

//! `gv-analyze` coverage for cluster placement traces.
//!
//! End-to-end: a real multi-device, multi-wave cluster run with gangs
//! emits `ClusterDevice`/`ClusterPlace`/`ClusterEvict` records and
//! analyzes clean under every placement policy. Corrupting that *same*
//! real stream — re-placing a resident session, or splitting a gang
//! across devices — produces exactly one diagnostic per seeded fault.
//! The dump format round-trips cluster records byte-for-byte.

use gvirt::analyze;
use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{Benchmark, BenchmarkId};
use gvirt::sim::{AnalysisRecord, Simulation};
use gvirt::virt::{Cluster, ClusterConfig, MemQuota, PlacePolicy, VgpuRequest};

/// Run a 2-device cluster with a mix of singletons and one 3-session
/// gang; returns the analysis records of the full run.
fn cluster_trace(policy: PlacePolicy) -> Vec<AnalysisRecord> {
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    tracer.set_analysis(true);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let devices: Vec<GpuDevice> = (0..2)
        .map(|_| GpuDevice::install(&mut sim, cfg.clone()))
        .collect();
    let cudas: Vec<CudaDevice> = devices.iter().map(|d| CudaDevice::new(d.clone())).collect();
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 400);
    let requests: Vec<VgpuRequest> = (0..6)
        .map(|i| VgpuRequest {
            id: i,
            // Gang members must share a tenant; singletons alternate.
            tenant: if i >= 3 { 1 } else { i % 2 },
            gang: (i >= 3).then_some(1),
            quota: MemQuota::Unlimited,
            task: task.clone(),
        })
        .collect();
    let handle = Cluster::install(
        &mut sim,
        &node,
        &cudas,
        ClusterConfig::new(policy),
        requests,
    )
    .expect("feasible placement");
    sim.run().unwrap();
    assert_eq!(handle.session_results().len(), 6);
    tracer.analysis_snapshot()
}

/// Every policy's real trace passes the co-residency checker, and the
/// cluster records are actually present and counted.
#[test]
fn fault_free_cluster_runs_analyze_clean() {
    for policy in PlacePolicy::all() {
        let records = cluster_trace(policy);
        let report = analyze::analyze(&records);
        assert!(
            report.is_clean(),
            "{policy}: diagnostics on a clean cluster run:\n{}",
            report.render()
        );
        // 2 device declarations + 6 places + 6 evicts.
        assert_eq!(report.cluster_events, 14, "{policy}");
    }
}

/// A multi-wave run (more sessions than one wave's kernel slots) also
/// analyzes clean: wave-1 placements land only after wave-0 evictions.
#[test]
fn multi_wave_cluster_run_analyzes_clean() {
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    tracer.set_analysis(true);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let slots = cfg.max_concurrent_kernels as u64;
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 400);
    let n = slots + 4; // overflows one device's slot capacity → 2 waves
    let requests: Vec<VgpuRequest> = (0..n)
        .map(|i| VgpuRequest {
            id: i,
            tenant: 0,
            gang: None,
            quota: MemQuota::Unlimited,
            task: task.clone(),
        })
        .collect();
    let handle = Cluster::install(
        &mut sim,
        &node,
        std::slice::from_ref(&cuda),
        ClusterConfig::new(PlacePolicy::Spread),
        requests,
    )
    .expect("feasible placement");
    sim.run().unwrap();
    assert_eq!(handle.plan.waves, 2);
    assert_eq!(handle.session_results().len() as u64, n);
    let report = analyze::analyze(&tracer.analysis_snapshot());
    assert!(
        report.is_clean(),
        "multi-wave run dirty:\n{}",
        report.render()
    );
}

/// Re-placing a still-resident session in a real trace yields exactly one
/// `double placement` diagnostic — the bogus placement is not charged, so
/// no cascade follows.
#[test]
fn seeded_double_placement_is_one_diagnostic() {
    let mut records = cluster_trace(PlacePolicy::Spread);
    let place_at = records
        .iter()
        .position(|r| matches!(r, AnalysisRecord::ClusterPlace { .. }))
        .expect("trace has placements");
    let mut dup = records[place_at].clone();
    if let AnalysisRecord::ClusterPlace { device, .. } = &mut dup {
        *device = (*device + 1) % 2; // re-placed on the *other* device
    }
    records.insert(place_at + 1, dup);

    let report = analyze::analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "want exactly the double placement:\n{}",
        report.render()
    );
    assert!(report.diagnostics[0].message.contains("double placement"));
}

/// Retargeting one gang member's placement (and its matching evict) in a
/// real trace yields exactly one `split gang` diagnostic.
#[test]
fn seeded_split_gang_is_one_diagnostic() {
    let mut records = cluster_trace(PlacePolicy::Gang);
    // Move the *last* gang member to the other device, evict included,
    // so the only inconsistency left is the split itself.
    let victim = records
        .iter()
        .filter_map(|r| match r {
            AnalysisRecord::ClusterPlace {
                vgpu,
                gang: Some(_),
                ..
            } => Some(*vgpu),
            _ => None,
        })
        .next_back()
        .expect("trace has a gang");
    for r in records.iter_mut() {
        match r {
            AnalysisRecord::ClusterPlace { vgpu, device, .. }
            | AnalysisRecord::ClusterEvict { vgpu, device, .. }
                if *vgpu == victim =>
            {
                *device = (*device + 1) % 2;
            }
            _ => {}
        }
    }

    let report = analyze::analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "want exactly the split gang:\n{}",
        report.render()
    );
    assert!(report.diagnostics[0].message.contains("split gang"));
}

/// Cluster records survive the line-oriented dump format: text → records
/// → identical report, and re-dumping is byte-stable.
#[test]
fn cluster_records_roundtrip_through_dump() {
    let records = cluster_trace(PlacePolicy::Drf);
    let dump = analyze::model::to_dump(&records);
    let parsed = analyze::model::parse_dump(&dump).expect("dump parses");
    assert_eq!(analyze::model::to_dump(&parsed), dump, "dump not stable");
    let a = analyze::analyze(&records);
    let b = analyze::analyze(&parsed);
    assert_eq!(a.diagnostics, b.diagnostics);
    assert_eq!(a.cluster_events, b.cluster_events);
    assert!(a.cluster_events >= 14);
}

//! Differential oracle for the GVM scheduling policies: whatever order a
//! policy dispatches streams in, every rank's *functional output* must be
//! bit-identical to the conventional direct-sharing baseline. Dispatch
//! order is a performance knob, never a semantic one.
//!
//! Each rank gets *distinct* input data, so any cross-rank routing mistake
//! a reordering policy could make (FCFS interleavings, SJF reordering,
//! partial adaptive batches) shows up as a byte mismatch, not a
//! coincidental pass.
//!
//! The file also pins the paper-faithful default: the `table3` artifact
//! regenerated under the refactored `JointFlush` path is bit-identical to
//! the checked-in golden `results/table3.csv` (full scale, `#[ignore]`d in
//! the quick tier; the CI `sched` job runs it release-mode).

use gvirt::gpu::DeviceConfig;
use gvirt::harness::repro;
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{blackscholes, ep, mm, vecadd, GpuTask};
use gvirt::sim::SimDuration;
use gvirt::virt::SchedPolicy;

/// The four policies under test, sized for an `n`-rank group.
fn policies(n: usize) -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::JointFlush,
        SchedPolicy::Fcfs,
        SchedPolicy::AdaptiveBatch {
            k: (n / 2).max(1),
            timeout: Some(SimDuration::from_micros(500)),
        },
        SchedPolicy::ShortestJobFirst,
    ]
}

/// Rank-distinct functional tasks for one benchmark family.
fn tasks_for(benchmark: &str, cfg: &DeviceConfig, n: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|rank| match benchmark {
            "vecadd" => {
                let a: Vec<f32> = (0..192).map(|i| (i * (rank + 1)) as f32 * 0.25).collect();
                let b: Vec<f32> = (0..192).map(|i| (i + rank * 1000) as f32).collect();
                vecadd::functional_task(cfg, &a, &b)
            }
            "ep" => ep::functional_task(cfg, 8 + (rank % 3) as u32),
            "mm" => {
                let dim = 8;
                let a: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 7 + rank * 13) % 17) as f32 - 8.0)
                    .collect();
                let b: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 3 + rank * 5) % 11) as f32 * 0.5)
                    .collect();
                mm::functional_task(cfg, &a, &b, dim)
            }
            "blackscholes" => {
                let (s, x, t) = blackscholes::generate_options(48, 7 + rank as u64);
                blackscholes::functional_task(cfg, &s, &x, &t)
            }
            other => panic!("unknown benchmark family {other}"),
        })
        .collect()
}

/// Outputs of one run, unwrapped (all these tasks are functional).
fn outputs(result: &gvirt::harness::scenario::ExperimentResult) -> Vec<Vec<u8>> {
    result
        .outputs
        .iter()
        .map(|o| o.clone().expect("functional task must produce output"))
        .collect()
}

/// Every policy × benchmark × N: virtualized outputs are bit-identical to
/// the direct baseline, rank by rank.
#[test]
fn all_policies_match_direct_baseline_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "ep", "mm", "blackscholes"] {
        for n in [2usize, 4, 8] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let baseline = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            for policy in policies(n) {
                let label = format!("{benchmark} n={n} policy={}", policy.name());
                let scenario = base.clone().with_scheduler(policy);
                let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
                assert_eq!(got.len(), baseline.len(), "{label}: rank count");
                for (rank, (g, want)) in got.iter().zip(&baseline).enumerate() {
                    assert_eq!(g, want, "{label}: rank {rank} output differs");
                }
            }
        }
    }
}

/// Staggered arrivals don't change results either: the reordering
/// policies dispatch early ranks alone, and every byte still matches.
#[test]
fn staggered_arrivals_preserve_outputs_under_every_policy() {
    let base = Scenario::default();
    let n = 4;
    let tasks = tasks_for("vecadd", &base.device, n);
    let baseline = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
    for policy in policies(n) {
        let label = format!("staggered policy={}", policy.name());
        let scenario = base
            .clone()
            .with_scheduler(policy)
            .with_stagger(SimDuration::from_micros(200));
        let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
        for (rank, (g, want)) in got.iter().zip(&baseline).enumerate() {
            assert_eq!(g, want, "{label}: rank {rank} output differs");
        }
    }
}

/// The default policy is still the paper's joint flush, so the headline
/// reproduction artifact is untouched by the scheduler refactor: a
/// full-scale `table3` regeneration is bit-identical to the golden CSV.
/// Full paper scale (≈20 s release, minutes debug) — the CI `sched` job
/// runs it with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full paper scale; run release-mode via the CI sched job"]
fn table3_golden_bit_identical_under_default_scheduler() {
    let artifact = repro::table3(&Scenario::default(), 1);
    let golden =
        std::fs::read_to_string("results/table3.csv").expect("golden results/table3.csv present");
    assert_eq!(
        artifact.csv, golden,
        "table3 CSV drifted from the checked-in golden"
    );
}

//! Iterating SPMD programs: multiple execution rounds under one VGPU
//! acquisition, barriered per round.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{vecadd, Benchmark, BenchmarkId};
use gvirt::sim::Simulation;
use gvirt::virt::{Gvm, GvmConfig, VgpuClient};
use parking_lot::Mutex;

#[test]
fn three_rounds_flush_three_times() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64);
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(2), vec![task; 2]);
    for rank in 0..2 {
        let handle = handle.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let _ = client.run_rounds(ctx, 3);
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    assert_eq!(handle.stats.lock().flushes, 3);
    // 2 ranks × 3 rounds × 1 kernel each.
    assert_eq!(device.stats().kernels_completed, 6);
    assert_eq!(device.stats().ctx_switches, 0);
}

/// Shaped multi-round sessions keep the steady-state overlap: when
/// per-round `bytes_in` changes shape, the double-buffered prefetch
/// re-plans at each round's own size instead of falling back to serial
/// staging — prefetches still happen, and each round's staged bytes track
/// the declared shape.
#[test]
fn shape_changing_rounds_keep_the_steady_prefetch() {
    use gvirt::harness::scenario::{ExecutionMode, Scenario};
    use gvirt::kernels::{Benchmark, BenchmarkId};
    use gvirt::virt::MemConfig;

    let base = Scenario::default();
    let uniform = Benchmark::scaled_task(BenchmarkId::VecAdd, &base.device, 64);
    let bytes = uniform.bytes_in;
    // Rounds stage full, half, then quarter payloads (all within the
    // boot-time shm/device sizing, which provisions for the max).
    let shaped = uniform
        .clone()
        .with_round_shape(vec![bytes, bytes / 2, bytes / 4]);
    assert_eq!(shaped.max_bytes_in(), bytes);
    assert_eq!(shaped.bytes_in_for_round(2), bytes / 4);
    assert_eq!(shaped.bytes_in_for_round(9), bytes, "past-end falls back");

    let steady = base
        .clone()
        .with_mem(MemConfig::adaptive(4, 64).with_steady())
        .with_rounds(3);
    let r = steady.run(ExecutionMode::Virtualized, vec![shaped.clone(); 2]);
    let gvm = r.gvm.expect("virtualized run has GVM stats");
    assert!(
        gvm.steady_prefetches > 0,
        "shape-changing session must keep prefetching (not fall back to serial)"
    );
    // Same prefetch count as the uniform-shape session: the shape changes
    // the staged sizes, never the schedule structure.
    let u = steady.run(ExecutionMode::Virtualized, vec![uniform; 2]);
    let ugvm = u.gvm.expect("virtualized run has GVM stats");
    assert_eq!(gvm.steady_prefetches, ugvm.steady_prefetches);
    assert_eq!(gvm.snd_copies, ugvm.snd_copies);
}

/// Functional multi-round: the final round's output is correct even though
/// the same device buffers were reused every round.
#[test]
fn functional_output_survives_round_reuse() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..128).map(|i| (i * 3) as f32).collect();
    let task = vecadd::functional_task(&cfg, &a, &b);
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(1), vec![task]);
    let out: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    {
        let handle = handle.clone();
        let out = out.clone();
        node.spawn_pinned(&mut sim, 0, "spmd-0", move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, 0);
            let (_, o) = client.run_rounds(ctx, 4);
            *out.lock() = o;
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    let bytes = out.lock().take().expect("functional output");
    assert_eq!(vecadd::decode_output(&bytes), vecadd::reference(&a, &b));
}

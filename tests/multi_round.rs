//! Iterating SPMD programs: multiple execution rounds under one VGPU
//! acquisition, barriered per round.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{vecadd, Benchmark, BenchmarkId};
use gvirt::sim::Simulation;
use gvirt::virt::{Gvm, GvmConfig, VgpuClient};
use parking_lot::Mutex;

#[test]
fn three_rounds_flush_three_times() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64);
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(2), vec![task; 2]);
    for rank in 0..2 {
        let handle = handle.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let _ = client.run_rounds(ctx, 3);
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    assert_eq!(handle.stats.lock().flushes, 3);
    // 2 ranks × 3 rounds × 1 kernel each.
    assert_eq!(device.stats().kernels_completed, 6);
    assert_eq!(device.stats().ctx_switches, 0);
}

/// Functional multi-round: the final round's output is correct even though
/// the same device buffers were reused every round.
#[test]
fn functional_output_survives_round_reuse() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..128).map(|i| (i * 3) as f32).collect();
    let task = vecadd::functional_task(&cfg, &a, &b);
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(1), vec![task]);
    let out: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    {
        let handle = handle.clone();
        let out = out.clone();
        node.spawn_pinned(&mut sim, 0, "spmd-0", move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, 0);
            let (_, o) = client.run_rounds(ctx, 4);
            *out.lock() = o;
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    let bytes = out.lock().take().expect("functional output");
    assert_eq!(vecadd::decode_output(&bytes), vecadd::reference(&a, &b));
}

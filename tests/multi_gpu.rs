//! Multi-GPU nodes (extension): one GVM, several devices, ranks assigned
//! round-robin — the client protocol is untouched.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{Benchmark, BenchmarkId, GpuTask};
use gvirt::sim::Simulation;
use gvirt::virt::{Gvm, GvmConfig, VgpuClient};
use parking_lot::Mutex;

/// Run `n` ranks of `task` over `ngpus` devices; returns (makespan_ms,
/// per-device kernel counts).
fn run(task: &GpuTask, n: usize, ngpus: usize) -> (f64, Vec<u64>) {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let devices: Vec<GpuDevice> = (0..ngpus)
        .map(|_| GpuDevice::install(&mut sim, cfg.clone()))
        .collect();
    let cudas: Vec<CudaDevice> = devices.iter().map(|d| CudaDevice::new(d.clone())).collect();
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let handle = Gvm::install_multi(
        &mut sim,
        &node,
        &cudas,
        GvmConfig::new(n),
        vec![task.clone(); n],
    );
    let spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let spans = spans.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (r, _) = client.run_task(ctx);
            spans.lock().push((r.start.as_nanos(), r.end.as_nanos()));
        })
        .unwrap();
    }
    let h = handle.clone();
    let devs = devices.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        for d in &devs {
            d.shutdown(ctx);
        }
    });
    sim.run().unwrap();
    let spans = spans.lock();
    let start = spans.iter().map(|s| s.0).min().unwrap();
    let end = spans.iter().map(|s| s.1).max().unwrap();
    let counts = devices
        .iter()
        .map(|d| d.stats().kernels_completed)
        .collect();
    ((end - start) as f64 / 1e6, counts)
}

/// A GPU-saturating workload on 4 ranks: two GPUs nearly halve the
/// makespan relative to one.
#[test]
fn two_gpus_halve_saturating_makespan() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    // Electrostatics saturates the device → no concurrency headroom on a
    // single GPU; a second GPU is the only way to scale.
    let task = Benchmark::scaled_task(BenchmarkId::Electrostatics, &cfg, 8);
    let (t1, _) = run(&task, 4, 1);
    let (t2, counts) = run(&task, 4, 2);
    let ratio = t1 / t2;
    assert!(
        ratio > 1.7,
        "2 GPUs should nearly halve the makespan: {t1:.1} ms → {t2:.1} ms ({ratio:.2}×)"
    );
    // Round-robin: both devices did half the kernels.
    assert_eq!(counts.len(), 2);
    assert_eq!(counts[0], counts[1]);
}

/// Ranks map round-robin onto devices.
#[test]
fn ranks_distribute_round_robin() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64);
    let (_, counts) = run(&task, 6, 3);
    // 6 ranks × 1 kernel over 3 devices → 2 kernels each.
    assert_eq!(counts, vec![2, 2, 2]);
}

//! Multi-GPU nodes through the cluster placement front-end, plus the
//! one-device differential: a cluster of one device is *bit-identical* to
//! the direct single-GVM path under every placement policy.

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{Benchmark, BenchmarkId, GpuTask};
use gvirt::prelude::{ExecutionMode, Scenario};
use gvirt::sim::{SimDuration, Simulation};
use gvirt::virt::{Cluster, ClusterConfig, MemQuota, PlacePolicy, VgpuRequest};

/// Run `n` single-tenant sessions of `task` over `ngpus` devices under
/// `policy`; returns (makespan_ms, per-device kernel counts).
fn run_cluster(task: &GpuTask, n: usize, ngpus: usize, policy: PlacePolicy) -> (f64, Vec<u64>) {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let devices: Vec<GpuDevice> = (0..ngpus)
        .map(|_| GpuDevice::install(&mut sim, cfg.clone()))
        .collect();
    let cudas: Vec<CudaDevice> = devices.iter().map(|d| CudaDevice::new(d.clone())).collect();
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let requests: Vec<VgpuRequest> = (0..n)
        .map(|i| VgpuRequest {
            id: i as u64,
            tenant: 0,
            gang: None,
            quota: MemQuota::Unlimited,
            task: task.clone(),
        })
        .collect();
    let handle = Cluster::install(
        &mut sim,
        &node,
        &cudas,
        ClusterConfig::new(policy),
        requests,
    )
    .expect("feasible placement");
    sim.run().unwrap();
    let sessions = handle.session_results();
    assert_eq!(sessions.len(), n, "every session must report");
    let start = sessions.iter().map(|s| s.run.start).min().unwrap();
    let end = sessions.iter().map(|s| s.run.end).max().unwrap();
    let counts = devices
        .iter()
        .map(|d| d.stats().kernels_completed)
        .collect();
    (end.duration_since(start).as_millis_f64(), counts)
}

/// A GPU-saturating workload on 4 ranks: spreading over two GPUs nearly
/// halves the makespan relative to one.
#[test]
fn two_gpus_halve_saturating_makespan() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    // Electrostatics saturates the device → no concurrency headroom on a
    // single GPU; a second GPU is the only way to scale.
    let task = Benchmark::scaled_task(BenchmarkId::Electrostatics, &cfg, 8);
    let (t1, _) = run_cluster(&task, 4, 1, PlacePolicy::Spread);
    let (t2, counts) = run_cluster(&task, 4, 2, PlacePolicy::Spread);
    let ratio = t1 / t2;
    assert!(
        ratio > 1.7,
        "2 GPUs should nearly halve the makespan: {t1:.1} ms → {t2:.1} ms ({ratio:.2}×)"
    );
    // Spread balances: both devices did half the kernels.
    assert_eq!(counts.len(), 2);
    assert_eq!(counts[0], counts[1]);
}

/// Spread placement balances sessions across devices.
#[test]
fn spread_balances_sessions_across_devices() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64);
    let (_, counts) = run_cluster(&task, 6, 3, PlacePolicy::Spread);
    // 6 sessions × 1 kernel over 3 devices → 2 kernels each.
    assert_eq!(counts, vec![2, 2, 2]);
}

/// BinPack placement consolidates: sessions that fit together land on the
/// first device and the others stay idle.
#[test]
fn binpack_consolidates_on_first_device() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64);
    let (_, counts) = run_cluster(&task, 4, 3, PlacePolicy::BinPack);
    assert_eq!(counts, vec![4, 0, 0]);
}

// ---------------------------------------------------------------------------
// One-device differential: cluster front-end ≡ direct single-GVM path
// ---------------------------------------------------------------------------

/// Assert two experiment results are bitwise identical: every per-rank
/// protocol timestamp, every functional output, and the turnaround.
fn assert_bit_identical(
    direct: &gvirt::harness::scenario::ExperimentResult,
    cluster: &gvirt::harness::scenario::ExperimentResult,
    what: &str,
) {
    assert_eq!(direct.runs, cluster.runs, "{what}: TaskRun streams differ");
    assert_eq!(direct.outputs, cluster.outputs, "{what}: outputs differ");
    assert_eq!(
        direct.turnaround_ms.to_bits(),
        cluster.turnaround_ms.to_bits(),
        "{what}: turnaround differs"
    );
    assert_eq!(
        direct.device.kernels_completed, cluster.device.kernels_completed,
        "{what}: kernel counts differ"
    );
}

/// Every policy on a one-device cluster is bit-identical to the direct
/// single-GVM path: same per-rank timestamps, same outputs.
#[test]
fn one_device_cluster_is_bit_identical_for_every_policy() {
    let sc = Scenario::default();
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 100);
    for n in [1, 4, 8] {
        let direct = sc.run_uniform(ExecutionMode::Virtualized, &task, n);
        for policy in PlacePolicy::all() {
            let routed =
                sc.clone()
                    .with_cluster(policy)
                    .run_uniform(ExecutionMode::Virtualized, &task, n);
            assert_bit_identical(&direct, &routed, &format!("{policy} n={n}"));
        }
    }
}

/// The differential holds with staggered arrivals, multiple rounds, and a
/// non-default scheduler — the front-end adds no simulated-time cost on
/// any code path.
#[test]
fn one_device_differential_survives_stagger_rounds_and_scheduler() {
    let sc = Scenario::default()
        .with_scheduler(gvirt::virt::SchedPolicy::Fcfs)
        .with_stagger(SimDuration::from_millis(3))
        .with_rounds(3);
    let task = Benchmark::scaled_task(BenchmarkId::BlackScholes, &sc.device, 200);
    let direct = sc.run_uniform(ExecutionMode::Virtualized, &task, 6);
    for policy in PlacePolicy::all() {
        let routed =
            sc.clone()
                .with_cluster(policy)
                .run_uniform(ExecutionMode::Virtualized, &task, 6);
        assert_bit_identical(&direct, &routed, &format!("{policy} staggered"));
    }
}

/// Heterogeneous tasks keep the differential too (per-rank task tables are
/// forwarded to the single (device, wave) GVM in slot order).
#[test]
fn one_device_differential_with_heterogeneous_tasks() {
    let sc = Scenario::default();
    let tasks: Vec<GpuTask> = [
        (BenchmarkId::VecAdd, 100),
        (BenchmarkId::Ep, 64),
        (BenchmarkId::BlackScholes, 200),
        (BenchmarkId::VecAdd, 200),
    ]
    .iter()
    .map(|&(id, s)| Benchmark::scaled_task(id, &sc.device, s))
    .collect();
    let direct = sc.run(ExecutionMode::Virtualized, tasks.clone());
    for policy in PlacePolicy::all() {
        let routed = sc
            .clone()
            .with_cluster(policy)
            .run(ExecutionMode::Virtualized, tasks.clone());
        assert_bit_identical(&direct, &routed, &format!("{policy} heterogeneous"));
    }
}

// ---------------------------------------------------------------------------
// Golden: Table III through a one-device cluster
// ---------------------------------------------------------------------------

/// Scaled-down Table III: routing through the cluster front-end leaves the
/// artifact bit-identical to the direct path (fast proxy for the golden).
#[test]
fn table3_artifact_matches_direct_path_through_cluster() {
    use gvirt::harness::repro;
    let direct = repro::table3(&Scenario::default(), 64);
    for policy in PlacePolicy::all() {
        let routed = repro::table3(&Scenario::default().with_cluster(policy), 64);
        assert_eq!(
            direct.csv, routed.csv,
            "table3 CSV differs through a 1-device {policy} cluster"
        );
    }
}

/// Full paper scale: Table III regenerated through a one-device cluster is
/// bit-identical to the checked-in golden CSV (CI `cluster` job runs it
/// release-mode with `--ignored`).
#[test]
#[ignore = "full paper scale; run release-mode via the CI cluster job"]
fn table3_golden_bit_identical_through_cluster() {
    use gvirt::harness::repro;
    let golden =
        std::fs::read_to_string("results/table3.csv").expect("golden results/table3.csv present");
    let artifact = repro::table3(&Scenario::default().with_cluster(PlacePolicy::BinPack), 1);
    assert_eq!(
        artifact.csv, golden,
        "table3 CSV drifted from the golden when routed through the cluster front-end"
    );
}

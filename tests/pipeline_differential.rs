//! Differential oracle for the gv-mem buffer-lifecycle layer: chunked,
//! pooled staging is a performance knob, never a semantic one. Every
//! benchmark family × group size must produce rank-by-rank bit-identical
//! functional output whether payloads move as one serial span or as
//! interleaved chunks through recycled pool buffers, and both must match
//! the conventional direct-sharing baseline.
//!
//! The file also pins two invariants the refactor must preserve:
//! * `SND` and `RCV` staging share one span-wise path, so equal payloads
//!   charge the GVM equal `copy_time` in both directions;
//! * the default (chunking-off) configuration leaves the paper-faithful
//!   `table3` artifact bit-identical to the checked-in golden CSV.

use gvirt::gpu::{DeviceConfig, KernelDesc};
use gvirt::harness::repro;
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{blackscholes, ep, mm, vecadd, GpuTask, KernelTemplate};
use gvirt::sim::SimDuration;
use gvirt::virt::MemConfig;

/// Chunked configurations under test: a 64-byte threshold makes even the
/// small functional payloads split, at several chunk counts.
fn mem_configs() -> Vec<(String, MemConfig)> {
    let mut v = vec![("serial".to_string(), MemConfig::default())];
    for k in [2usize, 3, 8] {
        v.push((format!("chunked-{k}"), MemConfig::pipelined(k, 64)));
    }
    v
}

/// Rank-distinct functional tasks for one benchmark family.
fn tasks_for(benchmark: &str, cfg: &DeviceConfig, n: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|rank| match benchmark {
            "vecadd" => {
                let a: Vec<f32> = (0..192).map(|i| (i * (rank + 1)) as f32 * 0.25).collect();
                let b: Vec<f32> = (0..192).map(|i| (i + rank * 1000) as f32).collect();
                vecadd::functional_task(cfg, &a, &b)
            }
            "ep" => ep::functional_task(cfg, 8 + (rank % 3) as u32),
            "mm" => {
                let dim = 8;
                let a: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 7 + rank * 13) % 17) as f32 - 8.0)
                    .collect();
                let b: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 3 + rank * 5) % 11) as f32 * 0.5)
                    .collect();
                mm::functional_task(cfg, &a, &b, dim)
            }
            "blackscholes" => {
                let (s, x, t) = blackscholes::generate_options(48, 7 + rank as u64);
                blackscholes::functional_task(cfg, &s, &x, &t)
            }
            other => panic!("unknown benchmark family {other}"),
        })
        .collect()
}

/// Outputs of one run, unwrapped (all these tasks are functional).
fn outputs(result: &gvirt::harness::scenario::ExperimentResult) -> Vec<Vec<u8>> {
    result
        .outputs
        .iter()
        .map(|o| o.clone().expect("functional task must produce output"))
        .collect()
}

/// Every mem config × benchmark × N: virtualized outputs are bit-identical
/// to the direct baseline, rank by rank — chunk boundaries and pool reuse
/// never leak into results.
#[test]
fn chunked_and_pooled_match_direct_baseline_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "ep", "mm", "blackscholes"] {
        for n in [2usize, 4, 8] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let baseline = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            for (label, mem) in mem_configs() {
                let scenario = base.clone().with_mem(mem);
                let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
                assert_eq!(
                    got.len(),
                    baseline.len(),
                    "{benchmark} n={n} {label}: ranks"
                );
                for (rank, (g, want)) in got.iter().zip(&baseline).enumerate() {
                    assert_eq!(
                        g, want,
                        "{benchmark} n={n} {label}: rank {rank} output differs"
                    );
                }
            }
        }
    }
}

/// Chunked mode really chunks (the matrix above isn't vacuous) and keeps
/// turnaround identical to serial staging for these sub-threshold-scale
/// workloads only where the model says so — here we only pin that stats
/// prove the chunked path was exercised.
#[test]
fn chunked_matrix_exercises_the_chunked_path() {
    let base = Scenario::default();
    let tasks = tasks_for("vecadd", &base.device, 2);
    let scenario = base.clone().with_mem(MemConfig::pipelined(3, 64));
    let r = scenario.run(ExecutionMode::Virtualized, tasks);
    let gvm = r.gvm.expect("virtualized run has GVM stats");
    assert!(gvm.chunked_transfers > 0, "no transfer was chunked");
    assert!(gvm.chunks_submitted >= gvm.chunked_transfers * 3);
}

/// A timing-only task with the given payload shape: one trivial kernel,
/// `bytes_in` staged in, `bytes_out` staged out.
fn payload_only_task(bytes_in: u64, bytes_out: u64) -> GpuTask {
    GpuTask {
        name: "payload".into(),
        class: gvirt::kernels::WorkloadClass::IoIntensive,
        ctx_switch_cost: SimDuration::ZERO,
        device_bytes: (bytes_in + bytes_out).max(1),
        iterations: 1,
        bytes_in,
        input: None,
        bytes_out,
        d2h_offset: bytes_in,
        kernels: vec![KernelTemplate::timing(KernelDesc::new("noop", 1, 32))],
    }
}

/// The deduped staging path charges the same `copy_time` for a payload
/// whichever direction it moves: an input-only task and an output-only
/// task of equal size cost the GVM the same staging time.
#[test]
fn snd_and_rcv_staging_cost_the_same_for_equal_payloads() {
    let base = Scenario::default();
    let payload = 3 << 20;
    let run = |task: GpuTask| {
        let r = base.run_uniform(ExecutionMode::Virtualized, &task, 4);
        let gvm = r.gvm.expect("virtualized run has GVM stats");
        (gvm.copy_time, gvm.snd_copies, gvm.rcv_copies)
    };
    let (in_time, in_snd, in_rcv) = run(payload_only_task(payload, 0));
    let (out_time, out_snd, out_rcv) = run(payload_only_task(0, payload));
    assert_eq!((in_snd, in_rcv), (4, 0));
    assert_eq!((out_snd, out_rcv), (0, 4));
    assert_eq!(
        in_time.as_nanos(),
        out_time.as_nanos(),
        "SND and RCV staging must charge identical copy_time for identical payloads"
    );
    // And chunking doesn't change the total staged-byte cost either way.
    let chunked = base.clone().with_mem(MemConfig::pipelined(4, 64));
    let rc = chunked.run_uniform(
        ExecutionMode::Virtualized,
        &payload_only_task(payload, 0),
        4,
    );
    let cc = chunked.run_uniform(
        ExecutionMode::Virtualized,
        &payload_only_task(0, payload),
        4,
    );
    assert_eq!(
        rc.gvm.expect("stats").copy_time.as_nanos(),
        cc.gvm.expect("stats").copy_time.as_nanos(),
        "chunked SND/RCV staging symmetry"
    );
}

/// The default configuration (pool on, chunking off) leaves the headline
/// reproduction artifact untouched: a full-scale `table3` regeneration is
/// bit-identical to the golden CSV. Full paper scale (≈20 s release) — the
/// CI `pipeline` job runs it with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full paper scale; run release-mode via the CI pipeline job"]
fn table3_golden_bit_identical_under_default_mem_config() {
    let artifact = repro::table3(&Scenario::default(), 1);
    let golden =
        std::fs::read_to_string("results/table3.csv").expect("golden results/table3.csv present");
    assert_eq!(
        artifact.csv, golden,
        "table3 CSV drifted from the checked-in golden"
    );
}

//! Differential oracle for the gv-mem buffer-lifecycle layer: chunked,
//! pooled staging is a performance knob, never a semantic one. Every
//! benchmark family × group size must produce rank-by-rank bit-identical
//! functional output whether payloads move as one serial span or as
//! interleaved chunks through recycled pool buffers, and both must match
//! the conventional direct-sharing baseline.
//!
//! The file also pins two invariants the refactor must preserve:
//! * `SND` and `RCV` staging share one span-wise path, so equal payloads
//!   charge the GVM equal `copy_time` in both directions;
//! * the default (chunking-off) configuration leaves the paper-faithful
//!   `table3` artifact bit-identical to the checked-in golden CSV.

use gvirt::gpu::{DeviceConfig, KernelDesc};
use gvirt::harness::repro;
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{blackscholes, ep, mm, vecadd, GpuTask, KernelTemplate};
use gvirt::mem::{AdaptiveChooser, PipelineConfig};
use gvirt::sim::SimDuration;
use gvirt::virt::MemConfig;
use proptest::prelude::*;

/// Chunked configurations under test: a 64-byte threshold makes even the
/// small functional payloads split, at several chunk counts.
fn mem_configs() -> Vec<(String, MemConfig)> {
    let mut v = vec![("serial".to_string(), MemConfig::default())];
    for k in [2usize, 3, 8] {
        v.push((format!("chunked-{k}"), MemConfig::pipelined(k, 64)));
    }
    v
}

/// The adaptive-k / steady-state matrix layered on top: model-driven chunk
/// counts, iteration-overlapped prefetch, and the first-round-only
/// ablation schedule must all stay semantics-free too.
fn steady_configs() -> Vec<(String, MemConfig)> {
    let mut v = Vec::new();
    for cap in [2usize, 4, 8] {
        v.push((format!("adaptive-{cap}"), MemConfig::adaptive(cap, 64)));
        v.push((
            format!("adaptive-{cap}-steady"),
            MemConfig::adaptive(cap, 64).with_steady(),
        ));
    }
    v.push((
        "chunked-4-steady".to_string(),
        MemConfig::pipelined(4, 64).with_steady(),
    ));
    v.push((
        "first-round-only".to_string(),
        MemConfig::pipelined(4, 64).with_first_round_only(),
    ));
    v
}

/// Rank-distinct functional tasks for one benchmark family.
fn tasks_for(benchmark: &str, cfg: &DeviceConfig, n: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|rank| match benchmark {
            "vecadd" => {
                let a: Vec<f32> = (0..192).map(|i| (i * (rank + 1)) as f32 * 0.25).collect();
                let b: Vec<f32> = (0..192).map(|i| (i + rank * 1000) as f32).collect();
                vecadd::functional_task(cfg, &a, &b)
            }
            "ep" => ep::functional_task(cfg, 8 + (rank % 3) as u32),
            "mm" => {
                let dim = 8;
                let a: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 7 + rank * 13) % 17) as f32 - 8.0)
                    .collect();
                let b: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 3 + rank * 5) % 11) as f32 * 0.5)
                    .collect();
                mm::functional_task(cfg, &a, &b, dim)
            }
            "blackscholes" => {
                let (s, x, t) = blackscholes::generate_options(48, 7 + rank as u64);
                blackscholes::functional_task(cfg, &s, &x, &t)
            }
            other => panic!("unknown benchmark family {other}"),
        })
        .collect()
}

/// Outputs of one run, unwrapped (all these tasks are functional).
fn outputs(result: &gvirt::harness::scenario::ExperimentResult) -> Vec<Vec<u8>> {
    result
        .outputs
        .iter()
        .map(|o| o.clone().expect("functional task must produce output"))
        .collect()
}

/// Every mem config × benchmark × N: virtualized outputs are bit-identical
/// to the direct baseline, rank by rank — chunk boundaries and pool reuse
/// never leak into results.
#[test]
fn chunked_and_pooled_match_direct_baseline_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "ep", "mm", "blackscholes"] {
        for n in [2usize, 4, 8] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let baseline = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            for (label, mem) in mem_configs() {
                let scenario = base.clone().with_mem(mem);
                let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
                assert_eq!(
                    got.len(),
                    baseline.len(),
                    "{benchmark} n={n} {label}: ranks"
                );
                for (rank, (g, want)) in got.iter().zip(&baseline).enumerate() {
                    assert_eq!(
                        g, want,
                        "{benchmark} n={n} {label}: rank {rank} output differs"
                    );
                }
            }
        }
    }
}

/// Steady state is a scheduling change, never a data change: every rank
/// repeating its SND→STR→STP→RCV cycle for several rounds inside one
/// session — with iteration-overlapped prefetch, adaptive chunk counts,
/// or the first-round-only ablation — produces output bit-identical to
/// the single-round direct baseline (each round recomputes the same
/// result, so the last round's RCV must match round one's).
#[test]
fn multi_round_steady_state_matches_direct_baseline_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "mm"] {
        for n in [2usize, 4] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let baseline = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            for rounds in [2u32, 3] {
                for (label, mem) in steady_configs() {
                    let scenario = base.clone().with_mem(mem).with_rounds(rounds);
                    let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
                    assert_eq!(got.len(), baseline.len(), "{benchmark} n={n} {label}");
                    for (rank, (g, want)) in got.iter().zip(&baseline).enumerate() {
                        assert_eq!(
                            g, want,
                            "{benchmark} n={n} rounds={rounds} {label}: \
                             rank {rank} output differs"
                        );
                    }
                }
            }
        }
    }
}

/// The steady-state matrix really prefetches (it isn't just re-running the
/// per-round path): a multi-round steady run reports pre-issued uploads,
/// and the first-round-only ablation reports none.
#[test]
fn steady_matrix_exercises_the_prefetch_path() {
    let base = Scenario::default();
    let tasks = tasks_for("vecadd", &base.device, 2);
    let steady = base
        .clone()
        .with_mem(MemConfig::pipelined(3, 64).with_steady())
        .with_rounds(3);
    let r = steady.run(ExecutionMode::Virtualized, tasks.clone());
    let gvm = r.gvm.expect("virtualized run has GVM stats");
    assert!(
        gvm.steady_prefetches > 0,
        "multi-round steady run must pre-issue next-round uploads"
    );
    let ablated = base
        .clone()
        .with_mem(MemConfig::pipelined(3, 64).with_first_round_only())
        .with_rounds(3);
    let r = ablated.run(ExecutionMode::Virtualized, tasks);
    let gvm = r.gvm.expect("virtualized run has GVM stats");
    assert_eq!(
        gvm.steady_prefetches, 0,
        "the ablation schedule never pre-issues"
    );
}

/// Chunked mode really chunks (the matrix above isn't vacuous) and keeps
/// turnaround identical to serial staging for these sub-threshold-scale
/// workloads only where the model says so — here we only pin that stats
/// prove the chunked path was exercised.
#[test]
fn chunked_matrix_exercises_the_chunked_path() {
    let base = Scenario::default();
    let tasks = tasks_for("vecadd", &base.device, 2);
    let scenario = base.clone().with_mem(MemConfig::pipelined(3, 64));
    let r = scenario.run(ExecutionMode::Virtualized, tasks);
    let gvm = r.gvm.expect("virtualized run has GVM stats");
    assert!(gvm.chunked_transfers > 0, "no transfer was chunked");
    assert!(gvm.chunks_submitted >= gvm.chunked_transfers * 3);
}

/// A timing-only task with the given payload shape: one trivial kernel,
/// `bytes_in` staged in, `bytes_out` staged out.
fn payload_only_task(bytes_in: u64, bytes_out: u64) -> GpuTask {
    GpuTask {
        name: "payload".into(),
        class: gvirt::kernels::WorkloadClass::IoIntensive,
        ctx_switch_cost: SimDuration::ZERO,
        device_bytes: (bytes_in + bytes_out).max(1),
        iterations: 1,
        bytes_in,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out,
        d2h_offset: bytes_in,
        kernels: vec![KernelTemplate::timing(KernelDesc::new("noop", 1, 32))],
    }
}

/// The deduped staging path charges the same `copy_time` for a payload
/// whichever direction it moves: an input-only task and an output-only
/// task of equal size cost the GVM the same staging time.
#[test]
fn snd_and_rcv_staging_cost_the_same_for_equal_payloads() {
    let base = Scenario::default();
    let payload = 3 << 20;
    let run = |task: GpuTask| {
        let r = base.run_uniform(ExecutionMode::Virtualized, &task, 4);
        let gvm = r.gvm.expect("virtualized run has GVM stats");
        (gvm.copy_time, gvm.snd_copies, gvm.rcv_copies)
    };
    let (in_time, in_snd, in_rcv) = run(payload_only_task(payload, 0));
    let (out_time, out_snd, out_rcv) = run(payload_only_task(0, payload));
    assert_eq!((in_snd, in_rcv), (4, 0));
    assert_eq!((out_snd, out_rcv), (0, 4));
    assert_eq!(
        in_time.as_nanos(),
        out_time.as_nanos(),
        "SND and RCV staging must charge identical copy_time for identical payloads"
    );
    // And chunking doesn't change the total staged-byte cost either way.
    let chunked = base.clone().with_mem(MemConfig::pipelined(4, 64));
    let rc = chunked.run_uniform(
        ExecutionMode::Virtualized,
        &payload_only_task(payload, 0),
        4,
    );
    let cc = chunked.run_uniform(
        ExecutionMode::Virtualized,
        &payload_only_task(0, payload),
        4,
    );
    assert_eq!(
        rc.gvm.expect("stats").copy_time.as_nanos(),
        cc.gvm.expect("stats").copy_time.as_nanos(),
        "chunked SND/RCV staging symmetry"
    );
}

/// The default configuration (pool on, chunking off) leaves the headline
/// reproduction artifact untouched: a full-scale `table3` regeneration is
/// bit-identical to the golden CSV. Full paper scale (≈20 s release) — the
/// CI `pipeline` job runs it with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full paper scale; run release-mode via the CI pipeline job"]
fn table3_golden_bit_identical_under_default_mem_config() {
    let artifact = repro::table3(&Scenario::default(), 1);
    let golden =
        std::fs::read_to_string("results/table3.csv").expect("golden results/table3.csv present");
    assert_eq!(
        artifact.csv, golden,
        "table3 CSV drifted from the checked-in golden"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over random model rates, per-chunk overheads, caps, thresholds, and
    /// EWMA histories: the adaptive chooser is monotone in payload size
    /// (more bytes never mean fewer chunks — the pipeline win only grows)
    /// and the chosen `k` always lands in `[1, cap]`.
    #[test]
    fn adaptive_chooser_is_monotone_in_payload_and_never_exceeds_cap(
        cap in 1usize..=16,
        threshold_kib in 1u64..=1024,
        stage_cns in 1u64..=400,   // seed staging rate, ns/byte × 100
        xfer_cns in 1u64..=400,    // H2D rate, ns/byte × 100
        overhead_us in 1u64..=500, // fixed per-chunk overhead, µs
        obs_cns in 0u64..=800,     // observed staging rate, ns/byte × 100
        obs_count in 0u64..=16,
    ) {
        let chooser = AdaptiveChooser::new(
            stage_cns as f64 / 100.0,
            xfer_cns as f64 / 100.0,
            overhead_us as f64 * 1000.0,
        );
        for _ in 0..obs_count {
            // One representative 1 MiB staging sample per observation.
            chooser.observe_stage(1 << 20, (obs_cns << 20) / 100);
        }
        let cfg = PipelineConfig::adaptive(cap, threshold_kib << 10);
        let mut prev = 0u64;
        for shift in 10..=30 {
            let payload = 1u64 << shift; // 1 KiB .. 1 GiB
            let k = chooser.choose(payload, &cfg);
            prop_assert!(k >= 1, "k must be positive, got {} at {} B", k, payload);
            prop_assert!(
                k <= cap as u64,
                "cap {} exceeded at {} B: k = {}", cap, payload, k
            );
            if payload < cfg.threshold {
                prop_assert_eq!(k, 1, "sub-threshold payloads stay serial");
            } else {
                prop_assert!(
                    k >= prev,
                    "k dropped from {} to {} at {} B", prev, k, payload
                );
                prev = k;
            }
        }
    }

    /// Fixed (non-adaptive) configs obey the same bounds through the same
    /// entry point, and the first-round-only ablation flag never changes
    /// what the chooser itself returns (the schedule is the GVM's job).
    #[test]
    fn fixed_k_respects_threshold_and_cap(
        cap in 1usize..=16,
        threshold_kib in 1u64..=1024,
        payload_kib in 1u64..=(1 << 20),
    ) {
        let chooser = AdaptiveChooser::new(0.078, 0.125, 150_000.0);
        let payload = payload_kib << 10;
        let cfg = PipelineConfig::chunked(cap, threshold_kib << 10);
        let k = chooser.choose(payload, &cfg);
        prop_assert!((1..=cap as u64).contains(&k));
        if payload < cfg.threshold {
            prop_assert_eq!(k, 1);
        }
        let ablated = cfg.with_first_round_only();
        prop_assert_eq!(chooser.choose(payload, &ablated), k);
    }
}

//! Property tests across the whole virtualization stack: for arbitrary
//! per-rank task shapes, the GVM protocol completes cleanly, returns
//! right-sized outputs, never switches contexts, and never loses to the
//! baseline by more than the bounded per-task messaging overhead.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{CostSpec, DeviceConfig, GpuDevice, KernelDesc};
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{GpuTask, KernelTemplate, WorkloadClass};
use gvirt::sim::SimDuration;
use parking_lot::Mutex;
use proptest::prelude::*;

/// An arbitrary (but valid) timing-only task.
fn task_strategy() -> impl Strategy<Value = GpuTask> {
    (
        0u64..4_000_000, // bytes_in
        0u64..2_000_000, // bytes_out
        1u64..64,        // grid blocks
        1u32..8,         // warps per block
        1u32..4,         // kernels
        1u32..3,         // iterations
        1.0f64..200.0,   // flops per thread
    )
        .prop_map(
            |(bytes_in, bytes_out, grid, warps, nkernels, iterations, flops)| {
                let cfg = DeviceConfig::tesla_c2070_paper();
                let desc = KernelDesc::new("prop", grid, warps * 32)
                    .regs(16)
                    .with_cost(&cfg, &CostSpec::new(flops, 4.0));
                GpuTask {
                    name: "prop".into(),
                    class: WorkloadClass::Intermediate,
                    ctx_switch_cost: SimDuration::from_millis_f64(50.0),
                    device_bytes: (bytes_in + bytes_out).max(256),
                    iterations,
                    bytes_in,
                    round_bytes_in: Vec::new(),
                    input: None,
                    bytes_out,
                    d2h_offset: bytes_in.min((bytes_in + bytes_out).max(256) - bytes_out.max(1)),
                    kernels: vec![KernelTemplate::timing(desc); nkernels as usize],
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heterogeneous random task mixes complete under the GVM with zero
    /// context switches and all kernels accounted for.
    #[test]
    fn random_mixes_complete_cleanly(
        tasks in prop::collection::vec(task_strategy(), 1..5)
    ) {
        let sc = Scenario::default();
        let n = tasks.len();
        let expected_kernels: u64 = tasks
            .iter()
            .map(|t| (t.kernels.len() as u32 * t.iterations) as u64)
            .sum();
        let r = sc.run(ExecutionMode::Virtualized, tasks);
        prop_assert_eq!(r.runs.len(), n);
        prop_assert_eq!(r.device.ctx_switches, 0);
        prop_assert_eq!(r.device.kernels_completed, expected_kernels);
        // Phases are causally ordered for every rank.
        for run in &r.runs {
            prop_assert!(run.start <= run.init_done);
            prop_assert!(run.init_done <= run.data_in_done);
            prop_assert!(run.data_in_done <= run.comp_done);
            prop_assert!(run.comp_done <= run.data_out_done);
            prop_assert!(run.data_out_done <= run.end);
        }
        // GVM staged exactly the copies the tasks requested.
        let gvm = r.gvm.as_ref().unwrap();
        let want_snd = r.runs.len() as u64; // one SND per rank
        prop_assert!(gvm.snd_copies <= want_snd);
        prop_assert_eq!(gvm.flushes, 1);
    }

    /// Functional identity under arbitrary payloads: what goes through the
    /// GVM pipeline comes back exactly (vecadd with random data).
    #[test]
    fn functional_roundtrip_for_random_payloads(
        values in prop::collection::vec(-1.0e6f32..1.0e6, 1..512)
    ) {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let b: Vec<f32> = values.iter().map(|v| v * 0.5 + 1.0).collect();
        let task = gvirt::kernels::vecadd::functional_task(&cfg, &values, &b);

        let mut sim = gvirt::sim::Simulation::new();
        let device = GpuDevice::install(&mut sim, cfg);
        let cuda = CudaDevice::new(device.clone());
        let node = gvirt::ipc::Node::new(gvirt::ipc::NodeConfig::dual_xeon_x5560());
        let handle = gvirt::virt::Gvm::install(
            &mut sim,
            &node,
            &cuda,
            gvirt::virt::GvmConfig::new(1),
            vec![task],
        );
        let out: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        {
            let handle = handle.clone();
            let out = out.clone();
            node.spawn_pinned(&mut sim, 0, "spmd-0", move |ctx| {
                let client = gvirt::virt::VgpuClient::connect(ctx, &handle, 0);
                let (_, o) = client.run_task(ctx);
                *out.lock() = o;
            })
            .unwrap();
        }
        let h = handle.clone();
        let dev = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h.done.wait(ctx);
            dev.shutdown(ctx);
        });
        sim.run().unwrap();
        let bytes = out.lock().take().expect("functional output");
        let got = gvirt::kernels::vecadd::decode_output(&bytes);
        prop_assert_eq!(got, gvirt::kernels::vecadd::reference(&values, &b));
    }
}

//! Failure injection: the stack must fail loudly and precisely, not hang
//! or corrupt.

use gvirt::cuda::{CudaDevice, CudaError, HostBuffer};
use gvirt::gpu::{DeviceConfig, GpuDevice, MemError};
use gvirt::ipc::{AffinityError, Node, NodeConfig};
use gvirt::sim::{SimError, SimTime, Simulation};

/// Allocating past device capacity fails with a precise OOM, and the
/// process that unwraps it surfaces as a simulation error naming it.
#[test]
fn device_oom_is_loud() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let capacity = cfg.global_mem_bytes;
    let device = GpuDevice::install(&mut sim, cfg);
    let d = device.clone();
    sim.spawn("hog", move |ctx| {
        // First allocation is fine; the second overflows.
        let _a = d.alloc(capacity / 2).unwrap();
        match d.alloc(capacity) {
            Err(MemError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, capacity);
                assert!(free < capacity);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// A process panic inside a simulation is reported with the process name
/// and message — not a hang.
#[test]
fn panicking_client_is_reported() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let _keep = device.clone();
    sim.spawn("bad-client", |_ctx| panic!("injected failure"));
    match sim.run() {
        Err(SimError::ProcessPanicked { name, message }) => {
            assert_eq!(name, "bad-client");
            assert!(message.contains("injected failure"));
        }
        other => panic!("expected panic report, got {other:?}"),
    }
}

/// A client that blocks forever (lost response) turns into a deadlock
/// report listing the stuck processes — the scheduler is not implicated.
#[test]
fn lost_response_becomes_deadlock_report() {
    let mut sim = Simulation::new();
    sim.spawn("orphan", |ctx| {
        ctx.park(); // waits for a response that never comes
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            assert!(blocked.contains(&"orphan".to_string()));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// Oversubscribing the node violates the SPMD condition.
#[test]
fn spmd_oversubscription_rejected() {
    let mut sim = Simulation::new();
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let err = node.spawn_spmd(&mut sim, 9, "p", |_, _| {}).unwrap_err();
    assert_eq!(
        err,
        AffinityError::TooManyProcesses {
            requested: 9,
            cores: 8
        }
    );
}

/// An async copy from pageable memory is a programming error the runtime
/// rejects immediately (real CUDA silently degrades; we are stricter).
#[test]
fn async_copy_from_pageable_rejected() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let cuda = CudaDevice::new(device.clone());
    sim.spawn("p", move |ctx| {
        let cc = cuda.create_context(ctx, "p");
        let s = cc.stream_create();
        let d = cc.malloc(1024).unwrap();
        let pageable = HostBuffer::opaque(1024, false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cc.memcpy_h2d_async(ctx, s, &pageable, d, 1024);
        }));
        assert!(result.is_err(), "async pageable copy must be rejected");
        cuda.device().shutdown(ctx);
    });
    sim.run().unwrap();
}

/// Copies larger than their host buffer fail cleanly.
#[test]
fn oversized_copy_errors() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let cuda = CudaDevice::new(device.clone());
    sim.spawn("p", move |ctx| {
        let cc = cuda.create_context(ctx, "p");
        let s = cc.stream_create();
        let d = cc.malloc(4096).unwrap();
        let small = HostBuffer::opaque(16, false);
        match cc.memcpy_h2d(ctx, s, &small, d, 4096) {
            Err(CudaError::HostBufferTooSmall {
                requested,
                capacity,
            }) => {
                assert_eq!((requested, capacity), (4096, 16));
            }
            other => panic!("expected HostBufferTooSmall, got {other:?}"),
        }
        cuda.device().shutdown(ctx);
    });
    sim.run().unwrap();
}

/// `run_until` horizon stops a runaway experiment and reaps every thread
/// (no leaks, no hangs) even with a device installed.
#[test]
fn horizon_stop_reaps_device_scheduler() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let cuda = CudaDevice::new(device);
    sim.spawn("forever", move |ctx| {
        let cc = cuda.create_context(ctx, "p");
        let s = cc.stream_create();
        let mut k = gvirt::gpu::KernelDesc::new("endless", 1, 32).regs(1);
        k.block_demand_cycles = 1.0e18; // ~31 years of device time
        let h = cc.launch(ctx, s, k).unwrap();
        h.wait(ctx); // never completes within the horizon
    });
    let s = sim.run_until(SimTime::from_nanos(1_000_000_000)).unwrap();
    assert!(!s.completed);
    assert_eq!(s.end_time, SimTime::from_nanos(1_000_000_000));
}

/// Freeing a dangling device pointer is an error, not UB.
#[test]
fn double_free_rejected() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let d = device.clone();
    sim.spawn("p", move |ctx| {
        let ptr = d.alloc(256).unwrap();
        d.free(ptr).unwrap();
        assert_eq!(d.free(ptr), Err(MemError::InvalidPointer));
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

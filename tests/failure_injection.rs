//! Failure injection: the stack must fail loudly and precisely, not hang
//! or corrupt — and, with fault tolerance enabled, the GVM must *recover*:
//! evict dead ranks, reclaim their resources, re-arm the `STR` barrier at
//! reduced width, and keep serving the survivors.
//!
//! The second half of this file drives the deterministic [`FaultPlan`]
//! subsystem end to end: scripted client aborts at every protocol stage,
//! message drop/delay/duplication on both queue directions, shared-memory
//! corruption, device OOM mid-`SND`, and bounded-queue backpressure, in
//! both the GVM and the direct-sharing baseline.

use gvirt::cuda::{CudaDevice, CudaError, HostBuffer};
use gvirt::gpu::{DeviceConfig, GpuDevice, MemError};
use gvirt::ipc::{AffinityError, Node, NodeConfig};
use gvirt::kernels::vecadd;
use gvirt::sim::{SimDuration, SimError, SimTime, Simulation};
use gvirt::virt::{
    run_direct_abortable, ClientPolicy, FaultPlan, FaultSpec, Gvm, GvmConfig, GvmHandle, NakReason,
    QueueSel, RequestKind, TaskError, VgpuClient,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Allocating past device capacity fails with a precise OOM, and the
/// process that unwraps it surfaces as a simulation error naming it.
#[test]
fn device_oom_is_loud() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let capacity = cfg.global_mem_bytes;
    let device = GpuDevice::install(&mut sim, cfg);
    let d = device.clone();
    sim.spawn("hog", move |ctx| {
        // First allocation is fine; the second overflows.
        let _a = d.alloc(capacity / 2).unwrap();
        match d.alloc(capacity) {
            Err(MemError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, capacity);
                assert!(free < capacity);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// A process panic inside a simulation is reported with the process name
/// and message — not a hang.
#[test]
fn panicking_client_is_reported() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let _keep = device.clone();
    sim.spawn("bad-client", |_ctx| panic!("injected failure"));
    match sim.run() {
        Err(SimError::ProcessPanicked { name, message }) => {
            assert_eq!(name, "bad-client");
            assert!(message.contains("injected failure"));
        }
        other => panic!("expected panic report, got {other:?}"),
    }
}

/// A client that blocks forever (lost response) turns into a deadlock
/// report listing the stuck processes — the scheduler is not implicated.
#[test]
fn lost_response_becomes_deadlock_report() {
    let mut sim = Simulation::new();
    sim.spawn("orphan", |ctx| {
        ctx.park(); // waits for a response that never comes
    });
    match sim.run() {
        Err(err @ SimError::Deadlock { .. }) => {
            assert!(err.blocked_names().contains(&"orphan".to_string()));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// Oversubscribing the node violates the SPMD condition.
#[test]
fn spmd_oversubscription_rejected() {
    let mut sim = Simulation::new();
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let err = node.spawn_spmd(&mut sim, 9, "p", |_, _| {}).unwrap_err();
    assert_eq!(
        err,
        AffinityError::TooManyProcesses {
            requested: 9,
            cores: 8
        }
    );
}

/// An async copy from pageable memory is a programming error the runtime
/// rejects immediately (real CUDA silently degrades; we are stricter).
#[test]
fn async_copy_from_pageable_rejected() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let cuda = CudaDevice::new(device.clone());
    sim.spawn("p", move |ctx| {
        let cc = cuda.create_context(ctx, "p");
        let s = cc.stream_create();
        let d = cc.malloc(1024).unwrap();
        let pageable = HostBuffer::opaque(1024, false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cc.memcpy_h2d_async(ctx, s, &pageable, d, 1024);
        }));
        assert!(result.is_err(), "async pageable copy must be rejected");
        cuda.device().shutdown(ctx);
    });
    sim.run().unwrap();
}

/// Copies larger than their host buffer fail cleanly.
#[test]
fn oversized_copy_errors() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let cuda = CudaDevice::new(device.clone());
    sim.spawn("p", move |ctx| {
        let cc = cuda.create_context(ctx, "p");
        let s = cc.stream_create();
        let d = cc.malloc(4096).unwrap();
        let small = HostBuffer::opaque(16, false);
        match cc.memcpy_h2d(ctx, s, &small, d, 4096) {
            Err(CudaError::HostBufferTooSmall {
                requested,
                capacity,
            }) => {
                assert_eq!((requested, capacity), (4096, 16));
            }
            other => panic!("expected HostBufferTooSmall, got {other:?}"),
        }
        cuda.device().shutdown(ctx);
    });
    sim.run().unwrap();
}

/// `run_until` horizon stops a runaway experiment and reaps every thread
/// (no leaks, no hangs) even with a device installed.
#[test]
fn horizon_stop_reaps_device_scheduler() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let cuda = CudaDevice::new(device);
    sim.spawn("forever", move |ctx| {
        let cc = cuda.create_context(ctx, "p");
        let s = cc.stream_create();
        let mut k = gvirt::gpu::KernelDesc::new("endless", 1, 32).regs(1);
        k.block_demand_cycles = 1.0e18; // ~31 years of device time
        let h = cc.launch(ctx, s, k).unwrap();
        h.wait(ctx); // never completes within the horizon
    });
    let s = sim.run_until(SimTime::from_nanos(1_000_000_000)).unwrap();
    assert!(!s.completed);
    assert_eq!(s.end_time, SimTime::from_nanos(1_000_000_000));
}

/// Freeing a dangling device pointer is an error, not UB.
#[test]
fn double_free_rejected() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::test_tiny());
    let d = device.clone();
    sim.spawn("p", move |ctx| {
        let ptr = d.alloc(256).unwrap();
        d.free(ptr).unwrap();
        assert_eq!(d.free(ptr), Err(MemError::InvalidPointer));
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

// ---------------------------------------------------------------------------
// FaultPlan-driven scenarios: scripted faults, GVM recovery, baseline loss.
// ---------------------------------------------------------------------------

/// Per-rank vecadd inputs, distinct so cross-rank mixups are visible.
fn ft_inputs(n: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
    (0..n)
        .map(|r| {
            let a: Vec<f32> = (0..256).map(|i| (i + r * 1000) as f32).collect();
            let b: Vec<f32> = (0..256).map(|i| (i * 2 + r) as f32).collect();
            (a, b)
        })
        .collect()
}

/// Everything a fault scenario needs to assert on afterwards.
struct FtOutcome {
    /// Per-rank `try_run_task` results, sorted by rank.
    #[allow(clippy::type_complexity)]
    results: Vec<(usize, Result<Option<Vec<u8>>, TaskError>)>,
    handle: GvmHandle,
    /// Device bytes still allocated after the run drained.
    used_after: u64,
    /// `fault`-category trace events as `"<ns> <label>"` lines.
    fault_labels: Vec<String>,
    /// Every trace event as `"<ns> <category> <label>"` lines.
    full_trace: Vec<String>,
    inputs: Vec<(Vec<f32>, Vec<f32>)>,
}

impl FtOutcome {
    fn stats(&self) -> gvirt::virt::GvmStats {
        self.handle.stats.lock().clone()
    }

    fn assert_rank_output_correct(&self, rank: usize) {
        let (r, res) = &self.results[rank];
        assert_eq!(*r, rank);
        let bytes = res
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"))
            .as_ref()
            .expect("functional output");
        let got: Vec<u32> = vecadd::decode_output(bytes)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        let (a, b) = &self.inputs[rank];
        let want: Vec<u32> = vecadd::reference(a, b)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(got, want, "rank {rank} output wrong");
    }

    fn has_fault_event(&self, needle: &str) -> bool {
        self.fault_labels.iter().any(|l| l.contains(needle))
    }
}

/// Run `n` fault-tolerant ranks of functional vecadd under `plan`.
fn run_ft(n: usize, plan: &FaultPlan, policy: ClientPolicy, trace: bool) -> FtOutcome {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let inputs = ft_inputs(n);
    let tasks: Vec<_> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::fault_tolerant(n), tasks);
    plan.install(&handle, &device);
    if trace {
        sim.tracer().set_enabled(true);
    }
    type Results = Arc<Mutex<Vec<(usize, Result<Option<Vec<u8>>, TaskError>)>>>;
    let results: Results = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let results = results.clone();
        let policy = policy.clone();
        let abort = plan.abort_stage(rank);
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let mut client = VgpuClient::connect_with_policy(ctx, &handle, rank, policy);
            if let Some(stage) = abort {
                client.abort_at(stage);
            }
            let res = client.try_run_task(ctx).map(|(_, out)| out);
            results.lock().push((rank, res));
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    let tracer = sim.tracer();
    sim.run().unwrap();
    let used_after = device.with_memory(|m| m.used());
    let fault_labels = tracer
        .fault_events()
        .iter()
        .map(|e| format!("{} {}", e.time.as_nanos(), e.label))
        .collect();
    let full_trace = tracer
        .snapshot()
        .iter()
        .map(|e| format!("{} {} {}", e.time.as_nanos(), e.category, e.label))
        .collect();
    let mut results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("client still holds results"))
        .into_inner();
    results.sort_by_key(|(r, _)| *r);
    FtOutcome {
        results,
        handle,
        used_after,
        fault_labels,
        full_trace,
        inputs,
    }
}

/// The acceptance scenario: a client aborts at *any* protocol stage with
/// 8 ranks connected, and the GVM keeps serving — every survivor's output
/// is bit-exact, the dead rank is evicted exactly once, its queues and
/// shared memory are unlinked, and allocator accounting returns to zero.
#[test]
fn gvm_survives_client_abort_at_every_stage() {
    for stage in RequestKind::ALL {
        let n = 8;
        let victim = 3;
        let plan = FaultPlan::new(1).push(FaultSpec::ClientAbort {
            rank: victim,
            stage,
        });
        let policy = ClientPolicy::with_timeout(SimDuration::from_millis(50), 5);
        let out = run_ft(n, &plan, policy, false);

        assert_eq!(
            out.results[victim].1,
            Err(TaskError::Aborted { stage }),
            "victim must report its scripted abort at {stage:?}"
        );
        for rank in 0..n {
            if rank != victim {
                out.assert_rank_output_correct(rank);
            }
        }
        let stats = out.stats();
        assert_eq!(stats.evictions, 1, "abort at {stage:?}: one eviction");
        assert_eq!(stats.flushes, 1, "abort at {stage:?}: one barrier flush");
        assert_eq!(
            out.used_after, 0,
            "abort at {stage:?}: every device byte reclaimed"
        );
        // The evicted rank's endpoints are gone; a survivor's remain.
        assert!(
            out.handle
                .shm
                .open(&out.handle.endpoints.shm(victim))
                .is_err(),
            "abort at {stage:?}: victim shm must be unlinked"
        );
        assert!(
            out.handle
                .resp_mq
                .open(&out.handle.endpoints.response_queue(victim))
                .is_err(),
            "abort at {stage:?}: victim response queue must be unlinked"
        );
        assert!(out.handle.shm.open(&out.handle.endpoints.shm(0)).is_ok());
    }
}

/// The contrast case the paper's architecture motivates: in *direct*
/// sharing there is no manager to reclaim a crashed process's device
/// state, so an abort at any stage past `REQ` leaks device memory.
#[test]
fn direct_abort_leaks_device_memory_without_a_manager() {
    for stage in RequestKind::ALL {
        let mut sim = Simulation::new();
        let cfg = DeviceConfig::tesla_c2070_paper();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let a: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..256).map(|i| (i * 2) as f32).collect();
        let task = vecadd::functional_task(&cfg, &a, &b);
        let used = Arc::new(Mutex::new(0u64));
        let used2 = used.clone();
        let dev2 = device.clone();
        node.spawn_pinned(&mut sim, 0, "direct-0", move |ctx| {
            let err = run_direct_abortable(ctx, &cuda, &task, 0, Some(stage)).unwrap_err();
            assert_eq!(err, TaskError::Aborted { stage });
            // Let any abandoned stream work drain before auditing.
            ctx.hold(SimDuration::from_millis(500));
            *used2.lock() = dev2.with_memory(|m| m.used());
            dev2.shutdown(ctx);
        })
        .unwrap();
        sim.run().unwrap();
        let used = *used.lock();
        if stage == RequestKind::Req {
            assert_eq!(used, 0, "abort before any allocation leaks nothing");
        } else {
            assert!(
                used > 0,
                "direct abort at {stage:?} must leak device memory (no manager)"
            );
        }
    }
}

/// A depth-1 request queue exerts backpressure — senders block in
/// simulated time — but the protocol still completes for 8 ranks with a
/// single barrier flush and correct outputs.
#[test]
fn bounded_request_queue_backpressure_completes() {
    let n = 8;
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let inputs = ft_inputs(n);
    let tasks: Vec<_> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();
    let mut gcfg = GvmConfig::new(n);
    gcfg.req_queue_capacity = Some(1);
    let handle = Gvm::install(&mut sim, &node, &cuda, gcfg, tasks);
    type Results = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
    let results: Results = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let results = results.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (_run, out) = client.run_task(ctx);
            results.lock().push((rank, out.expect("functional output")));
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    sim.run().unwrap();
    let results = results.lock();
    assert_eq!(results.len(), n);
    for (rank, bytes) in results.iter() {
        let (a, b) = &inputs[*rank];
        assert_eq!(
            vecadd::decode_output(bytes),
            vecadd::reference(a, b),
            "rank {rank} output wrong under backpressure"
        );
    }
    assert_eq!(handle.stats.lock().flushes, 1);
}

/// Device OOM at the first lazy `SND` allocation: the losing rank is
/// NAKed and evicted, the other rank completes correctly, and the
/// allocator returns to zero.
#[test]
fn oom_mid_snd_evicts_only_the_loser() {
    let plan = FaultPlan::new(2).push(FaultSpec::DeviceOom { nth_alloc: 1 });
    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(10), 3);
    let out = run_ft(2, &plan, policy, true);

    let rejected: Vec<usize> = out
        .results
        .iter()
        .filter(|(_, res)| {
            matches!(
                res,
                Err(TaskError::Rejected {
                    stage: RequestKind::Snd,
                    reason: NakReason::Oom
                })
            )
        })
        .map(|(r, _)| *r)
        .collect();
    assert_eq!(rejected.len(), 1, "exactly one rank loses the allocation");
    let survivor = 1 - rejected[0];
    out.assert_rank_output_correct(survivor);

    let stats = out.stats();
    assert_eq!(stats.evictions, 1);
    assert!(stats.naks >= 1);
    assert_eq!(out.used_after, 0, "survivor's memory reclaimed at release");
    assert!(out.has_fault_event("oom-nak:rank"));
    assert!(out.has_fault_event(&format!("evict:rank{}", rejected[0])));
}

/// A dropped *response* is recovered by the client's timeout retry: the
/// GVM recognizes the re-sent sequence number and answers from its
/// recorded-response cache instead of re-executing the request.
#[test]
fn dropped_response_is_resent_from_the_dedup_cache() {
    let plan = FaultPlan::new(3).push(FaultSpec::MqDrop {
        queue: QueueSel::Response(0),
        nth: 0,
    });
    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(5), 3);
    let out = run_ft(1, &plan, policy, true);
    out.assert_rank_output_correct(0);
    let stats = out.stats();
    assert!(stats.dedup_hits >= 1, "retry must hit the dedup cache");
    assert_eq!(stats.evictions, 0);
    assert!(out.has_fault_event("mq-drop:"));
}

/// A dropped *request* (the `STR` send, lifetime send #2 on the request
/// queue after `REQ` and `SND`) is recovered by a retry the GVM processes
/// as new — it never saw the original.
#[test]
fn dropped_request_is_retried_and_reprocessed() {
    let plan = FaultPlan::new(4).push(FaultSpec::MqDrop {
        queue: QueueSel::Request,
        nth: 2,
    });
    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(5), 3);
    let out = run_ft(1, &plan, policy, true);
    out.assert_rank_output_correct(0);
    let stats = out.stats();
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.evictions, 0);
    assert!(out.has_fault_event("mq-drop:"));
}

/// Duplicated messages in both directions are harmless: the GVM
/// deduplicates re-seen sequence numbers and the client discards stale
/// response sequence numbers.
#[test]
fn duplicated_messages_are_deduplicated() {
    let plan = FaultPlan::new(5)
        .push(FaultSpec::MqDuplicate {
            queue: QueueSel::Request,
            nth: 1,
        })
        .push(FaultSpec::MqDuplicate {
            queue: QueueSel::Response(0),
            nth: 0,
        });
    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(10), 3);
    let out = run_ft(1, &plan, policy, true);
    out.assert_rank_output_correct(0);
    let stats = out.stats();
    assert!(stats.dedup_hits >= 1, "duplicate SND must be deduplicated");
    assert_eq!(stats.evictions, 0);
    assert_eq!(
        out.fault_labels
            .iter()
            .filter(|l| l.contains("mq-dup:"))
            .count(),
        2
    );
}

/// A delayed message charges the sender extra latency but needs no
/// retry: the deadline starts when the send returns.
#[test]
fn delayed_message_is_absorbed_by_the_deadline() {
    let plan = FaultPlan::new(6).push(FaultSpec::MqDelay {
        queue: QueueSel::Request,
        nth: 0,
        delay: SimDuration::from_millis(2),
    });
    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(10), 3);
    let out = run_ft(1, &plan, policy, true);
    out.assert_rank_output_correct(0);
    let stats = out.stats();
    assert_eq!(stats.dedup_hits, 0, "no retry should have been needed");
    assert_eq!(stats.evictions, 0);
    assert!(out.has_fault_event("mq-delay:"));
}

/// Corrupting the client's `SND` staging write (the segment's first timed
/// write) propagates visibly into the computed output — the data path has
/// no silent re-read of clean data.
#[test]
fn shm_corruption_shows_up_in_the_output() {
    let plan = FaultPlan::new(7).push(FaultSpec::ShmCorrupt {
        rank: 0,
        nth_write: 0,
    });
    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(10), 3);
    let out = run_ft(1, &plan, policy, true);
    let bytes = out.results[0]
        .1
        .as_ref()
        .expect("corrupted run still completes")
        .as_ref()
        .expect("functional output");
    let got: Vec<u32> = vecadd::decode_output(bytes)
        .iter()
        .map(|f| f.to_bits())
        .collect();
    let (a, b) = &out.inputs[0];
    let clean: Vec<u32> = vecadd::reference(a, b)
        .iter()
        .map(|f| f.to_bits())
        .collect();
    assert_ne!(got, clean, "corrupted input must change the output");
    assert!(out.has_fault_event("shm-corrupt:"));
    assert_eq!(out.used_after, 0);
}

/// The full acceptance criterion: 8 ranks, one aborts at `STP`; the plan
/// round-trips through its text format, survivors complete bit-exact, the
/// dead rank's resources are reclaimed — and replaying the identical
/// `FaultPlan` yields a byte-identical virtual-time trace.
#[test]
fn acceptance_eight_rank_abort_replays_identical_trace() {
    let victim = 3;
    let authored = FaultPlan::new(11).push(FaultSpec::ClientAbort {
        rank: victim,
        stage: RequestKind::Stp,
    });
    // Exercise the fixture path: what runs is the decoded text form.
    let plan = FaultPlan::decode(&authored.encode()).unwrap();
    assert_eq!(plan, authored);

    let policy = ClientPolicy::with_timeout(SimDuration::from_millis(50), 5);
    let first = run_ft(8, &plan, policy.clone(), true);
    let second = run_ft(8, &plan, policy, true);

    assert_eq!(
        first.results[victim].1,
        Err(TaskError::Aborted {
            stage: RequestKind::Stp
        })
    );
    for rank in 0..8 {
        if rank != victim {
            first.assert_rank_output_correct(rank);
            second.assert_rank_output_correct(rank);
        }
    }
    let stats = first.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(first.used_after, 0);
    assert!(first.has_fault_event(&format!("evict:rank{victim}")));

    assert!(!first.full_trace.is_empty());
    assert_eq!(
        first.full_trace, second.full_trace,
        "same FaultPlan must replay a byte-identical virtual-time trace"
    );
    assert_eq!(first.fault_labels, second.fault_labels);
}

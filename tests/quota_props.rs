//! Property tests for device-memory quotas and demand-swap.
//!
//! Over randomized working-set shapes, quota assignments, device
//! capacities, arrival skews, and swap on/off:
//!
//! * a rank's charged total never exceeds its finite quota, and every
//!   charge/credit record's running total is arithmetically consistent —
//!   the GVM rejects, it never silently exceeds;
//! * every swap-out is balanced by exactly one swap-in or pool
//!   retirement by the end of the run — demand-swap never leaks pinned
//!   staging or restores a buffer twice;
//! * an all-`Unlimited` quota vector is bitwise identical to running
//!   with no quota vector at all: same functional outputs, same
//!   non-quota analysis records — quota enforcement off is free.

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::vecadd;
use gvirt::sim::{AnalysisRecord, SimDuration, Simulation};
use gvirt::virt::{Gvm, GvmConfig, MemQuota, SchedPolicy, VgpuClient};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything one randomized GVM run produced.
struct RunOut {
    records: Vec<AnalysisRecord>,
    /// Per-rank: `Some(output)` if admitted and completed, `None` if the
    /// GVM rejected the session.
    outputs: Vec<Option<Vec<u8>>>,
}

/// Deterministic functional VectorAdd inputs for one rank.
fn inputs_for(rank: usize, elems: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..elems).map(|i| (i * 2 + rank * 31) as f32).collect();
    let b: Vec<f32> = (0..elems).map(|i| (i + rank * 7) as f32 * 0.5).collect();
    (a, b)
}

/// Run one staggered FCFS group of functional VectorAdd sessions with
/// the given quota vector, swap mode, and device capacity.
fn run_gvm(
    elems: &[usize],
    quotas: Option<Vec<MemQuota>>,
    swap: bool,
    capacity: u64,
    stagger_ms: u64,
) -> RunOut {
    let n = elems.len();
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    tracer.set_analysis(true);
    let cfg = DeviceConfig {
        global_mem_bytes: capacity,
        ..DeviceConfig::tesla_c2070_paper()
    };
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let tasks: Vec<_> = elems
        .iter()
        .enumerate()
        .map(|(r, &e)| {
            let (a, b) = inputs_for(r, e);
            vecadd::functional_task(&cfg, &a, &b)
        })
        .collect();
    let mut config = GvmConfig::new(n).with_scheduler(SchedPolicy::Fcfs);
    if let Some(q) = quotas {
        config = config.with_quotas(q);
    }
    if swap {
        config = config.with_swap();
    }
    let handle = Gvm::install(&mut sim, &node, &cuda, config, tasks);

    type Outs = Arc<Mutex<Vec<(usize, Option<Vec<u8>>)>>>;
    let outs: Outs = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let outs = outs.clone();
        let hold = SimDuration::from_millis(stagger_ms.saturating_mul(rank as u64));
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            if !hold.is_zero() {
                ctx.hold(hold);
            }
            let out = client
                .try_run_task(ctx)
                .ok()
                .map(|(_, o)| o.expect("functional task has output"));
            outs.lock().push((rank, out));
        })
        .expect("pin SPMD process");
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().expect("quota group must complete");

    let mut pairs = outs.lock().clone();
    pairs.sort_by_key(|(r, _)| *r);
    RunOut {
        records: tracer.analysis_snapshot(),
        outputs: pairs.into_iter().map(|(_, o)| o).collect(),
    }
}

/// Strategy: 2–4 ranks with distinct small working sets, a quota per
/// rank (rank 0 always finite so the quota-enforcing lazy path is on),
/// a device capacity between one and two of the largest working set,
/// and a random arrival skew.
fn group_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<u8>, u64, bool, u64)> {
    (
        proptest::collection::vec(16usize..=64, 2..=4),
        proptest::collection::vec(0u8..=4, 4),
        0u64..=600,
        any::<bool>(),
        0u64..=8,
    )
}

/// Resolve a quota selector for one rank: 0 → exactly its demand,
/// 1 → half (rejected at admission), 2 → double, 3 → unlimited,
/// 4 → 75% of device capacity.
fn quota_for(sel: u8, demand: u64) -> MemQuota {
    match sel {
        0 => MemQuota::Bytes(demand),
        1 => MemQuota::Bytes(demand / 2),
        2 => MemQuota::Bytes(demand * 2),
        3 => MemQuota::Unlimited,
        _ => MemQuota::Percent(75),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Quota bound + ledger arithmetic over random groups: no charge
    /// record ever exceeds a finite quota, every running total is
    /// exactly the previous plus/minus the delta, and every rank's
    /// balance returns to zero by the end of the run. Sessions whose
    /// quota is below their demand are rejected, never trimmed.
    #[test]
    fn charges_never_exceed_quota_and_always_balance(
        (elems, sels, extra, swap, stagger) in group_strategy()
    ) {
        let demands: Vec<u64> = elems.iter().map(|&e| 12 * e as u64).collect();
        let capacity = demands.iter().copied().max().unwrap() + extra;
        let quotas: Vec<MemQuota> = demands
            .iter()
            .enumerate()
            // Rank 0 finite keeps the GVM on the quota-enforcing path.
            .map(|(r, &d)| quota_for(if r == 0 { 0 } else { sels[r] }, d))
            .collect();
        let run = run_gvm(&elems, Some(quotas.clone()), swap, capacity, stagger);

        let mut quota_of: HashMap<usize, u64> = HashMap::new();
        let mut charged: HashMap<usize, u64> = HashMap::new();
        for rec in &run.records {
            match rec {
                AnalysisRecord::QuotaSet { rank, quota, demand, .. } => {
                    quota_of.insert(*rank, *quota);
                    prop_assert_eq!(*demand, demands[*rank], "declared demand");
                    // The GVM resolves exactly what the config requested.
                    let want = quotas[*rank].resolve(capacity).unwrap_or(0);
                    prop_assert_eq!(*quota, want, "resolved quota for rank {}", rank);
                }
                AnalysisRecord::QuotaCharge { rank, bytes, charged: total, .. } => {
                    let prev = charged.get(rank).copied().unwrap_or(0);
                    prop_assert_eq!(prev + *bytes, *total, "ledger at a charge");
                    let q = quota_of.get(rank).copied().unwrap_or(0);
                    if q > 0 {
                        prop_assert!(
                            *total <= q,
                            "rank {} charged {} over its quota {}", rank, total, q
                        );
                    }
                    charged.insert(*rank, *total);
                }
                AnalysisRecord::QuotaCredit { rank, bytes, charged: total, .. } => {
                    let prev = charged.get(rank).copied().unwrap_or(0);
                    prop_assert!(*bytes <= prev, "credit exceeds charges");
                    prop_assert_eq!(prev - *bytes, *total, "ledger at a credit");
                    charged.insert(*rank, *total);
                }
                _ => {}
            }
        }
        for (rank, total) in &charged {
            prop_assert_eq!(*total, 0u64, "rank {} ended with open charges", rank);
        }
        // Under-quota'd sessions are rejected outright (no output), and
        // their demand was never charged at all.
        for (r, q) in quotas.iter().enumerate() {
            if let Some(cap) = q.resolve(capacity) {
                if cap < demands[r] {
                    prop_assert!(run.outputs[r].is_none(), "rank {} must be NAKed", r);
                }
            }
        }
        // Whatever the quota layout did, admitted outputs are correct.
        for (r, out) in run.outputs.iter().enumerate() {
            if let Some(out) = out {
                let (a, b) = inputs_for(r, elems[r]);
                prop_assert_eq!(
                    vecadd::decode_output(out),
                    vecadd::reference(&a, &b),
                    "rank {} output", r
                );
            }
        }
    }

    /// Swap discipline over random over-committed groups: every swap-in
    /// matches an outstanding swap-out (same buffer, same size), nothing
    /// is swapped out twice, and by the end of the run every swapped
    /// buffer was restored or retired to the pool — the balance is zero.
    #[test]
    fn swap_outs_balance_to_zero_by_run_end(
        (elems, _sels, extra, _swap, stagger) in group_strategy()
    ) {
        let demands: Vec<u64> = elems.iter().map(|&e| 12 * e as u64).collect();
        // Capacity below two working sets: parked sets must be displaced.
        let capacity = demands.iter().copied().max().unwrap() + extra.min(191);
        let quotas: Vec<MemQuota> = demands.iter().map(|&d| MemQuota::Bytes(d)).collect();
        let run = run_gvm(&elems, Some(quotas), true, capacity, stagger);

        let mut outstanding: HashMap<u64, u64> = HashMap::new();
        let mut outs = 0u64;
        for rec in &run.records {
            match rec {
                AnalysisRecord::SwapOut { buf, bytes, .. } => {
                    outs += 1;
                    prop_assert!(
                        outstanding.insert(*buf, *bytes).is_none(),
                        "buffer {} swapped out while already parked", buf
                    );
                }
                AnalysisRecord::SwapIn { buf, bytes, .. } => {
                    let parked = outstanding.remove(buf);
                    prop_assert_eq!(
                        parked, Some(*bytes),
                        "swap-in of buffer {} without a matching swap-out", buf
                    );
                }
                AnalysisRecord::PoolRecycle { buf, .. } => {
                    outstanding.remove(buf);
                }
                _ => {}
            }
        }
        prop_assert!(
            outstanding.is_empty(),
            "{} buffers still swapped out at run end (of {} swap-outs)",
            outstanding.len(), outs
        );
        // Admitted sessions produced correct output even when their
        // working set took the swap-out/swap-in detour. (Lockstep
        // arrivals can still OOM-NAK a rank whose neighbors are live —
        // swap only reclaims *parked* sets — so not everyone need land.)
        for (r, out) in run.outputs.iter().enumerate() {
            if let Some(out) = out {
                let (a, b) = inputs_for(r, elems[r]);
                prop_assert_eq!(
                    vecadd::decode_output(out),
                    vecadd::reference(&a, &b),
                    "rank {} output", r
                );
            }
        }
    }

    /// Differential: an all-`Unlimited` quota vector changes nothing —
    /// rank-by-rank bitwise-identical outputs and an identical analysis
    /// trace (minus the quota bookkeeping records themselves, which are
    /// the only additions) versus running with quotas disabled.
    #[test]
    fn unlimited_quotas_are_bitwise_identical_to_none(
        elems in proptest::collection::vec(16usize..=64, 2..=4),
        stagger in 0u64..=8,
    ) {
        let n = elems.len();
        let capacity = DeviceConfig::tesla_c2070_paper().global_mem_bytes;
        let baseline = run_gvm(&elems, None, false, capacity, stagger);
        let unlimited = run_gvm(
            &elems,
            Some(vec![MemQuota::Unlimited; n]),
            false,
            capacity,
            stagger,
        );

        prop_assert_eq!(&baseline.outputs, &unlimited.outputs, "outputs diverged");
        for out in &baseline.outputs {
            prop_assert!(out.is_some(), "unlimited runs admit everyone");
        }
        let strip = |records: &[AnalysisRecord]| -> Vec<AnalysisRecord> {
            records
                .iter()
                .filter(|r| !matches!(
                    r,
                    AnalysisRecord::QuotaSet { .. }
                        | AnalysisRecord::QuotaCharge { .. }
                        | AnalysisRecord::QuotaCredit { .. }
                ))
                .cloned()
                .collect()
        };
        let base_records = strip(&baseline.records);
        prop_assert_eq!(
            base_records.len(),
            baseline.records.len(),
            "a quota-less run must emit no quota records"
        );
        prop_assert_eq!(
            &base_records,
            &strip(&unlimited.records),
            "execution traces diverged"
        );
        // And neither trace swapped anything.
        prop_assert!(!unlimited.records.iter().any(|r| matches!(
            r,
            AnalysisRecord::SwapOut { .. } | AnalysisRecord::SwapIn { .. }
        )));
    }
}

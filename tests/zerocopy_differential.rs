//! Differential oracle for the zero-copy descriptor-passing transport:
//! leasing the pinned staging pool *as* the client's shm segment is a
//! transport optimization, never a semantic one. Every benchmark family ×
//! group size × mem config must produce rank-by-rank bit-identical
//! functional output whether payloads move through the staged-copy path
//! or directly through exported leases — and both must match the direct
//! (unvirtualized) baseline.
//!
//! The file also pins the ablation contract: selecting the staged path
//! through the zero-copy builder chain (`with_zero_copy(false)`) leaves
//! the analysis trace bitwise identical to the default configuration's,
//! and that staged trace matches the checked-in pre-refactor fixture —
//! the refactor must not perturb the schedule it replaced.

use gvirt::analyze::model::to_dump;
use gvirt::gpu::DeviceConfig;
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{blackscholes, ep, mm, vecadd, GpuTask};
use gvirt::mem::{PoolConfig, StagingPool};
use gvirt::sim::Tracer;
use gvirt::virt::MemConfig;
use proptest::prelude::*;

/// The zero-copy matrix: serial, chunked, and adaptive planners all
/// layered over the descriptor transport. (`steady` double-buffering is
/// excluded by construction — the GVM rejects that combination.)
fn zc_configs() -> Vec<(String, MemConfig)> {
    let mut v = vec![("zc-serial".to_string(), MemConfig::zero_copy())];
    for k in [2usize, 3, 8] {
        v.push((
            format!("zc-chunked-{k}"),
            MemConfig::pipelined(k, 64).with_zero_copy(true),
        ));
    }
    v.push((
        "zc-adaptive-4".to_string(),
        MemConfig::adaptive(4, 64).with_zero_copy(true),
    ));
    v
}

/// Rank-distinct functional tasks for one benchmark family.
fn tasks_for(benchmark: &str, cfg: &DeviceConfig, n: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|rank| match benchmark {
            "vecadd" => {
                let a: Vec<f32> = (0..192).map(|i| (i * (rank + 1)) as f32 * 0.25).collect();
                let b: Vec<f32> = (0..192).map(|i| (i + rank * 1000) as f32).collect();
                vecadd::functional_task(cfg, &a, &b)
            }
            "ep" => ep::functional_task(cfg, 8 + (rank % 3) as u32),
            "mm" => {
                let dim = 8;
                let a: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 7 + rank * 13) % 17) as f32 - 8.0)
                    .collect();
                let b: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 3 + rank * 5) % 11) as f32 * 0.5)
                    .collect();
                mm::functional_task(cfg, &a, &b, dim)
            }
            "blackscholes" => {
                let (s, x, t) = blackscholes::generate_options(48, 7 + rank as u64);
                blackscholes::functional_task(cfg, &s, &x, &t)
            }
            other => panic!("unknown benchmark family {other}"),
        })
        .collect()
}

/// Outputs of one run, unwrapped (all these tasks are functional).
fn outputs(result: &gvirt::harness::scenario::ExperimentResult) -> Vec<Vec<u8>> {
    result
        .outputs
        .iter()
        .map(|o| o.clone().expect("functional task must produce output"))
        .collect()
}

/// Every zero-copy config × benchmark × N: device-side results are
/// bit-identical both to the staged-copy run and to the direct baseline,
/// rank by rank — descriptor passing never leaks into results.
#[test]
fn zero_copy_matches_staged_and_direct_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "ep", "mm", "blackscholes"] {
        for n in [2usize, 4, 8] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let direct = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            let staged = outputs(
                &base
                    .clone()
                    .with_mem(MemConfig::default())
                    .run(ExecutionMode::Virtualized, tasks.clone()),
            );
            assert_eq!(staged, direct, "{benchmark} n={n}: staged vs direct");
            for (label, mem) in zc_configs() {
                let scenario = base.clone().with_mem(mem);
                let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
                assert_eq!(got.len(), staged.len(), "{benchmark} n={n} {label}: ranks");
                for (rank, (g, want)) in got.iter().zip(&staged).enumerate() {
                    assert_eq!(
                        g, want,
                        "{benchmark} n={n} {label}: rank {rank} output differs"
                    );
                }
            }
        }
    }
}

/// Multi-round zero-copy sessions (each round re-presents the descriptor
/// at SND, results overwrite the lease window on the final iteration
/// only) still match the direct baseline bitwise.
#[test]
fn multi_round_zero_copy_matches_direct_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "mm"] {
        for n in [2usize, 4] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let direct = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            for rounds in [2u32, 3] {
                for (label, mem) in zc_configs() {
                    let scenario = base.clone().with_mem(mem).with_rounds(rounds);
                    let got = outputs(&scenario.run(ExecutionMode::Virtualized, tasks.clone()));
                    for (rank, (g, want)) in got.iter().zip(&direct).enumerate() {
                        assert_eq!(
                            g, want,
                            "{benchmark} n={n} rounds={rounds} {label}: \
                             rank {rank} output differs"
                        );
                    }
                }
            }
        }
    }
}

/// The zero-copy path really drops the GVM-side copies (the matrix above
/// isn't vacuous) while the staged ablation still performs them.
#[test]
fn zero_copy_drops_gvm_staging_copies() {
    let base = Scenario::default();
    let tasks = tasks_for("vecadd", &base.device, 4);
    let zc = base
        .clone()
        .with_mem(MemConfig::zero_copy())
        .run(ExecutionMode::Virtualized, tasks.clone());
    let gvm = zc.gvm.expect("virtualized run has GVM stats");
    assert_eq!(gvm.snd_copies, 0, "zero-copy must not stage at SND");
    assert_eq!(gvm.rcv_copies, 0, "zero-copy must not copy at RCV");
    assert_eq!(gvm.copy_time.as_nanos(), 0);
    let staged = base
        .clone()
        .with_mem(MemConfig::default())
        .run(ExecutionMode::Virtualized, tasks);
    let gvm = staged.gvm.expect("virtualized run has GVM stats");
    assert_eq!(gvm.snd_copies, 4);
    assert_eq!(gvm.rcv_copies, 4);
}

/// Analysis-trace dump of one deterministic staged run.
fn staged_trace(mem: MemConfig) -> String {
    let base = Scenario {
        analyze: true,
        ..Scenario::default()
    }
    .with_mem(mem);
    let tasks = tasks_for("vecadd", &base.device, 4);
    let result = base.run(ExecutionMode::Virtualized, tasks);
    let tracer = result.tracer.expect("analysis run keeps its tracer");
    to_dump(&tracer.analysis_snapshot())
}

/// The ablation contract, part 1: the staged path selected through the
/// zero-copy builder chain is bitwise the same schedule as the default
/// configuration — toggling the flag off really is the pre-refactor path.
#[test]
fn staged_ablation_trace_bitwise_identical_to_default() {
    let default_dump = staged_trace(MemConfig::default());
    let ablated_dump = staged_trace(MemConfig::zero_copy().with_zero_copy(false));
    assert_eq!(
        default_dump, ablated_dump,
        "with_zero_copy(false) must reproduce the default staged schedule bitwise"
    );
    assert!(!default_dump.is_empty());
}

/// The ablation contract, part 2: the staged schedule matches the
/// checked-in pre-refactor trace fixture bitwise. Regenerate with
/// `BLESS=1 cargo test --test zerocopy_differential` after an intentional
/// schedule change.
#[test]
fn staged_trace_matches_prerefactor_fixture() {
    let dump = staged_trace(MemConfig::default());
    let path = "tests/fixtures/zerocopy_staged.trace";
    if std::env::var("BLESS").is_ok() || !std::path::Path::new(path).exists() {
        std::fs::create_dir_all("tests/fixtures").expect("create fixture dir");
        std::fs::write(path, &dump).expect("write fixture");
    }
    let golden = std::fs::read_to_string(path).expect("fixture present");
    assert_eq!(
        dump, golden,
        "staged-copy trace drifted from the pre-refactor fixture"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lease-generation discipline: descriptors minted under a lease are
    /// valid exactly until that lease is recycled or retired — after any
    /// number of recycle/re-acquire rounds, every descriptor from an
    /// earlier generation is rejected and only the newest one validates.
    #[test]
    fn recycled_descriptors_are_always_rejected(
        bytes in 1u64..=(1 << 20),
        rounds in 1usize..=12,
        retire_last in any::<bool>(),
    ) {
        let tracer = Tracer::new();
        let pool = StagingPool::with_config(PoolConfig::default());
        let mut stale = Vec::new();
        for round in 0..rounds {
            let lease = pool.acquire(&tracer, bytes, false);
            let desc = lease.descriptor(0, bytes);
            prop_assert!(
                pool.validate(&desc),
                "round {round}: a freshly minted descriptor must validate"
            );
            // Every descriptor from an earlier round is now stale.
            for (r, old) in stale.iter().enumerate() {
                prop_assert!(
                    !pool.validate(old),
                    "round {round}: descriptor from round {r} must be rejected"
                );
            }
            if retire_last && round + 1 == rounds {
                pool.retire(&tracer, lease);
            } else {
                pool.recycle(&tracer, lease);
            }
            prop_assert!(
                !pool.validate(&desc),
                "round {round}: recycling must invalidate the descriptor"
            );
            stale.push(desc);
        }
    }
}

//! `gv-analyze` coverage for device-memory quota and demand-swap traces.
//!
//! End-to-end: a real over-committed GVM run — four quota'd sessions
//! squeezed through a device that holds only one working set at a time —
//! emits `QuotaSet`/`QuotaCharge`/`QuotaCredit` and `SwapOut`/`SwapIn`
//! records and analyzes clean. Corrupting that *same* real stream — an
//! over-quota charge, or a restore from a buffer with no outstanding
//! swap-out — produces exactly one diagnostic per seeded fault. The dump
//! format round-trips every quota record byte-for-byte.

use gvirt::analyze;
use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::vecadd;
use gvirt::sim::{AnalysisRecord, SimDuration, Simulation};
use gvirt::virt::{Gvm, GvmConfig, MemQuota, SchedPolicy, VgpuClient};

/// Run four quota'd, staggered FCFS sessions against a device sized to
/// hold one working set plus half the smallest — rank 1 must demand-swap
/// rank 0's parked set out, and rank 3 (same shape as rank 0) must swap
/// it back in. Returns the analysis records of the full run.
fn quota_trace() -> Vec<AnalysisRecord> {
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    tracer.set_analysis(true);
    let elems = [48usize, 40, 40, 48];
    let mut cfg = DeviceConfig::tesla_c2070_paper();
    // vecadd's device working set is 12 bytes/element: no two sets fit.
    let sets: Vec<u64> = elems.iter().map(|&n| 12 * n as u64).collect();
    cfg.global_mem_bytes =
        sets.iter().copied().max().unwrap() + sets.iter().copied().min().unwrap() / 2;
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());

    let inputs: Vec<(Vec<f32>, Vec<f32>)> = elems
        .iter()
        .enumerate()
        .map(|(r, &n)| {
            let a: Vec<f32> = (0..n).map(|i| (i + r * 100) as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| (i * 3) as f32).collect();
            (a, b)
        })
        .collect();
    let tasks: Vec<_> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();
    let quotas: Vec<MemQuota> = tasks
        .iter()
        .map(|t| MemQuota::Bytes(t.device_bytes))
        .collect();
    let config = GvmConfig::new(tasks.len())
        .with_scheduler(SchedPolicy::Fcfs)
        .with_quotas(quotas)
        .with_swap();
    let handle = Gvm::install(&mut sim, &node, &cuda, config, tasks);

    for (rank, (a, b)) in inputs.into_iter().enumerate() {
        let handle = handle.clone();
        // Rank 0 parks first; ranks 1 and 2 displace it; rank 3 (rank 0's
        // shape) restores it from staging.
        let hold = [0u64, 5, 10, 15][rank];
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            if hold > 0 {
                ctx.hold(SimDuration::from_millis(hold));
            }
            let (_, out) = client
                .try_run_task(ctx)
                .expect("over-committed but swap-backed session must be admitted");
            let got = vecadd::decode_output(&out.expect("functional output"));
            assert_eq!(got, vecadd::reference(&a, &b), "rank {rank} output");
        })
        .expect("pin SPMD process");
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    tracer.analysis_snapshot()
}

/// The real over-committed trace passes every checker, and the quota and
/// swap records are actually present: one `QuotaSet` per rank, charges,
/// credits, at least one demand-swap out and one restore.
#[test]
fn fault_free_quota_swap_run_analyzes_clean() {
    let records = quota_trace();
    let report = analyze::analyze(&records);
    assert!(
        report.is_clean(),
        "diagnostics on a clean quota run:\n{}",
        report.render()
    );
    assert!(report.quota_events > 0, "no quota events counted");
    let count = |f: fn(&AnalysisRecord) -> bool| records.iter().filter(|r| f(r)).count();
    assert_eq!(
        count(|r| matches!(r, AnalysisRecord::QuotaSet { .. })),
        4,
        "one declaration per rank"
    );
    assert!(count(|r| matches!(r, AnalysisRecord::QuotaCharge { .. })) >= 4);
    assert!(count(|r| matches!(r, AnalysisRecord::QuotaCredit { .. })) >= 4);
    assert!(
        count(|r| matches!(r, AnalysisRecord::SwapOut { .. })) >= 1,
        "over-commit must demand-swap"
    );
    assert!(
        count(|r| matches!(r, AnalysisRecord::SwapIn { .. })) >= 1,
        "rank 3 must restore rank 0's shape"
    );
}

/// Inflating one rank's charge past its declared quota (credit inflated
/// to match, so the ledger stays arithmetically consistent and the bound
/// violation is the only fault) yields exactly one `quota` diagnostic.
#[test]
fn seeded_over_quota_charge_is_one_diagnostic() {
    let mut records = quota_trace();
    let victim = records
        .iter()
        .find_map(|r| match r {
            AnalysisRecord::QuotaSet { rank, quota, .. } if *quota > 0 => Some((*rank, *quota)),
            _ => None,
        })
        .expect("trace declares finite quotas");
    let (rank, quota) = victim;
    let mut bumped_charge = false;
    for r in records.iter_mut() {
        match r {
            AnalysisRecord::QuotaCharge {
                rank: rr,
                bytes,
                charged,
                ..
            } if *rr == rank && !bumped_charge => {
                *bytes += quota;
                *charged += quota;
                bumped_charge = true;
            }
            AnalysisRecord::QuotaCredit {
                rank: rr,
                bytes,
                charged,
                ..
            } if *rr == rank => {
                // The matching credit returns the same inflated amount;
                // `charged` is already the post-credit total (zero).
                *bytes += quota;
                let _ = charged;
                break;
            }
            _ => {}
        }
    }
    assert!(bumped_charge, "trace has a charge for the victim rank");

    let report = analyze::analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "want exactly the quota-bound violation:\n{}",
        report.render()
    );
    assert_eq!(report.diagnostics[0].checker, "quota");
    assert!(
        report.diagnostics[0]
            .message
            .contains(&format!("exceeds its quota {quota}")),
        "{}",
        report.diagnostics[0].message
    );
}

/// Replaying a real `SwapIn` a second time — restoring from a staging
/// buffer whose swap-out is no longer outstanding — yields exactly one
/// `use-after-swap-out` diagnostic.
#[test]
fn seeded_use_after_swap_out_is_one_diagnostic() {
    let mut records = quota_trace();
    let at = records
        .iter()
        .position(|r| matches!(r, AnalysisRecord::SwapIn { .. }))
        .expect("trace has a swap-in");
    let dup = records[at].clone();
    records.insert(at + 1, dup);

    let report = analyze::analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "want exactly the use-after-swap-out:\n{}",
        report.render()
    );
    assert_eq!(report.diagnostics[0].checker, "quota");
    assert!(
        report.diagnostics[0].message.contains("use-after-swap-out"),
        "{}",
        report.diagnostics[0].message
    );
}

/// Quota and swap records survive the line-oriented dump format: text →
/// records → identical report, and re-dumping is byte-stable.
#[test]
fn quota_records_roundtrip_through_dump() {
    let records = quota_trace();
    let dump = analyze::model::to_dump(&records);
    for tag in ["qset", "qcharge", "qcredit", "swapout", "swapin"] {
        assert!(
            dump.lines().any(|l| l.starts_with(tag)),
            "dump is missing {tag} lines"
        );
    }
    let parsed = analyze::model::parse_dump(&dump).expect("dump parses");
    assert_eq!(analyze::model::to_dump(&parsed), dump, "dump not stable");
    let a = analyze::analyze(&records);
    let b = analyze::analyze(&parsed);
    assert_eq!(a.diagnostics, b.diagnostics);
    assert_eq!(a.quota_events, b.quota_events);
    assert!(a.quota_events > 0);
}

//! Differential oracle for cross-rank DMA coalescing and batched kernel
//! launch: the coalescing flush is a performance knob, never a semantic
//! one. Every benchmark family × group size must produce rank-by-rank
//! bit-identical functional output whether the flush goes down the
//! per-rank path (coalescing off) or the wave-per-iteration fused path
//! (coalescing on), and both must match the conventional direct-sharing
//! baseline.
//!
//! The file also pins:
//! * the fused path really fuses (the stats counters are non-vacuous) and
//!   every fused submission survives the gv-analyze coalesce checker;
//! * [`CoalescePlan`] is an exact order-preserving partition of its input
//!   (property-based: no member lost, none duplicated, order kept).

use gvirt::gpu::DeviceConfig;
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{blackscholes, ep, mm, vecadd, GpuTask};
use gvirt::mem::{CoalesceConfig, CoalesceMember, CoalescePlan};
use gvirt::virt::MemConfig;
use proptest::prelude::*;

/// Rank-distinct functional tasks for one benchmark family.
fn tasks_for(benchmark: &str, cfg: &DeviceConfig, n: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|rank| match benchmark {
            "vecadd" => {
                let a: Vec<f32> = (0..192).map(|i| (i * (rank + 1)) as f32 * 0.25).collect();
                let b: Vec<f32> = (0..192).map(|i| (i + rank * 1000) as f32).collect();
                vecadd::functional_task(cfg, &a, &b)
            }
            "ep" => ep::functional_task(cfg, 8 + (rank % 3) as u32),
            "mm" => {
                let dim = 8;
                let a: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 7 + rank * 13) % 17) as f32 - 8.0)
                    .collect();
                let b: Vec<f32> = (0..dim * dim)
                    .map(|i| ((i * 3 + rank * 5) % 11) as f32 * 0.5)
                    .collect();
                mm::functional_task(cfg, &a, &b, dim)
            }
            "blackscholes" => {
                let (s, x, t) = blackscholes::generate_options(48, 7 + rank as u64);
                blackscholes::functional_task(cfg, &s, &x, &t)
            }
            other => panic!("unknown benchmark family {other}"),
        })
        .collect()
}

/// Outputs of one run, unwrapped (all these tasks are functional).
fn outputs(result: &gvirt::harness::scenario::ExperimentResult) -> Vec<Vec<u8>> {
    result
        .outputs
        .iter()
        .map(|o| o.clone().expect("functional task must produce output"))
        .collect()
}

/// Every benchmark × N × round count: the coalescing flush produces output
/// bit-identical to the per-rank flush and to the direct baseline, rank by
/// rank — fused DMA sweeps and batched launches never leak into results.
#[test]
fn coalesce_on_matches_off_and_direct_bitwise() {
    let base = Scenario::default();
    for benchmark in ["vecadd", "ep", "mm", "blackscholes"] {
        for n in [2usize, 4, 8] {
            let tasks = tasks_for(benchmark, &base.device, n);
            let direct = outputs(&base.run(ExecutionMode::Direct, tasks.clone()));
            for rounds in [1u32, 3] {
                let off = base
                    .clone()
                    .with_mem(MemConfig::default())
                    .with_rounds(rounds);
                let on = base
                    .clone()
                    .with_mem(MemConfig::default().with_coalesce(true))
                    .with_rounds(rounds);
                let off_out = outputs(&off.run(ExecutionMode::Virtualized, tasks.clone()));
                let on_out = outputs(&on.run(ExecutionMode::Virtualized, tasks.clone()));
                assert_eq!(on_out.len(), direct.len(), "{benchmark} n={n}");
                for rank in 0..n {
                    assert_eq!(
                        on_out[rank], off_out[rank],
                        "{benchmark} n={n} rounds={rounds}: rank {rank} \
                         coalesce-on vs coalesce-off output differs"
                    );
                    assert_eq!(
                        on_out[rank], direct[rank],
                        "{benchmark} n={n} rounds={rounds}: rank {rank} \
                         coalesce-on vs direct output differs"
                    );
                }
            }
        }
    }
}

/// The fused path is really exercised (the oracle above isn't vacuous):
/// a coalesced multi-rank run reports fused DMA groups and batched
/// launches, the uncoalesced run reports none, and every fused submission
/// in the coalesced trace survives the gv-analyze coalesce checker.
#[test]
fn coalescing_fuses_and_passes_the_checker() {
    let base = Scenario::analyzed();
    let tasks = tasks_for("vecadd", &base.device, 4);
    let on = base
        .clone()
        .with_mem(MemConfig::default().with_coalesce(true));
    let r = on.run(ExecutionMode::Virtualized, tasks.clone());
    let gvm = r.gvm.as_ref().expect("virtualized run has GVM stats");
    assert!(gvm.fused_dma_groups > 0, "no DMA submission was fused");
    assert!(
        gvm.fused_dma_subs >= gvm.fused_dma_groups * 2,
        "fused groups must carry at least two sub-ops each"
    );
    assert!(gvm.batched_launches > 0, "no kernel launch was batched");
    assert!(gvm.fused_dma_ratio() > 0.0);
    let report = r.analysis.as_ref().expect("analyzed scenario has report");
    assert!(report.coalesce_events > 0, "no CoalesceOp manifest emitted");
    let coalesce_diags: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.checker == "coalesce")
        .collect();
    assert!(
        coalesce_diags.is_empty(),
        "coalesce checker flagged the fused trace: {coalesce_diags:?}"
    );

    let off = base.clone().with_mem(MemConfig::default());
    let r = off.run(ExecutionMode::Virtualized, tasks);
    let gvm = r.gvm.as_ref().expect("virtualized run has GVM stats");
    assert_eq!(gvm.fused_dma_groups, 0);
    assert_eq!(gvm.batched_launches, 0);
    assert_eq!(gvm.fused_dma_ratio(), 0.0);
}

/// Arbitrary members for the planner property: a mix of adjacent and
/// scattered leases, eligible and not, with payloads straddling the fuse
/// threshold.
fn arb_members() -> impl Strategy<Value = Vec<CoalesceMember>> {
    prop::collection::vec(
        (
            0usize..16,
            0u64..=(8 << 20),
            0u64..64,
            0u8..3,
            any::<bool>(),
        ),
        0..24,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(
                |(i, (rank, bytes, slot, cap_class, eligible))| CoalesceMember {
                    rank,
                    bytes,
                    place: slot * (1 << 20),
                    cap: [4096u64, 65536, 1 << 20][cap_class as usize],
                    buf: i as u64,
                    generation: 1,
                    eligible,
                },
            )
            .collect()
    })
}

proptest! {
    /// Any plan is an exact partition: concatenating its runs in order
    /// reproduces `0..n` — every member covered once (no gap), none twice
    /// (no overlap), input order preserved.
    #[test]
    fn plan_is_an_exact_order_preserving_partition(
        members in arb_members(),
        enabled in any::<bool>(),
        max_group in 0usize..6,
    ) {
        let cfg = CoalesceConfig {
            enabled,
            max_group,
            ..CoalesceConfig::on()
        };
        let plan = CoalescePlan::plan(&cfg, &members);
        let flat: Vec<usize> = plan.runs.iter().flatten().copied().collect();
        prop_assert_eq!(flat, (0..members.len()).collect::<Vec<_>>());
        prop_assert_eq!(plan.len(), members.len());
        for run in &plan.runs {
            prop_assert!(!run.is_empty(), "runs are never empty");
            prop_assert!(run.len() <= max_group.max(1), "run exceeds max_group");
        }
    }

    /// Every fused run obeys the fusion rules: all members eligible, in
    /// `(0, fuse_threshold]`, and each lease region starting exactly where
    /// the previous one ends.
    #[test]
    fn fused_runs_are_adjacent_and_eligible(members in arb_members()) {
        let cfg = CoalesceConfig::on();
        let plan = CoalescePlan::plan(&cfg, &members);
        for run in plan.runs.iter().filter(|r| r.len() >= 2) {
            for window in run.windows(2) {
                let (a, b) = (&members[window[0]], &members[window[1]]);
                prop_assert!(a.eligible && b.eligible);
                prop_assert!(a.bytes > 0 && a.bytes <= cfg.fuse_threshold);
                prop_assert!(b.bytes > 0 && b.bytes <= cfg.fuse_threshold);
                prop_assert_eq!(a.place + a.cap, b.place);
            }
        }
    }
}

//! Property tests for the pure cluster placement planner.
//!
//! Over random request sets (tenants, gangs, memory demands) and random
//! device inventories, for every policy:
//!
//! * **total assignment** — every feasible request set plans with each
//!   request assigned exactly once, dense id-ordered slots per
//!   (device, wave) GVM, and infeasibility is reported exactly when some
//!   group exceeds every empty device.
//! * **capacity** — no (device, wave) ever exceeds its declared memory or
//!   kernel-slot capacity.
//! * **gang atomicity** — all members of a gang land on one device in one
//!   wave, or the whole gang is deferred (all-or-nothing).
//! * **work conservation** — BinPack/Spread/Gang defer a group only when
//!   it fits on no device at the wave's close.
//! * **DRF fairness** — replaying the admission audit trail, every DRF
//!   admission goes to a minimal-dominant-share tenant among those whose
//!   next group still fits (progressive filling).
//! * **determinism** — planning is a pure function of its inputs.

use std::collections::{BTreeMap, HashMap, HashSet};

use gvirt::gpu::KernelDesc;
use gvirt::kernels::{GpuTask, KernelTemplate, WorkloadClass};
use gvirt::sim::SimDuration;
use gvirt::virt::cluster::{plan, Admission, ClusterPlan, DeviceCap, PlacePolicy, VgpuRequest};
use gvirt::virt::MemQuota;
use proptest::prelude::*;

fn task(mem: u64) -> GpuTask {
    GpuTask {
        name: "t".into(),
        class: WorkloadClass::Intermediate,
        ctx_switch_cost: SimDuration::from_millis(1),
        device_bytes: mem,
        iterations: 1,
        bytes_in: 64,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: 64,
        d2h_offset: 0,
        kernels: vec![KernelTemplate::timing(KernelDesc::new("k", 4, 64))],
    }
}

/// Decode raw generator tuples into a request set. Gang ids encode their
/// tenant so gangs never span tenants (a planning error by construction).
fn requests_from(specs: &[(u64, u8, u8)]) -> Vec<VgpuRequest> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(mem_sel, tenant, gang_sel))| VgpuRequest {
            id: i as u64,
            tenant: tenant as u64,
            gang: (gang_sel < 3).then(|| tenant as u64 * 8 + gang_sel as u64),
            quota: MemQuota::Unlimited,
            task: task((1 + mem_sel) * 100),
        })
        .collect()
}

fn caps_from(specs: &[(u64, u32)]) -> Vec<DeviceCap> {
    specs
        .iter()
        .map(|&(mem_sel, slots)| DeviceCap {
            mem_bytes: mem_sel * 100,
            kernel_slots: slots,
        })
        .collect()
}

/// The planner's grouping, reconstructed independently: (arrival, tenant,
/// gang, mem, member ids ascending).
type Group = (usize, u64, Option<u64>, u64, Vec<u64>);

fn groups_of(requests: &[VgpuRequest]) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    let mut gang_idx: HashMap<u64, usize> = HashMap::new();
    for (i, r) in requests.iter().enumerate() {
        match r.gang {
            Some(g) => match gang_idx.get(&g) {
                Some(&gi) => {
                    groups[gi].3 += r.task.device_bytes;
                    groups[gi].4.push(r.id);
                }
                None => {
                    gang_idx.insert(g, groups.len());
                    groups.push((i, r.tenant, Some(g), r.task.device_bytes, vec![r.id]));
                }
            },
            None => groups.push((i, r.tenant, None, r.task.device_bytes, vec![r.id])),
        }
    }
    for g in &mut groups {
        g.4.sort_unstable();
    }
    groups
}

/// True when some empty device can hold a (mem, sessions) demand.
fn fits_empty(caps: &[DeviceCap], mem: u64, sessions: u32) -> bool {
    caps.iter()
        .any(|c| mem <= c.mem_bytes && sessions <= c.kernel_slots)
}

/// Plan, and either return the plan or verify the infeasibility claim.
fn plan_or_verify_error(
    policy: PlacePolicy,
    requests: &[VgpuRequest],
    caps: &[DeviceCap],
) -> Option<ClusterPlan> {
    match plan(policy, requests, caps) {
        Ok(p) => Some(p),
        Err(e) => {
            let oversize = groups_of(requests)
                .iter()
                .any(|(_, _, _, mem, ids)| !fits_empty(caps, *mem, ids.len() as u32));
            assert!(
                oversize || caps.is_empty(),
                "{policy}: planner rejected a feasible set: {e}"
            );
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Total assignment, capacity, gang atomicity, and dense id-ordered
    /// slots — every policy, every random request set and inventory.
    #[test]
    fn placement_invariants_hold_for_every_policy(
        specs in prop::collection::vec((0u64..8, 0u8..4, 0u8..6), 1usize..48),
        dev_specs in prop::collection::vec((5u64..40, 2u32..10), 1usize..5),
    ) {
        let requests = requests_from(&specs);
        let caps = caps_from(&dev_specs);
        for policy in PlacePolicy::all() {
            let Some(p) = plan_or_verify_error(policy, &requests, &caps) else { continue };

            // Every request assigned exactly once, in arrival order.
            prop_assert_eq!(p.assignments.len(), requests.len());
            for (a, r) in p.assignments.iter().zip(&requests) {
                prop_assert_eq!(a.request, r.id);
                prop_assert!(a.device < caps.len());
                prop_assert!(a.wave < p.waves);
            }

            // Capacity per (wave, device).
            let mut usage: HashMap<(u32, usize), (u64, u32)> = HashMap::new();
            for a in &p.assignments {
                let e = usage.entry((a.wave, a.device)).or_default();
                e.0 += a.mem_bytes;
                e.1 += 1;
            }
            for (&(w, d), &(mem, slots)) in &usage {
                prop_assert!(mem <= caps[d].mem_bytes,
                    "{} wave {} dev {}: {} > {}", policy, w, d, mem, caps[d].mem_bytes);
                prop_assert!(slots <= caps[d].kernel_slots,
                    "{} wave {} dev {}: {} sessions > {}", policy, w, d, slots, caps[d].kernel_slots);
            }

            // Gang atomicity: one (device, wave) per gang.
            let mut gang_site: HashMap<u64, (usize, u32)> = HashMap::new();
            for a in &p.assignments {
                if let Some(g) = a.gang {
                    let site = (a.device, a.wave);
                    let prev = gang_site.entry(g).or_insert(site);
                    prop_assert_eq!(*prev, site, "{}: gang {} split", policy, g);
                }
            }

            // Slots dense and id-ordered per (device, wave) GVM.
            let mut per_gvm: BTreeMap<(u32, usize), Vec<(usize, u64)>> = BTreeMap::new();
            for a in &p.assignments {
                per_gvm.entry((a.wave, a.device)).or_default().push((a.slot, a.request));
            }
            for members in per_gvm.values_mut() {
                members.sort();
                for (want, &(slot, _)) in members.iter().enumerate() {
                    prop_assert_eq!(slot, want, "{}: slots not dense", policy);
                }
                let ids: Vec<u64> = members.iter().map(|&(_, id)| id).collect();
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                prop_assert_eq!(ids, sorted, "{}: slot order not id order", policy);
            }
        }
    }

    /// Work conservation for the greedy policies: a group waits for wave
    /// `w+1` only if it fits on no device when wave `w` closes.
    #[test]
    fn greedy_policies_defer_only_when_full(
        specs in prop::collection::vec((0u64..8, 0u8..4, 0u8..6), 1usize..48),
        dev_specs in prop::collection::vec((5u64..40, 2u32..10), 1usize..5),
    ) {
        let requests = requests_from(&specs);
        let caps = caps_from(&dev_specs);
        for policy in [PlacePolicy::BinPack, PlacePolicy::Spread, PlacePolicy::Gang] {
            let Some(p) = plan_or_verify_error(policy, &requests, &caps) else { continue };

            // Final load of each wave.
            let mut load: HashMap<(u32, usize), (u64, u32)> = HashMap::new();
            for a in &p.assignments {
                let e = load.entry((a.wave, a.device)).or_default();
                e.0 += a.mem_bytes;
                e.1 += 1;
            }
            let wave_of: HashMap<u64, u32> =
                p.assignments.iter().map(|a| (a.request, a.wave)).collect();
            for (_, _, _, gmem, ids) in groups_of(&requests) {
                let w = wave_of[&ids[0]];
                let sessions = ids.len() as u32;
                // The group was pending at the close of every earlier wave.
                for earlier in 0..w {
                    let fits_somewhere = (0..caps.len()).any(|d| {
                        let (m, s) = load.get(&(earlier, d)).copied().unwrap_or((0, 0));
                        m + gmem <= caps[d].mem_bytes && s + sessions <= caps[d].kernel_slots
                    });
                    prop_assert!(
                        !fits_somewhere,
                        "{}: group {:?} deferred past wave {} it fit into",
                        policy, ids, earlier
                    );
                }
            }
        }
    }

    /// DRF progressive filling, replayed against an independent oracle:
    /// each admission's tenant has minimal (dominant share, id) among the
    /// tenants whose FIFO-next group still fits somewhere.
    #[test]
    fn drf_admits_minimal_dominant_share_tenants(
        specs in prop::collection::vec((0u64..8, 0u8..4, 0u8..6), 1usize..48),
        dev_specs in prop::collection::vec((5u64..40, 2u32..10), 1usize..5),
    ) {
        let requests = requests_from(&specs);
        let caps = caps_from(&dev_specs);
        if let Some(p) = plan_or_verify_error(PlacePolicy::Drf, &requests, &caps) {
        let mem_total: u64 = caps.iter().map(|c| c.mem_bytes).sum();
        let slots_total: u32 = caps.iter().map(|c| c.kernel_slots).sum();
        let share = |alloc: &HashMap<u64, (u64, u32)>, t: u64| -> f64 {
            let (m, s) = alloc.get(&t).copied().unwrap_or((0, 0));
            (m as f64 / mem_total as f64).max(s as f64 / slots_total as f64)
        };

        // Pending groups in arrival order: (tenant, mem, sessions, ids).
        let mut pending: Vec<(u64, u64, u32, Vec<u64>)> = groups_of(&requests)
            .into_iter()
            .map(|(_, t, _, mem, ids)| (t, mem, ids.len() as u32, ids))
            .collect();

        let mut wave = 0u32;
        let mut loads: Vec<(u64, u32)> = vec![(0, 0); caps.len()];
        let mut shares: HashMap<u64, (u64, u32)> = HashMap::new();
        for Admission { wave: w, device, tenant, requests: ids, .. } in &p.admissions {
            if *w != wave {
                prop_assert_eq!(*w, wave + 1, "waves advance one at a time");
                wave = *w;
                loads = vec![(0, 0); caps.len()];
                shares.clear();
            }
            // The admitted group is its tenant's FIFO-next pending group.
            let pos = pending
                .iter()
                .position(|(t, _, _, gids)| t == tenant && gids == ids)
                .expect("admitted group is pending");
            prop_assert!(
                pending.iter().take(pos).all(|(t, ..)| t != tenant),
                "DRF skipped tenant {}'s earlier group", tenant
            );
            let (_, gmem, gsessions, _) = pending[pos].clone();

            // Envy bound: any tenant strictly ahead in (share, id) order
            // must be stuck — its FIFO-next group fits nowhere right now.
            let s_t = share(&shares, *tenant);
            let mut checked: HashSet<u64> = HashSet::new();
            for (u, umem, usessions, _) in &pending {
                if u == tenant || !checked.insert(*u) {
                    continue; // only each tenant's FIFO-next group
                }
                let s_u = share(&shares, *u);
                let ahead = s_u < s_t || (s_u == s_t && u < tenant);
                if ahead {
                    let fits_somewhere = (0..caps.len()).any(|d| {
                        loads[d].0 + umem <= caps[d].mem_bytes
                            && loads[d].1 + usessions <= caps[d].kernel_slots
                    });
                    prop_assert!(
                        !fits_somewhere,
                        "DRF admitted tenant {} (share {:.3}) while tenant {} \
                         (share {:.3}) had a fitting group",
                        tenant, s_t, u, s_u
                    );
                }
            }

            // Apply the admission.
            prop_assert!(
                loads[*device].0 + gmem <= caps[*device].mem_bytes
                    && loads[*device].1 + gsessions <= caps[*device].kernel_slots,
                "DRF admission overflows device {}", device
            );
            loads[*device].0 += gmem;
            loads[*device].1 += gsessions;
            let e = shares.entry(*tenant).or_insert((0, 0));
            e.0 += gmem;
            e.1 += gsessions;
            pending.remove(pos);
        }
        prop_assert!(pending.is_empty(), "every group is eventually admitted");
        }
    }

    /// Planning is deterministic: the same inputs give the same plan,
    /// admission for admission.
    #[test]
    fn planning_is_deterministic(
        specs in prop::collection::vec((0u64..8, 0u8..4, 0u8..6), 1usize..48),
        dev_specs in prop::collection::vec((5u64..40, 2u32..10), 1usize..5),
    ) {
        let requests = requests_from(&specs);
        let caps = caps_from(&dev_specs);
        for policy in PlacePolicy::all() {
            let a = plan(policy, &requests, &caps);
            let b = plan(policy, &requests_from(&specs), &caps_from(&dev_specs));
            prop_assert_eq!(a, b, "{} not deterministic", policy);
        }
    }
}

//! State-machine properties of the fault-tolerant GVM: for *arbitrary*
//! seeded fault schedules ([`FaultPlan::random`]) and arbitrary client
//! start staggering, the protocol state machine must
//!
//! 1. **never deadlock** — the simulation always terminates with the
//!    `done` gate open (timed receives + idle eviction guarantee progress);
//! 2. **never leak device memory** — evicted, released, and NAKed ranks
//!    all return the allocator to zero;
//! 3. **keep survivors correct** — any rank that completes, and whose
//!    shared-memory segment was not a corruption target, produces the
//!    bit-exact CPU reference result;
//! 4. **replay deterministically** — the same plan and stagger yield the
//!    same per-rank outcomes and the same fault-event trace.

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::vecadd;
use gvirt::sim::{SimDuration, Simulation};
use gvirt::virt::{ClientPolicy, FaultPlan, FaultSpec, Gvm, GvmConfig, TaskError, VgpuClient};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

const RANKS: usize = 4;

/// One deterministic run: per-rank results, allocator residue, fault trace.
struct Outcome {
    /// `(rank, result)` sorted by rank; `Ok(bytes)` is the functional output.
    results: Vec<(usize, Result<Vec<u8>, TaskError>)>,
    used_after: u64,
    evictions: u64,
    fault_labels: Vec<String>,
}

fn run_plan(plan: &FaultPlan, stagger_us: &[u64; RANKS]) -> Outcome {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..RANKS)
        .map(|r| {
            let a: Vec<f32> = (0..128).map(|i| (i + r * 1000) as f32).collect();
            let b: Vec<f32> = (0..128).map(|i| (i * 3 + r) as f32).collect();
            (a, b)
        })
        .collect();
    let tasks: Vec<_> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();
    let handle = Gvm::install(
        &mut sim,
        &node,
        &cuda,
        GvmConfig::fault_tolerant(RANKS),
        tasks,
    );
    plan.install(&handle, &device);
    let tracer = sim.tracer();
    tracer.set_enabled(true);
    type Results = Arc<Mutex<Vec<(usize, Result<Vec<u8>, TaskError>)>>>;
    let results: Results = Arc::new(Mutex::new(Vec::new()));
    for (rank, &stag) in stagger_us.iter().enumerate().take(RANKS) {
        let handle = handle.clone();
        let results = results.clone();
        let abort = plan.abort_stage(rank);
        let delay = SimDuration::from_micros(stag);
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            ctx.hold(delay);
            let policy = ClientPolicy::with_timeout(SimDuration::from_millis(10), 5);
            let mut client = VgpuClient::connect_with_policy(ctx, &handle, rank, policy);
            if let Some(stage) = abort {
                client.abort_at(stage);
            }
            let res = client
                .try_run_task(ctx)
                .map(|(_, out)| out.expect("functional output"));
            results.lock().push((rank, res));
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    // Property 1: this `unwrap` *is* the no-deadlock assertion — a stuck
    // state machine would surface as `SimError::Deadlock` here.
    sim.run().unwrap();
    let mut results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("client still running"))
        .into_inner();
    results.sort_by_key(|(r, _)| *r);
    let evictions = handle.stats.lock().evictions;
    Outcome {
        results,
        used_after: device.with_memory(|m| m.used()),
        evictions,
        fault_labels: tracer
            .fault_events()
            .iter()
            .map(|e| format!("{} {}", e.time.as_nanos(), e.label))
            .collect(),
    }
}

/// Ranks whose shm segment is a corruption target (their data path is
/// deliberately poisoned, so bit-exactness is not expected).
fn corrupted_ranks(plan: &FaultPlan) -> Vec<usize> {
    plan.faults
        .iter()
        .filter_map(|f| match f {
            FaultSpec::ShmCorrupt { rank, .. } => Some(*rank),
            _ => None,
        })
        .collect()
}

proptest! {
    // Every case runs 2 full multi-threaded simulations (replay check);
    // keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fault_schedules_never_deadlock_leak_or_corrupt_survivors(
        seed in 0u64..1_000_000,
        nfaults in 0usize..8,
        s0 in 0u64..2_000, // per-rank join stagger, 0..2ms
        s1 in 0u64..2_000,
        s2 in 0u64..2_000,
        s3 in 0u64..2_000,
    ) {
        let stagger = [s0, s1, s2, s3];
        let plan = FaultPlan::random(seed, RANKS, nfaults);
        let out = run_plan(&plan, &stagger);

        // Property 2: no device-memory leak, whatever happened.
        prop_assert_eq!(out.used_after, 0, "plan {:?} leaked", plan);
        prop_assert!(out.evictions as usize <= RANKS);

        // Property 3: completed, uncorrupted ranks are bit-exact.
        let poisoned = corrupted_ranks(&plan);
        for (rank, res) in &out.results {
            if let Ok(bytes) = res {
                if poisoned.contains(rank) {
                    continue;
                }
                let got: Vec<u32> =
                    vecadd::decode_output(bytes).iter().map(|f| f.to_bits()).collect();
                let a: Vec<f32> = (0..128).map(|i| (i + rank * 1000) as f32).collect();
                let b: Vec<f32> = (0..128).map(|i| (i * 3 + rank) as f32).collect();
                let want: Vec<u32> =
                    vecadd::reference(&a, &b).iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(got, want, "rank {} wrong under plan {:?}", rank, plan);
            }
        }

        // Property 4: identical plan + stagger replays identically.
        let replay = run_plan(&plan, &stagger);
        prop_assert_eq!(replay.fault_labels, out.fault_labels);
        let fmt = |o: &Outcome| -> Vec<String> {
            o.results
                .iter()
                .map(|(r, res)| match res {
                    Ok(b) => format!("{r} ok {b:?}"),
                    Err(e) => format!("{r} err {e:?}"),
                })
                .collect()
        };
        prop_assert_eq!(fmt(&replay), fmt(&out));
    }
}

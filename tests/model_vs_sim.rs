//! The analytical model against the simulator — the paper's Table III
//! methodology, end to end: profile the benchmark, feed the profile into
//! Eqs. (1)–(6), and compare with measured turnarounds.

use gvirt::harness::profile;
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::harness::turnaround;
use gvirt::kernels::{Benchmark, BenchmarkId};
use gvirt::model::{fit_linear, SpeedupModel};

/// Model-vs-simulation deviation stays under the paper's ~20 % band for
/// both microbenchmarks (scaled for test speed; scaling preserves ratios
/// of everything except the fixed init/switch terms, so bands are wider).
#[test]
fn table3_deviation_band() {
    let sc = Scenario::default();
    for (id, max_dev) in [(BenchmarkId::VecAdd, 0.30), (BenchmarkId::Ep, 0.15)] {
        let prof = profile::measure(&sc, id, 8);
        let model = SpeedupModel::new(prof.profile);
        let point = turnaround::at_n(&sc, id, 8, 8);
        let dev = model.deviation(8, point.speedup());
        assert!(
            dev < max_dev,
            "{id:?}: model deviation {:.1}% exceeds {:.0}%",
            dev * 100.0,
            max_dev * 100.0
        );
    }
}

/// The virtualized turnaround series' slope matches Eq. (4):
/// `MAX(Tdata_in, Tdata_out)` per added process (I/O-bound benchmark).
#[test]
fn virtualized_slope_is_max_io() {
    let sc = Scenario::default();
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 16);
    let pts: Vec<(f64, f64)> = (1..=5)
        .map(|n| {
            let r = sc.run_uniform(ExecutionMode::Virtualized, &task, n);
            (n as f64, r.turnaround_ms)
        })
        .collect();
    let (_, slope) = fit_linear(&pts);
    // Scaled task: 25 MB in via the GVM's pinned path; the slope also
    // carries the GVM's serialized staging copies, so compare against
    // pinned H2D alone as a lower bound and pinned+staging as upper.
    let h2d = sc
        .device
        .copy_time(task.bytes_in, true, true)
        .as_millis_f64();
    let staging = sc
        .node
        .memcpy_time(task.bytes_in + task.bytes_out)
        .as_millis_f64();
    assert!(
        slope >= h2d * 0.9 && slope <= (h2d + staging) * 1.4,
        "slope {slope:.2} ms outside [{:.2}, {:.2}]",
        h2d * 0.9,
        (h2d + staging) * 1.4
    );
}

/// The conventional series' slope matches Eq. (1): switch cost + cycle.
#[test]
fn direct_slope_is_switch_plus_cycle() {
    let sc = Scenario::default();
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 16);
    let pts: Vec<(f64, f64)> = (2..=6)
        .map(|n| {
            let r = sc.run_uniform(ExecutionMode::Direct, &task, n);
            (n as f64, r.turnaround_ms)
        })
        .collect();
    let (_, slope) = fit_linear(&pts);
    let single = sc.run_uniform(ExecutionMode::Direct, &task, 1);
    let cycle = single.runs[0].t_data_in() + single.runs[0].t_comp() + single.runs[0].t_data_out();
    let expected = task.ctx_switch_cost.as_millis_f64() + cycle;
    let err = (slope - expected).abs() / expected;
    assert!(
        err < 0.35,
        "slope {slope:.1} vs Eq. (1) prediction {expected:.1} ({:.0}% off)",
        err * 100.0
    );
}

/// EP's virtualized turnaround is flat in n (the paper's striking Fig. 9
/// right panel): adding processes costs almost nothing because the GPU has
/// idle SMs to absorb them.
#[test]
fn ep_virtualized_turnaround_is_flat() {
    let sc = Scenario::default();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &sc.device, 32);
    let t1 = sc
        .run_uniform(ExecutionMode::Virtualized, &task, 1)
        .turnaround_ms;
    let t8 = sc
        .run_uniform(ExecutionMode::Virtualized, &task, 8)
        .turnaround_ms;
    assert!(
        t8 < t1 * 1.10,
        "EP turnaround should be flat: t1 = {t1:.1} ms, t8 = {t8:.1} ms"
    );
}

/// The Eq. (3) regime (paper Figs. 5(b)/6(b)): when `Tdata_out > Tdata_in`
/// the virtualized pipeline's bottleneck flips to the D2H engine, and the
/// turnaround slope becomes `MAX(Tin, Tout) = Tout`.
#[test]
fn reversed_io_switches_to_eq3_regime() {
    use gvirt::gpu::KernelDesc;
    use gvirt::kernels::{GpuTask, KernelTemplate, WorkloadClass};
    use gvirt::sim::SimDuration;

    let sc = Scenario::default();
    let cfg = &sc.device;
    // A task that reads back far more than it sends: 4 MB in, 40 MB out
    // (e.g. a field-generation kernel).
    let desc = KernelDesc::new("gen", 64, 128)
        .regs(16)
        .with_target_time(cfg, SimDuration::from_millis_f64(0.5));
    let task = GpuTask {
        name: "reversed-io".into(),
        class: WorkloadClass::IoIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(50.0),
        device_bytes: 44_000_000,
        iterations: 1,
        bytes_in: 4_000_000,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: 40_000_000,
        d2h_offset: 4_000_000,
        kernels: vec![KernelTemplate::timing(desc)],
    };
    let pts: Vec<(f64, f64)> = (1..=5)
        .map(|n| {
            let r = sc.run_uniform(ExecutionMode::Virtualized, &task, n);
            (n as f64, r.turnaround_ms)
        })
        .collect();
    let (_, slope) = fit_linear(&pts);
    let d2h = cfg.copy_time(task.bytes_out, false, true).as_millis_f64();
    let h2d = cfg.copy_time(task.bytes_in, true, true).as_millis_f64();
    assert!(
        d2h > 5.0 * h2d,
        "task setup must be D2H-dominated: {d2h:.2} vs {h2d:.2}"
    );
    // Slope tracks the D2H time (plus the GVM's serialized staging of the
    // large output), never the (tiny) H2D time.
    let staging = sc.node.memcpy_time(task.bytes_out).as_millis_f64();
    assert!(
        slope >= d2h * 0.9 && slope <= (d2h + staging) * 1.4,
        "slope {slope:.2} ms should track Tout ≈ {d2h:.2} ms, not Tin ≈ {h2d:.2} ms"
    );
}

//! Timeline-based overlap audits: the paper's Figs. 4–6 execution diagrams
//! as machine-checked facts.

use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::harness::timeline::Timeline;
use gvirt::kernels::{Benchmark, BenchmarkId};

/// Fig. 5: under virtualization, EP kernels from different processes run
/// concurrently, and nothing context-switches.
#[test]
fn virtualized_ep_kernels_overlap() {
    let sc = Scenario::traced();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &sc.device, 64);
    let r = sc.run_uniform(ExecutionMode::Virtualized, &task, 3);
    let tl = r.timeline.as_ref().unwrap();
    assert!(tl.kernels_overlap(), "expected concurrent kernels");
    assert!(tl.switches.is_empty(), "no context switches expected");
}

/// Fig. 4: conventional sharing never overlaps kernels of different
/// processes, and every handoff shows a switch interval.
#[test]
fn direct_ep_kernels_serialize_with_switch_intervals() {
    let sc = Scenario::traced();
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &sc.device, 64);
    let r = sc.run_uniform(ExecutionMode::Direct, &task, 3);
    let tl = r.timeline.as_ref().unwrap();
    assert!(
        !tl.kernels_overlap(),
        "direct sharing must serialize kernels"
    );
    assert_eq!(tl.switches.len(), 2, "n-1 switch intervals");
    // Switch intervals really cost the task's configured switch time.
    let switch_ms = Timeline::busy_ms(&tl.switches);
    let expected = 2.0 * task.ctx_switch_cost.as_millis_f64();
    assert!((switch_ms - expected).abs() / expected < 0.01);
}

/// Fig. 6: under virtualization, an I/O benchmark pipelines — some
/// transfer overlaps another process's kernel, and the two DMA directions
/// overlap each other.
#[test]
fn virtualized_vecadd_pipelines_transfers() {
    let sc = Scenario::traced();
    let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 16);
    let r = sc.run_uniform(ExecutionMode::Virtualized, &task, 4);
    let tl = r.timeline.as_ref().unwrap();
    assert!(tl.bidirectional_overlap(), "H2D should overlap D2H");
    assert!(
        tl.copy_overlaps_foreign_kernel() || tl.kernels_overlap(),
        "pipeline should overlap transfers with compute"
    );
}

/// The no-concurrent-kernels ablation visibly removes kernel overlap from
/// the timeline while leaving the protocol intact.
#[test]
fn ablated_device_shows_no_kernel_overlap() {
    let mut sc = Scenario::traced();
    sc.device.max_concurrent_kernels = 1;
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &sc.device, 64);
    let r = sc.run_uniform(ExecutionMode::Virtualized, &task, 3);
    let tl = r.timeline.as_ref().unwrap();
    assert!(
        !tl.kernels_overlap(),
        "window of 1 admits one kernel at a time"
    );
    assert_eq!(r.device.ctx_switches, 0, "still a single context");
}

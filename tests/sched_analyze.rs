//! `gv-analyze` coverage for non-joint scheduling traces.
//!
//! The conformance linter's flush-width rule is policy-dependent: joint
//! traces must flush exactly the barriered set, while traces announcing a
//! partial policy (`ProtoSched { partial: true }`) may flush any
//! *non-empty subset* of it. These fixtures pin that relaxation against
//! real end-to-end traces from every policy, prove the relaxed rule still
//! rejects genuine violations, and exercise the idempotent-retry path
//! under the reordering SJF policy (a duplicated request must neither
//! corrupt results nor dirty the trace).

use std::sync::Arc;

use gvirt::analyze;
use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{vecadd, GpuTask};
use gvirt::sim::{AnalysisRecord, SimDuration, SimTime, Simulation};
use gvirt::virt::{
    ClientPolicy, FaultPlan, FaultSpec, Gvm, GvmConfig, QueueSel, SchedPolicy, VgpuClient,
};
use parking_lot::Mutex;

fn rank_tasks(cfg: &DeviceConfig, n: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|r| {
            let a: Vec<f32> = (0..96).map(|i| (i * (r + 1)) as f32).collect();
            let b: Vec<f32> = (0..96).map(|i| (i + r * 7) as f32 * 0.5).collect();
            vecadd::functional_task(cfg, &a, &b)
        })
        .collect()
}

/// Golden fixture per policy: a staggered 8-rank run under each scheduler
/// analyzes clean, and the reordering policies genuinely exercise the
/// relaxed rule (their GVM performed partial flushes).
#[test]
fn every_policy_trace_analyzes_clean() {
    let n = 8;
    for policy in [
        SchedPolicy::JointFlush,
        SchedPolicy::Fcfs,
        SchedPolicy::AdaptiveBatch {
            k: 3,
            timeout: Some(SimDuration::from_micros(200)),
        },
        SchedPolicy::ShortestJobFirst,
    ] {
        let name = policy.name();
        let sc = Scenario {
            analyze: true,
            ..Scenario::default()
        }
        .with_scheduler(policy)
        .with_stagger(SimDuration::from_micros(150));
        let tasks = rank_tasks(&sc.device, n);
        let r = sc.run(ExecutionMode::Virtualized, tasks);
        let report = r.analysis.as_ref().expect("analysis ran");
        assert!(
            report.is_clean(),
            "{name}: trace must analyze clean:\n{}",
            report.render()
        );
        let gvm = r.gvm.as_ref().unwrap();
        if name == "fcfs" {
            assert!(
                gvm.partial_flushes > 0,
                "fcfs staggered run must hit the relaxed flush-width rule"
            );
        }
        // Every policy announces itself in the trace exactly once.
        let records = r.tracer.as_ref().unwrap().analysis_snapshot();
        let announcements: Vec<&str> = records
            .iter()
            .filter_map(|rec| match rec {
                AnalysisRecord::ProtoSched { policy, .. } => Some(policy.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(announcements, vec![name], "one ProtoSched per trace");
    }
}

/// Real policy traces survive the dump round-trip (the `sched` record
/// included) and re-analyze to the same verdict.
#[test]
fn policy_trace_dump_roundtrips_and_stays_clean() {
    let sc = Scenario {
        analyze: true,
        ..Scenario::default()
    }
    .with_scheduler(SchedPolicy::Fcfs)
    .with_stagger(SimDuration::from_micros(100));
    let tasks = rank_tasks(&sc.device, 4);
    let r = sc.run(ExecutionMode::Virtualized, tasks);
    let records = r.tracer.as_ref().unwrap().analysis_snapshot();
    let dump = analyze::model::to_dump(&records);
    assert!(dump.contains("sched "), "dump carries the policy record");
    let parsed = analyze::model::parse_dump(&dump).expect("dump parses");
    assert_eq!(parsed.len(), records.len());
    assert!(analyze::analyze(&parsed).is_clean());
}

/// The relaxed rule is *not* a free pass: a partial-policy trace whose
/// flush covers a rank that never barriered — or covers nobody — is
/// still a conformance violation.
#[test]
fn relaxed_rule_still_rejects_real_violations() {
    let sched = AnalysisRecord::ProtoSched {
        time: SimTime::ZERO,
        gvm: "gvm".to_string(),
        policy: "fcfs".to_string(),
        partial: true,
    };
    let str0 = AnalysisRecord::Proto {
        time: SimTime::ZERO + SimDuration::from_micros(1),
        gvm: "gvm".to_string(),
        rank: 0,
        kind: "STR",
        seq: 1,
    };
    let unbarriered = vec![
        sched.clone(),
        str0.clone(),
        AnalysisRecord::ProtoFlush {
            time: SimTime::ZERO + SimDuration::from_micros(2),
            gvm: "gvm".to_string(),
            ranks: vec![1], // rank 1 never sent STR
        },
    ];
    assert!(
        !analyze::analyze(&unbarriered).is_clean(),
        "flushing an unbarriered rank must stay a violation"
    );
    let empty = vec![
        sched,
        str0,
        AnalysisRecord::ProtoFlush {
            time: SimTime::ZERO + SimDuration::from_micros(2),
            gvm: "gvm".to_string(),
            ranks: vec![],
        },
    ];
    assert!(
        !analyze::analyze(&empty).is_clean(),
        "an empty flush must stay a violation even under partial policies"
    );
}

/// SJF retry-reorder idempotence: duplicate a request-queue message under
/// the reordering SJF policy. The seq-numbered idempotent server must
/// ignore the replay — outputs stay bit-exact and the trace stays clean.
#[test]
fn sjf_duplicated_request_is_idempotent_and_clean() {
    for nth in [2u64, 5, 9] {
        let n = 4;
        let mut sim = Simulation::new();
        sim.tracer().set_analysis(true);
        let cfg = DeviceConfig::tesla_c2070_paper();
        let device = GpuDevice::install(&mut sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());
        let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
            .map(|r| {
                let a: Vec<f32> = (0..48).map(|i| (i * (r + 1)) as f32).collect();
                let b: Vec<f32> = (0..48).map(|i| (i + r * 9) as f32).collect();
                (a, b)
            })
            .collect();
        let tasks: Vec<GpuTask> = inputs
            .iter()
            .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
            .collect();
        let config = GvmConfig::fault_tolerant(n).with_scheduler(SchedPolicy::ShortestJobFirst);
        let handle = Gvm::install(&mut sim, &node, &cuda, config, tasks);
        let plan = FaultPlan::new(7).push(FaultSpec::MqDuplicate {
            queue: QueueSel::Request,
            nth,
        });
        plan.install(&handle, &device);
        type Outs = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
        let outs: Outs = Arc::new(Mutex::new(Vec::new()));
        for rank in 0..n {
            let handle = handle.clone();
            let outs = outs.clone();
            node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let client = VgpuClient::connect_with_policy(
                    ctx,
                    &handle,
                    rank,
                    ClientPolicy::with_timeout(SimDuration::from_millis(50), 5),
                );
                let (_, out) = client.run_task(ctx);
                outs.lock().push((rank, out.expect("functional output")));
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
        let tracer = sim.tracer();
        sim.run().unwrap();
        let mut outs = Arc::try_unwrap(outs)
            .unwrap_or_else(|_| panic!("outputs still shared"))
            .into_inner();
        outs.sort_by_key(|(r, _)| *r);
        for (rank, bytes) in &outs {
            let (a, b) = &inputs[*rank];
            let got: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            assert_eq!(&got, &vecadd::reference(a, b), "nth={nth} rank {rank}");
        }
        let report = analyze::analyze_tracer(&tracer);
        assert!(
            report.is_clean(),
            "nth={nth}: duplicated request dirtied the trace:\n{}",
            report.render()
        );
    }
}

//! Seeded-fault fixtures for the zero-copy descriptor checkers: each
//! hand-constructed trace plants exactly one violation, and the full
//! `gv-analyze` suite must report exactly one diagnostic for it — the
//! checkers neither miss the fault nor cascade into spurious findings.
//! Also pins the `dgrant`/`duse` dump round trip so offline re-checking
//! sees the same descriptor stream a live run recorded.

use gvirt::analyze::model::{parse_dump, to_dump};
use gvirt::analyze::{analyze, staging};
use gvirt::sim::{AnalysisRecord, Pid, SimTime, VClock};

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

fn acq(ns: u64, buf: u64, bytes: u64) -> AnalysisRecord {
    AnalysisRecord::PoolAcquire {
        time: t(ns),
        buf,
        bytes,
        hit: false,
    }
}

fn recycle(ns: u64, buf: u64) -> AnalysisRecord {
    AnalysisRecord::PoolRecycle { time: t(ns), buf }
}

fn grant(ns: u64, rank: usize, buf: u64, generation: u64) -> AnalysisRecord {
    AnalysisRecord::DescGrant {
        time: t(ns),
        gvm: "gvm".to_string(),
        rank,
        segment: format!("/gvm-shm-{rank}"),
        buf,
        generation,
        len: 4096,
    }
}

fn duse(ns: u64, rank: usize, buf: u64, generation: u64, ok: bool) -> AnalysisRecord {
    AnalysisRecord::DescUse {
        time: t(ns),
        gvm: "gvm".to_string(),
        rank,
        buf,
        generation,
        ok,
    }
}

fn proto(ns: u64, rank: usize, kind: &'static str, seq: u64) -> AnalysisRecord {
    AnalysisRecord::Proto {
        time: t(ns),
        gvm: "gvm".to_string(),
        rank,
        kind,
        seq,
    }
}

fn shm_write(ns: u64, rank: usize, offset: usize, len: usize) -> AnalysisRecord {
    AnalysisRecord::ShmAccess {
        time: t(ns),
        pid: Pid::from_index(1),
        process: format!("spmd-{rank}"),
        segment: format!("/gvm-shm-{rank}"),
        offset,
        len,
        is_write: true,
        clock: VClock::from_components(vec![ns]),
    }
}

/// Seeded fault 1: the GVM accepts a descriptor whose lease was recycled
/// after the grant — exactly one diagnostic from the whole suite.
#[test]
fn seeded_stale_descriptor_yields_exactly_one_diagnostic() {
    let records = vec![
        acq(10, 1, 4096),
        grant(15, 0, 1, 1),
        recycle(20, 1), // generation bumps; the grant is now dead
        acq(25, 1, 4096),
        duse(30, 0, 1, 1, true), // ...but the GVM accepted it anyway
        recycle(40, 1),
    ];
    let report = analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "exactly one diagnostic expected:\n{}",
        report.render()
    );
    assert_eq!(report.diagnostics[0].checker, "staging");
    assert!(
        report.diagnostics[0]
            .message
            .contains("stale descriptor accepted"),
        "{}",
        report.diagnostics[0].message
    );
}

/// Seeded fault 2: the client writes into its leased segment after its
/// `SND` was received, racing the device's H2D read from the same lease —
/// exactly one diagnostic from the whole suite.
#[test]
fn seeded_write_after_snd_yields_exactly_one_diagnostic() {
    let records = vec![
        acq(10, 1, 4096),
        proto(12, 0, "REQ", 1),
        grant(15, 0, 1, 1),
        shm_write(20, 0, 0, 4096), // staging the input before SND: fine
        proto(25, 0, "SND", 2),
        duse(26, 0, 1, 1, true),
        shm_write(30, 0, 128, 64), // the planted race
        proto(32, 0, "STR", 3),
        AnalysisRecord::ProtoFlush {
            time: t(33),
            gvm: "gvm".to_string(),
            ranks: vec![0],
        },
        proto(34, 0, "STP", 4),
        proto(40, 0, "RCV", 5),
        proto(45, 0, "RLS", 6),
        recycle(50, 1),
    ];
    let report = analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "exactly one diagnostic expected:\n{}",
        report.render()
    );
    assert_eq!(report.diagnostics[0].checker, "staging");
    assert!(
        report.diagnostics[0].message.contains("write-after-SND"),
        "{}",
        report.diagnostics[0].message
    );
}

/// The well-behaved version of both fixtures is clean under the whole
/// suite — the new rules fire on the faults, not on the protocol.
#[test]
fn well_behaved_descriptor_lifecycle_is_clean() {
    let records = vec![
        acq(10, 1, 4096),
        proto(12, 0, "REQ", 1),
        grant(15, 0, 1, 1),
        shm_write(20, 0, 0, 4096),
        proto(25, 0, "SND", 2),
        duse(26, 0, 1, 1, true),
        proto(32, 0, "STR", 3),
        AnalysisRecord::ProtoFlush {
            time: t(33),
            gvm: "gvm".to_string(),
            ranks: vec![0],
        },
        proto(34, 0, "STP", 4),
        proto(40, 0, "RCV", 5),
        proto(45, 0, "RLS", 6),
        recycle(50, 1),
    ];
    let report = analyze(&records);
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.staging_events >= 4, "desc records must be counted");
}

/// A NAK'd stale presentation is the validation working — no diagnostic —
/// and the staging checker alone agrees with the full suite.
#[test]
fn rejected_stale_descriptor_is_clean() {
    let records = vec![
        acq(10, 1, 4096),
        grant(15, 0, 1, 1),
        recycle(20, 1),
        duse(30, 0, 1, 1, false),
    ];
    assert!(staging::check(&records).is_empty());
    assert!(analyze(&records).is_clean());
}

/// `dgrant`/`duse` lines survive the dump round trip bit-exactly,
/// escaping included.
#[test]
fn descriptor_records_roundtrip_through_the_dump_format() {
    let records = vec![
        AnalysisRecord::DescGrant {
            time: t(101),
            gvm: "gvm a".to_string(), // space exercises escaping
            rank: 3,
            segment: "/gvm a-shm-3".to_string(),
            buf: 9,
            generation: 4,
            len: 1 << 20,
        },
        duse(102, 3, 9, 4, true),
        duse(103, 3, 9, 3, false),
    ];
    let dump = to_dump(&records);
    assert!(dump.contains("dgrant "), "{dump}");
    assert!(dump.contains("duse "), "{dump}");
    assert_eq!(parse_dump(&dump).expect("parses"), records);
}

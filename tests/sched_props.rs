//! Property tests and regressions for the pluggable GVM schedulers.
//!
//! Properties, over random task mixes, group sizes, and arrival skews:
//!
//! * **work conservation** — every `STR` a rank submits is eventually
//!   flushed: the group always completes, and the per-policy flush counts
//!   match the policy's dispatch shape exactly (joint: one group flush;
//!   FCFS/SJF: one flush per rank).
//! * **no starvation** — every rank finishes with causally ordered phases
//!   under every policy, staggered or not.
//! * **determinism** — the simulation is a pure function of (policy,
//!   tasks, stagger): two identical runs agree on every timestamp, output
//!   byte, and counter.
//! * **degenerate adaptivity** — `AdaptiveBatch { k: n, timeout: None }`
//!   is observationally equal to `JointFlush`.
//!
//! Regressions: a rank evicted *while the group is mid-`STR`* must re-arm
//! the barrier at the reduced width under the non-joint policies (the
//! full-width re-arm bug the scheduler extraction fixed).

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{vecadd, GpuTask};
use gvirt::sim::{SimDuration, Simulation};
use gvirt::virt::{
    ClientPolicy, FaultPlan, FaultSpec, Gvm, GvmConfig, RequestKind, SchedPolicy, TaskError,
    VgpuClient,
};
use parking_lot::Mutex;
use proptest::prelude::*;

/// Rank-distinct functional vecadd tasks, `len` floats each.
fn vecadd_tasks(cfg: &DeviceConfig, n: usize, len: usize) -> Vec<GpuTask> {
    (0..n)
        .map(|rank| {
            let a: Vec<f32> = (0..len).map(|i| (i * (rank + 2)) as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i + rank * 31) as f32 * 0.5).collect();
            vecadd::functional_task(cfg, &a, &b)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Work conservation and starvation freedom: every rank completes
    /// under every policy, phases stay causally ordered, and the flush
    /// counters account for every submitted `STR`.
    #[test]
    fn every_policy_conserves_work(
        n in 1usize..=8,
        len in 16usize..128,
        stagger_us in 0u64..400,
        seed in 0u32..1000,
    ) {
        let _ = seed; // exercised via len/stagger; kept for shrink variety
        for policy in [
            SchedPolicy::JointFlush,
            SchedPolicy::Fcfs,
            SchedPolicy::AdaptiveBatch { k: (n / 2).max(1), timeout: Some(SimDuration::from_micros(300)) },
            SchedPolicy::ShortestJobFirst,
        ] {
            let name = policy.name();
            let sc = Scenario::default()
                .with_scheduler(policy)
                .with_stagger(SimDuration::from_micros(stagger_us));
            let tasks = vecadd_tasks(&sc.device, n, len);
            let r = sc.run(ExecutionMode::Virtualized, tasks);
            prop_assert_eq!(r.runs.len(), n, "{}: every rank reports", name);
            for run in &r.runs {
                prop_assert!(run.start <= run.init_done, "{}", name);
                prop_assert!(run.init_done <= run.data_in_done, "{}", name);
                prop_assert!(run.data_in_done <= run.comp_done, "{}", name);
                prop_assert!(run.comp_done <= run.data_out_done, "{}", name);
                prop_assert!(run.data_out_done <= run.end, "{}", name);
            }
            let gvm = r.gvm.as_ref().unwrap();
            match name {
                // One joint flush covering the whole group.
                "joint" => {
                    prop_assert_eq!(gvm.flushes, 1, "joint: single group flush");
                    prop_assert_eq!(gvm.partial_flushes, 0, "joint: never partial");
                }
                // One flush per rank, queue never deeper than one.
                "fcfs" => {
                    prop_assert_eq!(gvm.flushes, n as u64, "fcfs: one flush per STR");
                    prop_assert!(gvm.queue_depth_max <= 1, "fcfs: immediate dispatch");
                }
                // Singleton groups released at the full barrier.
                "sjf" => prop_assert_eq!(gvm.flushes, n as u64, "sjf: one flush per rank"),
                // Between 1 and n flushes, all STRs accounted for.
                _ => prop_assert!(
                    gvm.flushes >= 1 && gvm.flushes <= n as u64,
                    "adaptive: 1..=n flushes, got {}", gvm.flushes
                ),
            }
        }
    }

    /// Determinism: the same (policy, tasks, stagger) triple replays to
    /// bit-identical timestamps, outputs, and counters.
    #[test]
    fn scheduling_is_deterministic(
        n in 1usize..=6,
        len in 16usize..96,
        stagger_us in 0u64..300,
        policy_pick in 0usize..4,
    ) {
        let policies = [
            SchedPolicy::JointFlush,
            SchedPolicy::Fcfs,
            SchedPolicy::AdaptiveBatch { k: 2.min(n), timeout: Some(SimDuration::from_micros(150)) },
            SchedPolicy::ShortestJobFirst,
        ];
        let policy = policies[policy_pick].clone();
        let run = || {
            let sc = Scenario::default()
                .with_scheduler(policy.clone())
                .with_stagger(SimDuration::from_micros(stagger_us));
            let tasks = vecadd_tasks(&sc.device, n, len);
            sc.run(ExecutionMode::Virtualized, tasks)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.outputs, b.outputs, "outputs replay identically");
        for (x, y) in a.runs.iter().zip(&b.runs) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
        }
        let (ga, gb) = (a.gvm.unwrap(), b.gvm.unwrap());
        prop_assert_eq!(ga.flushes, gb.flushes);
        prop_assert_eq!(ga.partial_flushes, gb.partial_flushes);
        prop_assert_eq!(ga.idle_gap, gb.idle_gap);
    }

    /// `AdaptiveBatch { k: n, timeout: None }` degenerates to the joint
    /// flush: identical outputs, flush count, and completion time.
    #[test]
    fn full_width_adaptive_equals_joint(
        n in 1usize..=8,
        len in 16usize..96,
        stagger_us in 0u64..300,
    ) {
        let run = |policy: SchedPolicy| {
            let sc = Scenario::default()
                .with_scheduler(policy)
                .with_stagger(SimDuration::from_micros(stagger_us));
            let tasks = vecadd_tasks(&sc.device, n, len);
            sc.run(ExecutionMode::Virtualized, tasks)
        };
        let joint = run(SchedPolicy::JointFlush);
        let adaptive = run(SchedPolicy::AdaptiveBatch { k: n, timeout: None });
        prop_assert_eq!(&joint.outputs, &adaptive.outputs);
        prop_assert_eq!(joint.gvm.as_ref().unwrap().flushes, adaptive.gvm.as_ref().unwrap().flushes);
        let end = |r: &gvirt::harness::scenario::ExperimentResult| {
            r.runs.iter().map(|x| x.end).max().unwrap()
        };
        prop_assert_eq!(end(&joint), end(&adaptive), "identical completion time");
    }
}

/// Fault-tolerant group under `policy`: rank `victim` aborts at `stage`;
/// returns survivor results and GVM stats.
#[allow(clippy::type_complexity)]
fn run_ft_with_policy(
    n: usize,
    victim: usize,
    stage: RequestKind,
    policy: SchedPolicy,
) -> (
    Vec<(usize, Result<Option<Vec<u8>>, TaskError>)>,
    gvirt::virt::GvmStats,
    Vec<Vec<f32>>,
) {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
        .map(|r| {
            let a: Vec<f32> = (0..64).map(|i| (i * (r + 1)) as f32).collect();
            let b: Vec<f32> = (0..64).map(|i| (i + r * 100) as f32).collect();
            (a, b)
        })
        .collect();
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|(a, b)| vecadd::reference(a, b))
        .collect();
    let tasks: Vec<GpuTask> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();
    let config = GvmConfig::fault_tolerant(n).with_scheduler(policy);
    let handle = Gvm::install(&mut sim, &node, &cuda, config, tasks);
    let plan = FaultPlan::new(1).push(FaultSpec::ClientAbort {
        rank: victim,
        stage,
    });
    plan.install(&handle, &device);
    type Results = Arc<Mutex<Vec<(usize, Result<Option<Vec<u8>>, TaskError>)>>>;
    let results: Results = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let results = results.clone();
        let abort = plan.abort_stage(rank);
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let mut client = VgpuClient::connect_with_policy(
                ctx,
                &handle,
                rank,
                ClientPolicy::with_timeout(SimDuration::from_millis(50), 5),
            );
            if let Some(stage) = abort {
                client.abort_at(stage);
            }
            let res = client.try_run_task(ctx).map(|(_, out)| out);
            results.lock().push((rank, res));
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    sim.run().unwrap();
    let mut results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("results still shared"))
        .into_inner();
    results.sort_by_key(|(r, _)| *r);
    let stats = handle.stats.lock().clone();
    (results, stats, expected)
}

fn f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Check one eviction scenario: victim reports its abort, every survivor
/// gets bit-exact output, exactly one eviction.
fn assert_survivors_complete(policy: SchedPolicy, stage: RequestKind) {
    let (n, victim) = (8, 3);
    let name = policy.name();
    let (results, stats, expected) = run_ft_with_policy(n, victim, stage, policy);
    assert_eq!(
        results[victim].1,
        Err(TaskError::Aborted { stage }),
        "{name}: victim reports abort"
    );
    for rank in (0..n).filter(|&r| r != victim) {
        let out = results[rank]
            .1
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}: rank {rank} failed: {e}"))
            .as_ref()
            .expect("functional output");
        assert_eq!(f32s(out), expected[rank], "{name}: rank {rank} bytes");
    }
    assert_eq!(stats.evictions, 1, "{name}: exactly one eviction");
}

/// Regression: a rank dying *before its `STR`* under FCFS must not wedge
/// the group — survivors dispatch individually and complete.
#[test]
fn fcfs_survives_eviction_during_str() {
    assert_survivors_complete(SchedPolicy::Fcfs, RequestKind::Str);
}

/// Regression for the full-width re-arm bug: `AdaptiveBatch { k: n }`
/// must clamp its trigger to the post-eviction width (`k.min(active)`),
/// or the barrier waits forever for the evicted rank's `STR`.
#[test]
fn adaptive_full_width_rearms_at_reduced_width_after_eviction() {
    for stage in [RequestKind::Snd, RequestKind::Str] {
        assert_survivors_complete(
            SchedPolicy::AdaptiveBatch {
                k: 8,
                timeout: None,
            },
            stage,
        );
    }
}

/// The joint policy (paper default) and SJF also ride the same
/// membership-change path: evictions mid-protocol never strand survivors.
#[test]
fn joint_and_sjf_survive_eviction_during_str() {
    assert_survivors_complete(SchedPolicy::JointFlush, RequestKind::Str);
    assert_survivors_complete(SchedPolicy::ShortestJobFirst, RequestKind::Str);
}

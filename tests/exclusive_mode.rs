//! Exclusive compute mode: the setting where a GVM-style layer is not just
//! faster but *necessary* — conventional SPMD sharing cannot even start.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{ComputeMode, CtxError, DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{Benchmark, BenchmarkId};
use gvirt::sim::{SimDuration, Simulation};
use gvirt::virt::{Gvm, GvmConfig, VgpuClient};
use parking_lot::Mutex;

fn exclusive_cfg() -> DeviceConfig {
    DeviceConfig {
        compute_mode: ComputeMode::Exclusive,
        ..DeviceConfig::tesla_c2070_paper()
    }
}

/// A second context is rejected outright in exclusive mode.
#[test]
fn second_context_rejected() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, exclusive_cfg());
    let d = device.clone();
    sim.spawn("p", move |ctx| {
        let cost = SimDuration::from_millis(100);
        let first = d.try_create_context("p0", cost);
        assert!(first.is_ok());
        assert_eq!(
            d.try_create_context("p1", cost),
            Err(CtxError::ExclusiveModeBusy)
        );
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// Default mode accepts any number of contexts (the paper's baseline).
#[test]
fn default_mode_accepts_many_contexts() {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, DeviceConfig::tesla_c2070_paper());
    let d = device.clone();
    sim.spawn("p", move |ctx| {
        for i in 0..8 {
            assert!(d
                .try_create_context(&format!("p{i}"), SimDuration::from_millis(100))
                .is_ok());
        }
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// The GVM runs a full 4-rank SPMD group on an exclusive-mode device —
/// its single context is exactly what the mode permits.
#[test]
fn gvm_serves_spmd_group_on_exclusive_device() {
    let mut sim = Simulation::new();
    let cfg = exclusive_cfg();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64);
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(4), vec![task; 4]);
    let done_count = Arc::new(Mutex::new(0usize));
    for rank in 0..4 {
        let handle = handle.clone();
        let done_count = done_count.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let _ = client.run_task(ctx);
            *done_count.lock() += 1;
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    assert_eq!(*done_count.lock(), 4);
    assert_eq!(device.stats().ctx_switches, 0);
}

/// Conventional SPMD sharing on an exclusive-mode device fails at the
/// second process's initialization — the error surfaces as that process's
/// panic, naming it.
#[test]
fn direct_sharing_fails_on_exclusive_device() {
    let mut sim = Simulation::new();
    let cfg = exclusive_cfg();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let d0 = device.clone();
    let d1 = device.clone();
    sim.spawn("proc-0", move |ctx| {
        d0.try_create_context("p0", SimDuration::from_millis(100))
            .expect("first context fits");
        ctx.hold(SimDuration::from_millis(1));
    });
    sim.spawn("proc-1", move |ctx| {
        ctx.hold(SimDuration::from_micros(10));
        d1.try_create_context("p1", SimDuration::from_millis(100))
            .expect("second context must fail");
        let _ = ctx;
    });
    match sim.run() {
        Err(gvirt::sim::SimError::ProcessPanicked { name, message }) => {
            assert_eq!(name, "proc-1");
            assert!(message.contains("second context must fail"));
        }
        other => panic!("expected proc-1 to fail, got {other:?}"),
    }
}

//! Beyond strict SPMD: the GVM's per-rank resources support a *mixed*
//! workload — different benchmarks on different ranks sharing the GPU
//! simultaneously. The paper's abstract claims the GPU can be shared "to
//! compute different applications or multiple instances of the same
//! application"; this exercises the first half.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::harness::timeline::Timeline;
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{Benchmark, BenchmarkId, GpuTask};
use gvirt::sim::Simulation;
use gvirt::virt::{Gvm, GvmConfig, TaskRun, VgpuClient};
use parking_lot::Mutex;

fn run_mix(tasks: Vec<GpuTask>, trace: bool) -> (Vec<TaskRun>, Option<Timeline>, u64) {
    let n = tasks.len();
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    tracer.set_enabled(trace);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg);
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(n), tasks);
    let runs: Arc<Mutex<Vec<TaskRun>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let runs = runs.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (run, _) = client.run_task(ctx);
            runs.lock().push(run);
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    let mut collected = runs.lock().clone();
    collected.sort_by_key(|r| r.rank);
    let switches = device.stats().ctx_switches;
    let tl = trace.then(|| Timeline::from_tracer(&tracer));
    (collected, tl, switches)
}

/// Four different benchmarks share the GPU through one GVM, concurrently,
/// with zero context switches.
#[test]
fn four_different_apps_share_one_context() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let tasks = vec![
        Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64),
        Benchmark::scaled_task(BenchmarkId::Cg, &cfg, 64),
        Benchmark::scaled_task(BenchmarkId::Mg, &cfg, 64),
        Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 64),
    ];
    let (runs, tl, switches) = run_mix(tasks, true);
    assert_eq!(runs.len(), 4);
    assert_eq!(switches, 0);
    let tl = tl.unwrap();
    assert!(
        tl.kernels_overlap(),
        "kernels of different applications should coexist on the device"
    );
}

/// The mixed group's makespan beats running the same mix through
/// conventional sharing — the headline claim generalizes past SPMD.
#[test]
fn mixed_group_still_beats_direct() {
    use gvirt::harness::scenario::{ExecutionMode, Scenario};
    let sc = Scenario::default();
    let cfg = &sc.device;
    let mix = [
        Benchmark::scaled_task(BenchmarkId::Ep, cfg, 64),
        Benchmark::scaled_task(BenchmarkId::Cg, cfg, 64),
        Benchmark::scaled_task(BenchmarkId::VecAdd, cfg, 64),
    ];
    let direct = sc.run(ExecutionMode::Direct, mix.to_vec());
    let virt = sc.run(ExecutionMode::Virtualized, mix.to_vec());
    assert!(
        virt.turnaround_ms < direct.turnaround_ms,
        "virtualized {:.1} ms vs direct {:.1} ms",
        virt.turnaround_ms,
        direct.turnaround_ms
    );
    // The direct run pays per-task switch costs of *different* magnitudes
    // (each task carries its own measured cost).
    assert_eq!(direct.device.ctx_switches, 2);
}

/// Per-rank shared-memory segments are sized for their own task — a big
/// VectorAdd next to tiny EPs must not inflate the small ranks' costs.
#[test]
fn per_rank_resources_are_independent() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let tasks = vec![
        Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 8), // big I/O
        Benchmark::scaled_task(BenchmarkId::Ep, &cfg, 64),    // no input at all
    ];
    let (runs, _, _) = run_mix(tasks, false);
    // EP stages no input: its SND phase is pure messaging (< 1 ms), even
    // though rank 0 pushes tens of MB through its own segment.
    let ep_run = &runs[1];
    assert!(
        ep_run.t_data_in() < 1.0,
        "EP's data-in phase should be trivial, was {:.3} ms",
        ep_run.t_data_in()
    );
}

//! Functional end-to-end runs: real data through the full virtualization
//! stack, verified against CPU references.

use std::sync::Arc;

use gvirt::cuda::CudaDevice;
use gvirt::gpu::{DeviceConfig, GpuDevice};
use gvirt::ipc::{Node, NodeConfig};
use gvirt::kernels::{blackscholes, electrostatics, ep, mm, vecadd, GpuTask};
use gvirt::sim::Simulation;
use gvirt::virt::{run_direct, Gvm, GvmConfig, VgpuClient};
use parking_lot::Mutex;

/// Run one functional task per rank through the GVM, returning outputs.
fn run_gvm(tasks: Vec<GpuTask>) -> Vec<Vec<u8>> {
    let n = tasks.len();
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg);
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(n), tasks);
    type Outs = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
    let outs: Outs = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let outs = outs.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (_, out) = client.run_task(ctx);
            outs.lock().push((rank, out.expect("functional output")));
        })
        .unwrap();
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().unwrap();
    let mut v = Arc::try_unwrap(outs).map(|m| m.into_inner()).unwrap();
    v.sort_by_key(|(r, _)| *r);
    v.into_iter().map(|(_, b)| b).collect()
}

/// Run one functional task directly (baseline path), returning the output.
fn run_baseline(task: GpuTask) -> Vec<u8> {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg);
    let cuda = CudaDevice::new(device.clone());
    let out: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    sim.spawn("proc", move |ctx| {
        let (_, o) = run_direct(ctx, &cuda, &task, 0);
        *out2.lock() = o;
        device.shutdown(ctx);
    });
    sim.run().unwrap();
    let x = out.lock().take().expect("functional output");
    x
}

fn f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[test]
fn mm_through_gvm_matches_reference() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let n = 16;
    let a: Vec<f32> = (0..n * n).map(|i| ((i * 7) % 11) as f32 - 5.0).collect();
    let b: Vec<f32> = (0..n * n).map(|i| ((i * 3) % 13) as f32 * 0.5).collect();
    let outs = run_gvm(vec![mm::functional_task(&cfg, &a, &b, n)]);
    assert_eq!(f32s(&outs[0]), mm::reference(&a, &b, n));
}

#[test]
fn blackscholes_through_gvm_matches_reference() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let (s, x, t) = blackscholes::generate_options(128, 99);
    let outs = run_gvm(vec![blackscholes::functional_task(&cfg, &s, &x, &t)]);
    // Output layout: calls then puts; bytes_out covers both.
    let got = f32s(&outs[0]);
    let (want_calls, want_puts) = blackscholes::reference(&s, &x, &t);
    assert_eq!(&got[..128], &want_calls[..]);
    assert_eq!(&got[128..256], &want_puts[..]);
}

#[test]
fn ep_through_gvm_matches_reference() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let outs = run_gvm(vec![ep::functional_task(&cfg, 12)]);
    let got = ep::EpResult::from_bytes(&outs[0]);
    let want = ep::reference(12);
    assert_eq!(got.q, want.q);
    assert!((got.sx - want.sx).abs() < 1e-9);
    assert!((got.sy - want.sy).abs() < 1e-9);
}

#[test]
fn electrostatics_through_baseline_matches_reference() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let atoms = electrostatics::generate_atoms(40, 6.0, 11);
    let task = electrostatics::functional_task(&cfg, atoms.clone(), 4, 4, 2, 1.5);
    let out = run_baseline(task);
    let got = f32s(&out);
    let w0 = electrostatics::reference_slice(&atoms, 4, 4, 0.0, 1.5);
    let w1 = electrostatics::reference_slice(&atoms, 4, 4, 1.5, 1.5);
    assert_eq!(&got[..16], &w0[..]);
    assert_eq!(&got[16..], &w1[..]);
}

/// The same functional task yields byte-identical results through the GVM
/// and through direct sharing — virtualization is transparent.
#[test]
fn gvm_and_baseline_agree_bitwise() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let a: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
    let b: Vec<f32> = (0..512).map(|i| (i as f32).cos()).collect();
    let via_gvm = run_gvm(vec![vecadd::functional_task(&cfg, &a, &b)]);
    let via_direct = run_baseline(vecadd::functional_task(&cfg, &a, &b));
    assert_eq!(via_gvm[0], via_direct);
}

/// Four ranks with *different* data each get exactly their own results —
/// the per-rank memory objects "ensure data from different processes can
/// co-exist in the GPU memory safely" (paper §V).
#[test]
fn rank_isolation_under_concurrency() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..4)
        .map(|r| {
            let a: Vec<f32> = (0..256).map(|i| (i * (r + 1)) as f32).collect();
            let b: Vec<f32> = (0..256).map(|i| (i + r * 10_000) as f32).collect();
            (a, b)
        })
        .collect();
    let tasks: Vec<GpuTask> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();
    let outs = run_gvm(tasks);
    for (r, bytes) in outs.iter().enumerate() {
        let (a, b) = &inputs[r];
        assert_eq!(f32s(bytes), vecadd::reference(a, b), "rank {r}");
    }
}

//! Offline stub of `serde`.
//!
//! The build container for this workspace has no crates.io mirror, so the
//! workspace patches `serde` to this shim (see `vendor/README.md`). The
//! workspace only *derives* `Serialize`/`Deserialize` (nothing calls a
//! serializer — all JSON artifacts are hand-rendered), so the traits are
//! pure markers with blanket impls and the derives expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so derived impls and bounds both resolve.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types so derived impls and bounds both resolve.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Value-generation strategies for the offline proptest stub.

use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (zero is mapped to a fixed non-zero state).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9e37_79b9 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a default "draw anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full value space of `T`: `any::<usize>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A type-erased strategy: `dyn Strategy` is not object-safe (generic
/// `prop_map`), so unions store plain generator closures instead.
pub struct BoxedGen<T>(Box<dyn Fn(&mut TestRng) -> T>);

/// Erase `s` into a [`BoxedGen`] (the `prop_oneof!` building block).
pub fn boxed_gen<S>(s: S) -> BoxedGen<S::Value>
where
    S: Strategy + 'static,
{
    BoxedGen(Box::new(move |rng| s.generate(rng)))
}

/// Equal-weight choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedGen<T>>);

impl<T> Union<T> {
    /// A union over `gens`; each draw picks one uniformly.
    pub fn new(gens: Vec<BoxedGen<T>>) -> Self {
        assert!(!gens.is_empty(), "empty prop_oneof!");
        Union(gens)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        (self.0[i].0)(rng)
    }
}

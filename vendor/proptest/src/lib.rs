//! Offline mini property-testing framework with the `proptest!` surface.
//!
//! The build container for this workspace has no crates.io mirror, so the
//! workspace patches `proptest` to this shim (see `vendor/README.md`). It
//! keeps the API the workspace's test tiers use — `proptest!` with
//! `#![proptest_config(...)]`, range/tuple/`Just`/`prop_map`/
//! `prop::collection::vec` strategies, and `prop_assert*` — but drops
//! shrinking: a failing case panics with its case index and seed so the
//! run can be replayed deterministically.

pub mod strategy;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{Strategy, TestRng};

    /// Length bound for collection strategies, mirroring the real crate's
    /// `SizeRange`: built from a `usize`, a half-open range, or an
    /// inclusive range (so a bare `1..8` literal infers as `usize`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `len` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
    pub fn vec<S>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S: Strategy,
    {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.lo + rng.below((self.len.hi - self.len.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! `prop::...` paths as exported by the real prelude.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests: each `fn name(binding in strategy, ...)` block
/// becomes a `#[test]` that runs the body for `config.cases` generated
/// inputs. No shrinking; failures report the case index and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident
            ( $( $bind:pat in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            // Call sites write `#[test]` themselves (the real proptest
            // convention), so the captured metas already register the fn
            // with libtest — emitting another `#[test]` here would run
            // every property twice.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = 0x5eed_0000_u64 ^ u64::from(case);
                    let mut prop_rng = $crate::strategy::TestRng::new(seed);
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(
                                let $bind = $crate::strategy::Strategy::generate(
                                    &$strat,
                                    &mut prop_rng,
                                );
                            )+
                            $body
                        }),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed (seed {seed:#x})",
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current generated case when `cond` does not hold (the
/// real proptest rejects and redraws; the stub just returns early, so
/// heavily-filtered properties run fewer effective cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

/// Equal-weight choice between the given same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_gen($strat)),+
        ])
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds and tuples decompose.
        #[test]
        fn ranges_and_tuples(
            x in 3u64..17,
            (lo, hi) in (0u32..10, 10u32..20),
            v in prop::collection::vec(-1.0f32..1.0, 1..8),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(lo < 10 && (10..20).contains(&hi));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|f| (-1.0..1.0).contains(f)));
        }

        /// prop_map and Just compose.
        #[test]
        fn map_and_just(
            y in (1usize..=4).prop_map(|n| n * 2),
            z in Just(9i32),
        ) {
            prop_assert!(y % 2 == 0 && (2..=8).contains(&y));
            prop_assert_eq!(z, 9);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::{Strategy, TestRng};
        let s = (0u64..1000, 5usize..50);
        let a = s.generate(&mut TestRng::new(42));
        let b = s.generate(&mut TestRng::new(42));
        assert_eq!(a, b);
    }
}

//! Offline stub of `rand`.
//!
//! Declared as a dev-dependency in several workspace crates but currently
//! unused by any source file; the workspace's simulations are fully
//! deterministic by construction. A minimal splitmix64 generator is
//! provided in case a future test wants cheap pseudo-randomness. See
//! `vendor/README.md` for why this shim exists.

/// A tiny deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Offline placeholder stub of `serde_json`.
//!
//! Declared as a dependency by `gv-harness` but currently unused — every
//! JSON artifact in the workspace is rendered by hand (see
//! `gv-harness::pipeline::bench_json` and friends). The stub exists so the
//! dependency graph resolves without a crates.io mirror; see
//! `vendor/README.md`.

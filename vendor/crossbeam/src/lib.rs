//! Offline stub of `crossbeam`, backed by `std::sync::mpsc`.
//!
//! The build container for this workspace has no crates.io mirror, so the
//! workspace patches `crossbeam` to this shim (see `vendor/README.md`).
//! Only `crossbeam::channel` is provided, with the subset the simulator
//! kernel uses: `bounded`/`unbounded` constructors, cloneable senders,
//! `Sync` receivers, and `send`/`recv`/`try_recv`.

pub mod channel {
    //! MPMC-ish channels over `std::sync::mpsc` (single consumer at a
    //! time, serialized through a mutex — sufficient for the simulator's
    //! one-reader-per-channel usage).

    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(Flavor::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// Creates a channel with a buffer capacity of `cap` messages.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender(Flavor::Bounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// Bounded channels hand out the same sender type as unbounded ones.
    pub type SyncSender<T> = Sender<T>;

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if the channel is bounded and full.
        /// Errors if the receiving half has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Receives a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    /// The receiver disconnected before the message could be sent.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// All senders disconnected and the channel is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Reasons a [`Receiver::try_recv`] returned no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the channel is empty.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_cross_thread() {
            let (tx, rx) = bounded(1);
            let t = std::thread::spawn(move || {
                tx.send(1u32).unwrap();
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
            assert!(rx.recv().is_err());
        }
    }
}

//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! The build container for this workspace has no crates.io mirror, so the
//! workspace patches `parking_lot` to this shim (see `vendor/README.md`).
//! Only the surface the workspace uses is provided: `Mutex`/`RwLock` with
//! non-poisoning guards. Semantics match `parking_lot` for correct
//! programs; a poisoned lock (panic while held) aborts the test via
//! `unwrap` instead of propagating poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex with the `parking_lot::Mutex` API surface.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` surface.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

//! Offline minimal stand-in for `criterion`.
//!
//! The build container for this workspace has no crates.io mirror, so the
//! workspace patches `criterion` to this shim (see `vendor/README.md`).
//! Benches compile and run: each `bench_function` executes its routine a
//! few times and prints a mean wall-clock per iteration — no statistics,
//! plots, or CLI beyond ignoring the flags `cargo bench` passes.

use std::time::Instant;

/// Entry point handed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, 10, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            samples: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.prefix, name), self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_named<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: samples as u64,
        elapsed_ns: 0,
        done: 0,
    };
    f(&mut b);
    if b.done > 0 {
        println!(
            "bench {name}: {:.3} ms/iter ({} iters)",
            b.elapsed_ns as f64 / b.done as f64 / 1e6,
            b.done
        );
    }
}

/// Timer handed to each benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    done: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.done += self.iters;
    }

    /// Times `routine` with a fresh un-timed `setup` input per batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
            self.done += 1;
        }
    }
}

/// Batch sizing hints (ignored by the stub's fixed batching).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap; batch many per allocation.
    SmallInput,
    /// Inputs are expensive; batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Opaque value sink preventing the optimizer from deleting the routine.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The stub `serde` crate blanket-implements its marker traits for every
//! type, so these derives have nothing to emit; they exist so that
//! `#[derive(Serialize)]` and `#[serde(...)]` attributes keep compiling.

use proc_macro::TokenStream;

/// Expands to nothing: the stub `Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the stub `Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Capacity planning with the analytical model (paper Eqs. 1–6).
//!
//! Given a benchmark's execution profile, how much does virtualization buy
//! at each node width, and where does the benefit saturate? This is the
//! question an operator sizing CPU:GPU ratios actually asks, answered here
//! straight from the paper's closed-form model — no simulation.
//!
//! Run with: `cargo run --release --example capacity_planning`

use gvirt::model::{ExecutionProfile, SpeedupModel};

fn print_profile(name: &str, profile: ExecutionProfile) {
    let model = SpeedupModel::new(profile);
    println!("{name}:");
    println!(
        "  profile: Tinit={:.1}ms Tctx={:.1}ms Tin={:.3}ms Tcomp={:.3}ms Tout={:.3}ms",
        profile.t_init, profile.t_ctx_switch, profile.t_data_in, profile.t_comp, profile.t_data_out
    );
    println!("  class  : {}", classify(&profile));
    println!("  n  |  T_no_vt (ms) |   T_vt (ms) | speedup");
    for n in [1u32, 2, 4, 8, 16, 32] {
        println!(
            "  {:>2} | {:>13.1} | {:>11.1} | {:>7.3}",
            n,
            model.total_no_vt(n),
            model.total_vt(n),
            model.speedup(n)
        );
    }
    let smax = model.s_max();
    if smax.is_finite() {
        println!("  S_max (n → ∞): {smax:.3}");
    } else {
        println!("  S_max (n → ∞): unbounded (no transfer bottleneck)");
    }
    println!();
}

fn classify(p: &ExecutionProfile) -> &'static str {
    let r = p.io_ratio();
    if r > 2.0 {
        "I/O-intensive"
    } else if r < 0.5 {
        "compute-intensive"
    } else {
        "intermediate"
    }
}

fn main() {
    println!("== Paper Table II profiles ==\n");
    print_profile("VectorAdd (50M floats)", ExecutionProfile::vecadd_paper());
    print_profile("NPB EP Class B", ExecutionProfile::ep_paper());

    println!("== What-if: your own application ==\n");
    // An imaginary pipeline stage: 50 ms in, 300 ms compute, 20 ms out.
    let custom = ExecutionProfile {
        t_init: 1519.0,
        t_ctx_switch: 180.0,
        t_data_in: 50.0,
        t_comp: 300.0,
        t_data_out: 20.0,
    };
    print_profile("custom stage", custom);

    // Sensitivity: how does speedup at n = 8 respond to the compute share?
    println!("== Sensitivity at n = 8: sweep Tcomp, everything else fixed ==\n");
    println!("  Tcomp (ms) | speedup@8 | S_max");
    for t_comp in [10.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0] {
        let m = SpeedupModel::new(ExecutionProfile { t_comp, ..custom });
        println!(
            "  {:>10.0} | {:>9.3} | {:>6.3}",
            t_comp,
            m.speedup(8),
            m.s_max()
        );
    }
    println!("\nreading: the more compute-heavy the task, the more the GVM's");
    println!("concurrent-kernel execution and switch elimination pay off —");
    println!("until the transfer engines become the ceiling (S_max).");
}

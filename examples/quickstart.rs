//! Quickstart: one SPMD process, one Virtual GPU, a functional vector add.
//!
//! Builds the whole stack by hand — simulation, GPU device, CUDA runtime,
//! node, GVM — then runs a single task through the paper's
//! `REQ/SND/STR/STP/RCV/RLS` protocol and verifies the numbers that come
//! back.
//!
//! Run with: `cargo run --release --example quickstart`

use gvirt::prelude::*;
use gvirt::virt::Gvm;
use gvirt::virt::GvmConfig;

use std::sync::Arc;
use std::sync::Mutex;

fn main() {
    // 1. A simulation, a paper-calibrated Tesla C2070, and the node.
    let mut sim = Simulation::new();
    let device_cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, device_cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(gvirt::ipc::NodeConfig::dual_xeon_x5560());

    // 2. A functional task: add two 4096-element vectors.
    let a: Vec<f32> = (0..4096).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..4096).map(|i| (i % 97) as f32 * 0.25).collect();
    let task = gvirt::kernels::vecadd::functional_task(&device_cfg, &a, &b);

    // 3. Install the GVM serving one rank, then the client process.
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(1), vec![task]);
    let result: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    {
        let handle = handle.clone();
        let result = Arc::clone(&result);
        node.spawn_pinned(&mut sim, 0, "spmd-0", move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, 0);
            let (run, output) = client.run_task(ctx);
            println!("rank 0 phases (ms):");
            println!("  Tinit     = {:>10.3}", run.t_init());
            println!("  Tdata_in  = {:>10.3}", run.t_data_in());
            println!("  Tcomp     = {:>10.3}", run.t_comp());
            println!("  Tdata_out = {:>10.3}", run.t_data_out());
            println!("  total     = {:>10.3}", run.total());
            *result.lock().unwrap() = output;
        })
        .expect("core 0 free");
    }

    // 4. A supervisor shuts the device down once the GVM finishes.
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });

    let summary = sim.run().expect("simulation completes");
    println!("simulated time: {}", summary.end_time);

    // 5. Verify against the CPU reference.
    let bytes = result.lock().unwrap().take().expect("functional output");
    let got = gvirt::kernels::vecadd::decode_output(&bytes);
    let want = gvirt::kernels::vecadd::reference(&a, &b);
    assert_eq!(got, want);
    println!("verified: {} elements correct ✓", got.len());
}

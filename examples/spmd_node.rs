//! An 8-process SPMD node, with and without virtualization.
//!
//! Reproduces the paper's headline scenario in miniature: eight CPU cores
//! share one GPU running NPB EP tasks. Without the GVM each process creates
//! its own context and the device serializes them with context switches;
//! with the GVM everything runs concurrently inside one context.
//!
//! Run with: `cargo run --release --example spmd_node [nprocs]`

use gvirt::harness::scenario::{ExecutionMode, Scenario};
use gvirt::kernels::{Benchmark, BenchmarkId};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let scenario = Scenario::default();
    assert!(
        n <= scenario.node.cores,
        "SPMD condition: at most {} processes on this node",
        scenario.node.cores
    );

    // A 1/8th-cost EP so the example runs fast; shape is unchanged.
    let task = Benchmark::scaled_task(BenchmarkId::Ep, &scenario.device, 8);
    println!("benchmark: EP (scaled), {n} SPMD processes\n");

    let direct = scenario.run_uniform(ExecutionMode::Direct, &task, n);
    println!("conventional sharing (no virtualization):");
    println!("  turnaround        : {:>10.1} ms", direct.turnaround_ms);
    println!("  context switches  : {:>10}", direct.device.ctx_switches);
    println!(
        "  switch time       : {:>10.1} ms",
        direct.device.ctx_switch_time.as_millis_f64()
    );
    println!("  total init (Tinit): {:>10.1} ms", direct.t_init_total());

    let virt = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
    let gvm = virt.gvm.as_ref().expect("gvm stats");
    println!("\nvirtualized (GVM):");
    println!("  turnaround        : {:>10.1} ms", virt.turnaround_ms);
    println!("  context switches  : {:>10}", virt.device.ctx_switches);
    println!(
        "  concurrent kernels: {:>10} (max in flight)",
        virt.device.max_concurrent_kernels
    );
    println!("  STR flushes       : {:>10}", gvm.flushes);
    println!(
        "  GVM staging time  : {:>10.3} ms",
        gvm.copy_time.as_millis_f64()
    );

    println!(
        "\nspeedup with virtualization: {:.3}×",
        direct.turnaround_ms / virt.turnaround_ms
    );
}

//! Bring your own kernel: define a custom GPU task — geometry, cost model,
//! and a functional body — and run it through the Virtual GPU API.
//!
//! The kernel here is a polynomial evaluator (`y = Σ c_k · x^k`, Horner),
//! something the paper's registry does not ship, to show the full path a
//! downstream user takes: `KernelDesc` → `GpuTask` → GVM → verified output.
//!
//! Run with: `cargo run --release --example custom_kernel`

use std::sync::Arc;
use std::sync::Mutex;

use gvirt::gpu::{CostSpec, DeviceConfig, DeviceMemory, DevicePtr, GpuDevice, KernelDesc};
use gvirt::kernels::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};
use gvirt::prelude::*;
use gvirt::sim::SimDuration;
use gvirt::virt::{Gvm, GvmConfig};

const N: usize = 10_000;
const COEFFS: [f32; 5] = [1.0, -0.5, 0.25, -0.125, 0.0625];

/// Horner evaluation — the reference the device body must match.
fn horner(x: f32) -> f32 {
    COEFFS.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Build the custom task: layout `[x(N) | y(N)]` as f32.
fn build_task(cfg: &DeviceConfig, xs: &[f32]) -> GpuTask {
    let n = xs.len();
    // Geometry: 256-thread blocks, one element per thread.
    let desc = KernelDesc::new("poly5", (n as u64).div_ceil(256), 256)
        .regs(16)
        // Cost: 2 flops per Horner step × 5 coefficients, 8 B of DRAM.
        .with_cost(cfg, &CostSpec::new(10.0, 8.0));
    let input: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();
    let body: BodyFactory = Arc::new(move |base: DevicePtr| {
        Arc::new(move |mem: &mut DeviceMemory| {
            let xs = mem.read_f32(base, N).expect("read x");
            let ys: Vec<f32> = xs.iter().map(|&x| horner(x)).collect();
            mem.write_f32(base.add(4 * N as u64), &ys).expect("write y");
        }) as gvirt::gpu::KernelBody
    });
    GpuTask {
        name: "poly5".into(),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(150.0),
        device_bytes: 8 * n as u64,
        iterations: 1,
        bytes_in: 4 * n as u64,
        round_bytes_in: Vec::new(),
        input: Some(Arc::new(input)),
        bytes_out: 4 * n as u64,
        d2h_offset: 4 * n as u64,
        kernels: vec![KernelTemplate::functional(desc, body)],
    }
}

fn main() {
    let mut sim = Simulation::new();
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(gvirt::ipc::NodeConfig::dual_xeon_x5560());

    // Two ranks evaluate the polynomial on different inputs.
    let inputs: Vec<Vec<f32>> = (0..2)
        .map(|r| {
            (0..N)
                .map(|i| (i as f32 / N as f32) * 2.0 - r as f32)
                .collect()
        })
        .collect();
    let tasks: Vec<GpuTask> = inputs.iter().map(|xs| build_task(&cfg, xs)).collect();

    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(2), tasks);
    type Outputs = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
    let outputs: Outputs = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..2 {
        let handle = handle.clone();
        let outputs = Arc::clone(&outputs);
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (_, out) = client.run_task(ctx);
            outputs
                .lock()
                .unwrap()
                .push((rank, out.expect("functional output")));
        })
        .expect("core free");
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    let summary = sim.run().expect("clean run");

    for (rank, bytes) in outputs.lock().unwrap().iter() {
        let ys: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let want: Vec<f32> = inputs[*rank].iter().map(|&x| horner(x)).collect();
        assert_eq!(ys, want, "rank {rank}");
        println!(
            "rank {rank}: {} polynomial evaluations verified ✓ (y[0] = {:.6})",
            ys.len(),
            ys[0]
        );
    }
    println!("simulated time: {}", summary.end_time);
}

//! A two-node GPU cluster (the paper's Fig. 2 vision): each node has eight
//! CPU cores, one GPU, and its own GVM; both nodes run an SPMD job side by
//! side in a single deterministic simulation.
//!
//! The paper evaluates one node and argues the approach "can be applied to
//! any HPC system with GPU resources" — this example demonstrates the
//! composition: per-node virtualization layers are fully independent, so a
//! cluster is just N nodes.
//!
//! Run with: `cargo run --release --example cluster [procs_per_node]`

use std::sync::Arc;

use gvirt::kernels::{Benchmark, BenchmarkId};
use gvirt::prelude::*;
use gvirt::virt::{Gvm, GvmConfig};
use parking_lot::Mutex;

struct NodeSetup {
    device: GpuDevice,
    handle: gvirt::virt::GvmHandle,
    node: Node,
}

fn install_node(sim: &mut Simulation, name: &str, nprocs: usize, cfg: &DeviceConfig) -> NodeSetup {
    let device = GpuDevice::install(sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(gvirt::ipc::NodeConfig::dual_xeon_x5560());
    let task = Benchmark::scaled_task(BenchmarkId::Ep, cfg, 16);
    let gvm_cfg = GvmConfig {
        name: name.to_string(),
        ..GvmConfig::new(nprocs)
    };
    let handle = Gvm::install(sim, &node, &cuda, gvm_cfg, vec![task; nprocs]);
    NodeSetup {
        device,
        handle,
        node,
    }
}

fn main() {
    let nprocs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let mut sim = Simulation::new();

    let nodes: Vec<NodeSetup> = (0..2)
        .map(|i| install_node(&mut sim, &format!("gvm-node{i}"), nprocs, &cfg))
        .collect();

    let finish_times: Arc<Mutex<Vec<(usize, usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    for (node_idx, setup) in nodes.iter().enumerate() {
        for rank in 0..nprocs {
            let handle = setup.handle.clone();
            let finish_times = Arc::clone(&finish_times);
            setup
                .node
                .spawn_pinned(
                    &mut sim,
                    rank,
                    &format!("n{node_idx}-spmd-{rank}"),
                    move |ctx| {
                        let client = VgpuClient::connect(ctx, &handle, rank);
                        let (run, _) = client.run_task(ctx);
                        finish_times
                            .lock()
                            .push((node_idx, rank, run.end.as_millis_f64()));
                    },
                )
                .expect("core free on this node");
        }
        let h = setup.handle.clone();
        let d = setup.device.clone();
        sim.spawn(&format!("supervisor-{node_idx}"), move |ctx| {
            h.done.wait(ctx);
            d.shutdown(ctx);
        });
    }

    let summary = sim.run().expect("cluster run completes");
    let times = finish_times.lock();
    for node_idx in 0..2 {
        let node_end = times
            .iter()
            .filter(|(n, _, _)| *n == node_idx)
            .map(|(_, _, t)| *t)
            .fold(0.0f64, f64::max);
        let ranks = times.iter().filter(|(n, _, _)| *n == node_idx).count();
        println!("node {node_idx}: {ranks} SPMD ranks finished by {node_end:.1} ms (simulated)");
    }
    println!(
        "cluster makespan: {} — two virtualized nodes run fully independently",
        summary.end_time
    );
    assert_eq!(times.len(), 2 * nprocs);
}

//! # gvirt — GPU resource sharing and virtualization for SPMD HPC nodes
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *"GPU Resource Sharing and Virtualization on High Performance Computing
//! Systems"* (Li, Narayana, El-Araby, El-Ghazawi — ICPP 2011).
//!
//! The stack, bottom-up:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel
//! * [`gpu`] — Fermi-class GPU device model (SMs, DMA engines, contexts, streams)
//! * [`cuda`] — CUDA-like runtime API over the device model
//! * [`ipc`] — simulated compute node: SPMD processes, shared memory, message queues
//! * [`kernels`] — the paper's seven benchmark workloads (functional + cost model)
//! * [`mem`] — buffer lifecycle: pinned staging pool, device-alloc cache, chunked transfer planner
//! * [`virt`] — ★ the paper's contribution: the GPU Virtualization Manager (GVM)
//! * [`model`] — the paper's analytical model (Eqs. 1–6)
//! * [`analyze`] — trace-based race detection, protocol linting, device invariants
//! * [`harness`] — experiment drivers that regenerate every table and figure
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short: build a [`harness`] scenario or
//! assemble a node by hand — spawn a [`virt::Gvm`] plus one
//! [`virt::VgpuClient`] per CPU core inside a [`sim::Simulation`], and give
//! each client a [`kernels::GpuTask`] from [`kernels`].

pub use gv_analyze as analyze;
pub use gv_cuda as cuda;
pub use gv_gpu as gpu;
pub use gv_harness as harness;
pub use gv_ipc as ipc;
pub use gv_kernels as kernels;
pub use gv_mem as mem;
pub use gv_model as model;
pub use gv_sim as sim;
pub use gv_virt as virt;

/// Commonly used items for assembling experiments by hand.
pub mod prelude {
    pub use gv_cuda::CudaDevice;
    pub use gv_gpu::{DeviceConfig, GpuDevice};
    pub use gv_harness::scenario::{ExecutionMode, Scenario};
    pub use gv_harness::turnaround::TurnaroundConfig;
    pub use gv_ipc::Node;
    pub use gv_kernels::registry::{Benchmark, BenchmarkId};
    pub use gv_model::{ExecutionProfile, SpeedupModel};
    pub use gv_sim::{Ctx, SimDuration, SimTime, Simulation};
    pub use gv_virt::{Gvm, GvmConfig, VgpuClient};
}

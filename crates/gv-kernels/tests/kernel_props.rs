//! Property tests on workload numerics: RNG partitioning, Black–Scholes
//! financial identities, MG operator algebra, CG convergence.

use gv_kernels::npb_rng::{pow_mod46, NpbRng, NPB_A};
use gv_kernels::{blackscholes, cg, mg, vecadd};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Jump-ahead equals sequential stepping for any distance.
    #[test]
    fn rng_jump_equals_stepping(n in 0u64..5_000) {
        let mut seq = NpbRng::ep_default();
        for _ in 0..n {
            seq.next_f64();
        }
        prop_assert_eq!(seq.state(), NpbRng::ep_default().jumped(n).state());
    }

    /// Power identity: a^(m+n) = a^m · a^n (mod 2^46).
    #[test]
    fn rng_pow_is_homomorphic(m in 0u64..1_000_000, n in 0u64..1_000_000) {
        let lhs = pow_mod46(NPB_A, m + n);
        let am = pow_mod46(NPB_A, m);
        let an = pow_mod46(NPB_A, n);
        let rhs = ((am as u128 * an as u128) & ((1u128 << 46) - 1)) as u64;
        prop_assert_eq!(lhs, rhs);
    }

    /// Any partition of the EP sample range tallies identically to the
    /// sequential reference (the property the GPU grid split relies on).
    #[test]
    fn ep_partitioning_is_exact(splits in prop::collection::vec(1u64..2_000, 1..5)) {
        let total: u64 = splits.iter().sum();
        let mut parts = Vec::new();
        let mut first = 0;
        for &c in &splits {
            parts.push(gv_kernels::ep::run_range(first, c));
            first += c;
        }
        let merged = gv_kernels::ep::merge(&parts);
        let seq = gv_kernels::ep::run_range(0, total);
        prop_assert_eq!(merged.q, seq.q);
        prop_assert!((merged.sx - seq.sx).abs() < 1e-9);
    }

    /// Put–call parity holds over the whole SDK input domain.
    #[test]
    fn blackscholes_put_call_parity(
        s in 5.0f32..30.0,
        x in 1.0f32..100.0,
        t in 0.25f32..10.0,
    ) {
        let (call, put) = blackscholes::price(s, x, t, blackscholes::RISK_FREE, blackscholes::VOLATILITY);
        let parity = s - x * (-blackscholes::RISK_FREE * t).exp();
        prop_assert!((call - put - parity).abs() < 2e-3,
            "parity violated: call={call} put={put} expected diff={parity}");
        // Premiums are non-negative.
        prop_assert!(call >= -1e-4 && put >= -1e-4);
    }

    /// The MG stencil is linear: A(αu + v) = αAu + Av.
    #[test]
    fn mg_stencil_is_linear(alpha in -4.0f64..4.0, seed in 0u64..1_000) {
        let n = 8;
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut u = mg::Grid3::zeros(n);
        let mut v = mg::Grid3::zeros(n);
        for slot in u.data.iter_mut() {
            *slot = next();
        }
        for slot in v.data.iter_mut() {
            *slot = next();
        }
        let mut combo = mg::Grid3::zeros(n);
        for i in 0..combo.data.len() {
            combo.data[i] = alpha * u.data[i] + v.data[i];
        }
        let lhs = mg::apply_stencil(&combo, mg::A_COEFF);
        let au = mg::apply_stencil(&u, mg::A_COEFF);
        let av = mg::apply_stencil(&v, mg::A_COEFF);
        for i in 0..lhs.data.len() {
            let rhs = alpha * au.data[i] + av.data[i];
            prop_assert!((lhs.data[i] - rhs).abs() < 1e-9);
        }
    }

    /// CG solves every randomly generated SPD system to tight residuals.
    #[test]
    fn cg_converges_for_any_seed(seed in 0u64..10_000) {
        let a = cg::make_matrix(150, 7, seed);
        let rhs = vec![1.0; 150];
        let (_, rnorm) = cg::cg_solve(&a, &rhs, 25);
        prop_assert!(rnorm < 1e-6, "seed {seed}: residual {rnorm}");
    }

    /// VectorAdd reference is commutative and the functional layout
    /// round-trips through byte encoding.
    #[test]
    fn vecadd_commutes(a in prop::collection::vec(-1e6f32..1e6, 1..64),
                       b_seed in 0u64..1000) {
        let b: Vec<f32> = a.iter().enumerate()
            .map(|(i, _)| ((i as u64 + b_seed) % 97) as f32)
            .collect();
        let ab = vecadd::reference(&a, &b);
        let ba = vecadd::reference(&b, &a);
        prop_assert_eq!(ab, ba);
    }
}

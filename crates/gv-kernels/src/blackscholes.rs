//! BlackScholes — European option pricing (NVIDIA CUDA SDK adaptation).
//!
//! Paper configuration (Table IV): 1M options, Nit = 512, grid 480,
//! classified **I/O-intensive**: the benchmark re-stages option data and
//! retrieves both premium arrays every iteration, so each of the 512
//! iterations is an (H2D 12 MB → kernel → D2H 8 MB) cycle and the task is
//! dominated by transfers — the kernel itself is a short, DRAM-bound
//! grid-stride loop (~0.14 ms).

use std::sync::Arc;

use gv_gpu::{CostSpec, DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper option count.
pub const PAPER_OPTIONS: u64 = 1_000_000;
/// Paper iteration count.
pub const PAPER_ITERATIONS: u32 = 512;
/// Paper grid size (Table IV).
pub const PAPER_GRID: u64 = 480;
/// Threads per block (SDK configuration).
pub const PAPER_TPB: u32 = 128;
/// Context-switch cost (not in Table II; device default range).
pub const CTX_SWITCH_MS: f64 = 170.0;

/// Risk-free rate used by the SDK benchmark.
pub const RISK_FREE: f32 = 0.02;
/// Volatility used by the SDK benchmark.
pub const VOLATILITY: f32 = 0.30;

/// Cumulative normal distribution (Abramowitz–Stegun polynomial, the
/// SDK's `CND`), accurate to ~7.5e-8.
pub fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_5;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_478;
    const A4: f32 = -1.821_256;
    const A5: f32 = 1.330_274_4;
    const RSQRT2PI: f32 = 0.398_942_3;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let c = RSQRT2PI * (-0.5 * d * d).exp() * poly;
    if d > 0.0 {
        1.0 - c
    } else {
        c
    }
}

/// Price one European call/put pair.
pub fn price(s: f32, x: f32, t: f32, r: f32, v: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let exp_rt = (-r * t).exp();
    let call = s * cnd(d1) - x * exp_rt * cnd(d2);
    let put = x * exp_rt * cnd(-d2) - s * cnd(-d1);
    (call, put)
}

/// CPU reference over parallel arrays; returns (calls, puts).
pub fn reference(price_s: &[f32], strike: &[f32], years: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let mut calls = Vec::with_capacity(price_s.len());
    let mut puts = Vec::with_capacity(price_s.len());
    for i in 0..price_s.len() {
        let (c, p) = price(price_s[i], strike[i], years[i], RISK_FREE, VOLATILITY);
        calls.push(c);
        puts.push(p);
    }
    (calls, puts)
}

fn kernel_desc(cfg: &DeviceConfig, options: u64) -> KernelDesc {
    let per_thread = options as f64 / (PAPER_GRID * PAPER_TPB as u64) as f64;
    // ~60 flops (exp/ln/sqrt at SFU cost) and 20 B DRAM per option.
    let cost = CostSpec::new(per_thread * 60.0, per_thread * 20.0);
    KernelDesc::new("blackscholes", PAPER_GRID, PAPER_TPB)
        .regs(22)
        .with_cost(cfg, &cost)
}

/// The paper-sized, timing-only task: 512 staged iterations.
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    scaled_task(cfg, PAPER_OPTIONS, PAPER_ITERATIONS)
}

/// A timing-only task over `options` options and `iterations` cycles.
pub fn scaled_task(cfg: &DeviceConfig, options: u64, iterations: u32) -> GpuTask {
    let in_bytes = 3 * 4 * options; // price, strike, years
    let out_bytes = 2 * 4 * options; // call, put
    GpuTask {
        name: "BlackScholes".into(),
        class: WorkloadClass::IoIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: in_bytes + out_bytes,
        iterations,
        bytes_in: in_bytes,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: out_bytes,
        d2h_offset: in_bytes,
        kernels: vec![KernelTemplate::timing(kernel_desc(cfg, options))],
    }
}

/// Functional task over explicit option data (single iteration; layout
/// `[s | x | t | call | put]`).
pub fn functional_task(
    cfg: &DeviceConfig,
    price_s: &[f32],
    strike: &[f32],
    years: &[f32],
) -> GpuTask {
    let n = price_s.len();
    assert_eq!(strike.len(), n);
    assert_eq!(years.len(), n);
    let mut task = scaled_task(cfg, n as u64, 1);
    let mut input = Vec::with_capacity(12 * n);
    for arr in [price_s, strike, years] {
        input.extend(arr.iter().flat_map(|v| v.to_le_bytes()));
    }
    task.input = Some(Arc::new(input));
    let factory: BodyFactory = Arc::new(move |base: DevicePtr| {
        Arc::new(move |mem: &mut DeviceMemory| {
            let s = mem.read_f32(base, n).expect("bs: read s");
            let x = mem.read_f32(base.add(4 * n as u64), n).expect("bs: read x");
            let t = mem.read_f32(base.add(8 * n as u64), n).expect("bs: read t");
            let (calls, puts) = reference(&s, &x, &t);
            mem.write_f32(base.add(12 * n as u64), &calls)
                .expect("bs: write call");
            mem.write_f32(base.add(16 * n as u64), &puts)
                .expect("bs: write put");
        }) as KernelBody
    });
    task.kernels = vec![KernelTemplate::functional(
        task.kernels[0].desc.clone(),
        factory,
    )];
    task
}

/// Deterministic pseudo-random option data (the SDK's ranges).
pub fn generate_options(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    // xorshift64* — simple, reproducible, no external deps needed here.
    let mut state = seed.max(1);
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545F4914F6CDD1D);
        (v >> 40) as f32 / (1u64 << 24) as f32
    };
    let mut s = Vec::with_capacity(n);
    let mut x = Vec::with_capacity(n);
    let mut t = Vec::with_capacity(n);
    for _ in 0..n {
        s.push(5.0 + 25.0 * next());
        x.push(1.0 + 99.0 * next());
        t.push(0.25 + 9.75 * next());
    }
    (s, x, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::estimate_kernel_time;

    #[test]
    fn cnd_symmetry_and_limits() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-6);
        for d in [-3.0f32, -1.0, 0.5, 2.5] {
            assert!((cnd(d) + cnd(-d) - 1.0).abs() < 1e-6);
        }
        assert!(cnd(6.0) > 0.999_999);
        assert!(cnd(-6.0) < 1e-6);
    }

    #[test]
    fn put_call_parity_holds() {
        // call - put = S - X·exp(-rT)
        let (s, x, t) = (30.0f32, 32.0f32, 1.5f32);
        let (call, put) = price(s, x, t, RISK_FREE, VOLATILITY);
        let parity = s - x * (-RISK_FREE * t).exp();
        assert!((call - put - parity).abs() < 1e-4);
    }

    #[test]
    fn deep_in_the_money_call_approaches_intrinsic() {
        let (call, _) = price(100.0, 1.0, 0.25, RISK_FREE, VOLATILITY);
        let intrinsic = 100.0 - 1.0 * (-RISK_FREE * 0.25f32).exp();
        assert!((call - intrinsic).abs() < 1e-3);
    }

    #[test]
    fn paper_task_is_io_intensive() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        assert_eq!(t.iterations, 512);
        let comp = estimate_kernel_time(&cfg, &t.kernels[0].desc).as_millis_f64();
        let io = cfg.copy_time(t.bytes_in, true, false).as_millis_f64()
            + cfg.copy_time(t.bytes_out, false, false).as_millis_f64();
        assert!(io > 5.0 * comp, "io {io} ms vs comp {comp} ms");
    }

    #[test]
    fn functional_body_matches_reference() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let (s, x, t) = generate_options(64, 7);
        let task = functional_task(&cfg, &s, &x, &t);
        let mut mem = DeviceMemory::new(1 << 20);
        let base = mem.alloc(task.device_bytes).unwrap();
        mem.write_bytes(base, task.input.as_ref().unwrap()).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let calls = mem.read_f32(base.add(task.d2h_offset), 64).unwrap();
        let (want_calls, _) = reference(&s, &x, &t);
        assert_eq!(calls, want_calls);
    }

    #[test]
    fn generated_options_in_sdk_ranges() {
        let (s, x, t) = generate_options(1000, 42);
        assert!(s.iter().all(|&v| (5.0..=30.0).contains(&v)));
        assert!(x.iter().all(|&v| (1.0..=100.0).contains(&v)));
        assert!(t.iter().all(|&v| (0.25..=10.0).contains(&v)));
    }
}

//! The benchmark registry: the paper's Table IV catalogue plus the two
//! Table II microbenchmarks, addressable by id.

use gv_gpu::DeviceConfig;

use crate::task::{GpuTask, WorkloadClass};
use crate::{blackscholes, cg, electrostatics, ep, mg, mm, vecadd};

/// The seven benchmarks the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// 50M-float vector addition (Table II, I/O-intensive microbenchmark).
    VecAdd,
    /// NPB EP Class B (Table II, compute-intensive microbenchmark).
    Ep,
    /// 2048² SGEMM (Table IV).
    Mm,
    /// NPB MG Class S (Table IV).
    Mg,
    /// BlackScholes, 1M options × 512 iterations (Table IV).
    BlackScholes,
    /// NPB CG Class S (Table IV).
    Cg,
    /// VMD direct Coulomb summation, 100K atoms × 25 iterations (Table IV).
    Electrostatics,
}

impl BenchmarkId {
    /// All benchmarks, Table II pair first then Table IV order.
    pub fn all() -> [BenchmarkId; 7] {
        [
            BenchmarkId::VecAdd,
            BenchmarkId::Ep,
            BenchmarkId::Mm,
            BenchmarkId::Mg,
            BenchmarkId::BlackScholes,
            BenchmarkId::Cg,
            BenchmarkId::Electrostatics,
        ]
    }

    /// The five application benchmarks of Table IV / Figs. 11–16.
    pub fn applications() -> [BenchmarkId; 5] {
        [
            BenchmarkId::Mm,
            BenchmarkId::Mg,
            BenchmarkId::BlackScholes,
            BenchmarkId::Cg,
            BenchmarkId::Electrostatics,
        ]
    }

    /// Parse a CLI-style name (`mm`, `mg`, `blackscholes`, `cg`,
    /// `electrostatics`, `vecadd`, `ep`).
    pub fn parse(s: &str) -> Option<BenchmarkId> {
        match s.to_ascii_lowercase().as_str() {
            "vecadd" | "vectoradd" => Some(BenchmarkId::VecAdd),
            "ep" => Some(BenchmarkId::Ep),
            "mm" => Some(BenchmarkId::Mm),
            "mg" => Some(BenchmarkId::Mg),
            "blackscholes" | "bs" => Some(BenchmarkId::BlackScholes),
            "cg" => Some(BenchmarkId::Cg),
            "electrostatics" | "electro" => Some(BenchmarkId::Electrostatics),
            _ => None,
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", Benchmark::describe(*self).name)
    }
}

/// Static description (paper Table II / Table IV row) plus task builder.
pub struct Benchmark {
    /// Benchmark id.
    pub id: BenchmarkId,
    /// Display name as in the paper.
    pub name: &'static str,
    /// Problem-size string (Table II / Table IV).
    pub problem_size: &'static str,
    /// Grid size (Table II / Table IV).
    pub grid_size: u64,
    /// The paper's classification.
    pub class: WorkloadClass,
}

impl Benchmark {
    /// Catalogue entry for `id`.
    pub fn describe(id: BenchmarkId) -> Benchmark {
        match id {
            BenchmarkId::VecAdd => Benchmark {
                id,
                name: "VectorAdd",
                problem_size: "Vector Size = 50M (float)",
                grid_size: 50_000,
                class: WorkloadClass::IoIntensive,
            },
            BenchmarkId::Ep => Benchmark {
                id,
                name: "EP",
                problem_size: "Class B (M=30)",
                grid_size: 4,
                class: WorkloadClass::ComputeIntensive,
            },
            BenchmarkId::Mm => Benchmark {
                id,
                name: "MM",
                problem_size: "2Kx2K Matrix",
                grid_size: 4096,
                class: WorkloadClass::Intermediate,
            },
            BenchmarkId::Mg => Benchmark {
                id,
                name: "MG",
                problem_size: "S(32x32x32 Nit=4)",
                grid_size: 64,
                class: WorkloadClass::ComputeIntensive,
            },
            BenchmarkId::BlackScholes => Benchmark {
                id,
                name: "BlackScholes",
                problem_size: "1M call, Nit=512",
                grid_size: 480,
                class: WorkloadClass::IoIntensive,
            },
            BenchmarkId::Cg => Benchmark {
                id,
                name: "CG",
                problem_size: "S(NA=1400, Nit=15)",
                grid_size: 8,
                class: WorkloadClass::ComputeIntensive,
            },
            BenchmarkId::Electrostatics => Benchmark {
                id,
                name: "Electrostatics",
                problem_size: "100K atoms, Nit=25",
                grid_size: 288,
                class: WorkloadClass::ComputeIntensive,
            },
        }
    }

    /// Build the paper-sized, timing-only task for `id`.
    pub fn paper_task(id: BenchmarkId, cfg: &DeviceConfig) -> GpuTask {
        match id {
            BenchmarkId::VecAdd => vecadd::paper_task(cfg),
            BenchmarkId::Ep => ep::paper_task(cfg),
            BenchmarkId::Mm => mm::paper_task(cfg),
            BenchmarkId::Mg => mg::paper_task(cfg),
            BenchmarkId::BlackScholes => blackscholes::paper_task(cfg),
            BenchmarkId::Cg => cg::paper_task(cfg),
            BenchmarkId::Electrostatics => electrostatics::paper_task(cfg),
        }
    }

    /// Build a reduced-size task for quick runs (examples, smoke tests):
    /// same geometry rules, roughly `1/scale_down` of the paper cost.
    pub fn scaled_task(id: BenchmarkId, cfg: &DeviceConfig, scale_down: u32) -> GpuTask {
        let s = scale_down.max(1);
        match id {
            BenchmarkId::VecAdd => vecadd::scaled_task(cfg, vecadd::PAPER_N / s as u64),
            BenchmarkId::Ep => ep::timing_task(cfg, ep::PAPER_KERNEL_MS / s as f64),
            BenchmarkId::Mm => {
                // n scales with cube root of cost (n³ flops).
                let n = (mm::PAPER_N as f64 / (s as f64).cbrt()) as u64;
                mm::scaled_task(cfg, n.max(64))
            }
            BenchmarkId::Mg => {
                let mut t = mg::paper_task(cfg);
                let keep = (t.kernels.len() as u32 / s).max(2) as usize;
                t.kernels.truncate(keep);
                t
            }
            BenchmarkId::BlackScholes => blackscholes::scaled_task(
                cfg,
                blackscholes::PAPER_OPTIONS,
                (blackscholes::PAPER_ITERATIONS / s).max(1),
            ),
            BenchmarkId::Cg => {
                let mut t = cg::paper_task(cfg);
                let keep = (t.kernels.len() as u32 / s).max(2) as usize;
                t.kernels.truncate(keep);
                t
            }
            BenchmarkId::Electrostatics => electrostatics::scaled_task(
                cfg,
                electrostatics::PAPER_ATOMS,
                (electrostatics::PAPER_ITERATIONS / s).max(1),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table4_grid_sizes() {
        let grids: Vec<u64> = BenchmarkId::applications()
            .iter()
            .map(|&id| Benchmark::describe(id).grid_size)
            .collect();
        assert_eq!(grids, vec![4096, 64, 480, 8, 288]);
    }

    #[test]
    fn tasks_build_and_match_catalogue_geometry() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        for id in BenchmarkId::all() {
            let desc = Benchmark::describe(id);
            let task = Benchmark::paper_task(id, &cfg);
            assert_eq!(
                task.kernels[0].desc.grid_blocks, desc.grid_size,
                "{id:?} grid mismatch"
            );
            assert_eq!(task.class, desc.class, "{id:?} class mismatch");
            assert!(task.device_bytes > 0);
        }
    }

    #[test]
    fn parse_roundtrips() {
        for id in BenchmarkId::all() {
            let name = Benchmark::describe(id).name;
            assert_eq!(BenchmarkId::parse(name), Some(id), "{name}");
        }
        assert_eq!(BenchmarkId::parse("nope"), None);
    }

    #[test]
    fn scaled_tasks_are_cheaper() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        for id in BenchmarkId::all() {
            let full = Benchmark::paper_task(id, &cfg);
            let small = Benchmark::scaled_task(id, &cfg, 8);
            let cost = |t: &crate::task::GpuTask| {
                t.iterations as f64
                    * (t.bytes_in as f64
                        + t.bytes_out as f64
                        + t.kernels
                            .iter()
                            .map(|k| {
                                gv_gpu::estimate_kernel_time(&cfg, &k.desc).as_secs_f64() * 3e9
                            })
                            .sum::<f64>())
            };
            assert!(
                cost(&small) < cost(&full),
                "{id:?}: scaled task not cheaper"
            );
        }
    }
}

//! NPB CG — conjugate gradient with a sparse SPD matrix (Class S:
//! NA = 1400, Nit = 15; paper grid size 8; classified compute-intensive).
//!
//! Structure follows NPB CG: an outer power-method loop of `Nit`
//! iterations, each solving `A·z = x` with 25 unpreconditioned CG steps and
//! updating the shifted-inverse eigenvalue estimate
//! `zeta = shift + 1/(x·z)`. The sparse matrix is a randomly structured,
//! symmetric, diagonally dominant CSR matrix of ~`nonzer` entries per row
//! (NPB's `makea` builds a similar pattern; our generator is simpler but
//! preserves SPD-ness and row sparsity, which is what drives the kernels).
//!
//! The paper's GPU port runs at grid size 8 — 8 blocks on a 14-SM Fermi —
//! so CG leaves most of the GPU idle and is one of the two biggest winners
//! from virtualized concurrent execution (paper Fig. 16).

use std::sync::Arc;

use gv_gpu::{DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper matrix order (Class S).
pub const PAPER_NA: usize = 1400;
/// Nonzeros per row (Class S).
pub const PAPER_NONZER: usize = 7;
/// Outer iterations (Class S).
pub const PAPER_NITER: u32 = 15;
/// Inner CG steps per outer iteration (NPB `cgitmax`).
pub const CG_INNER: u32 = 25;
/// Eigenvalue shift (Class S).
pub const PAPER_SHIFT: f64 = 10.0;
/// Paper grid size (Table IV).
pub const PAPER_GRID: u64 = 8;
/// Threads per block of the GPU port (8 warps: a lone 8-block grid busies
/// 8 of 14 SMs at eff 2/3 — the underutilization virtualization exploits).
pub const PAPER_TPB: u32 = 256;
/// Context-switch cost (not in Table II; device default range).
pub const CTX_SWITCH_MS: f64 = 200.0;
/// Calibrated total GPU compute per Class S task, ms.
pub const PAPER_TASK_COMPUTE_MS: f64 = 430.0;

/// A CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Matrix order.
    pub n: usize,
    /// Row start offsets (`n + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub cols: Vec<usize>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Csr {
    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * x[self.cols[idx]];
            }
            *out = acc;
        }
        y
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// Build a random symmetric, diagonally dominant (hence SPD) matrix with
/// about `nonzer` off-diagonal entries per row. Deterministic in `seed`.
pub fn make_matrix(n: usize, nonzer: usize, seed: u64) -> Csr {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    // Collect symmetric off-diagonal entries in a dense-row sketch.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..nonzer / 2 {
            let j = (next() as usize) % n;
            if j == i {
                continue;
            }
            let v = -((next() >> 40) as f64 / (1u64 << 24) as f64) * 0.5;
            rows[i].push((j, v));
            rows[j].push((i, v));
        }
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for (i, row) in rows.iter_mut().enumerate() {
        row.sort_by_key(|&(j, _)| j);
        // Merge duplicate columns.
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
        for &(j, v) in row.iter() {
            match merged.last_mut() {
                Some((lj, lv)) if *lj == j => *lv += v,
                _ => merged.push((j, v)),
            }
        }
        let offdiag_sum: f64 = merged.iter().map(|&(_, v)| v.abs()).sum();
        // Diagonal dominance → SPD.
        let mut placed_diag = false;
        for &(j, v) in &merged {
            if j > i && !placed_diag {
                cols.push(i);
                vals.push(offdiag_sum + 1.0);
                placed_diag = true;
            }
            cols.push(j);
            vals.push(v);
        }
        if !placed_diag {
            cols.push(i);
            vals.push(offdiag_sum + 1.0);
        }
        row_ptr.push(cols.len());
    }
    Csr {
        n,
        row_ptr,
        cols,
        vals,
    }
}

/// `steps` unpreconditioned CG iterations for `A·z = x` from `z = 0`.
/// Returns `(z, final residual norm)`.
pub fn cg_solve(a: &Csr, x: &[f64], steps: u32) -> (Vec<f64>, f64) {
    let n = a.n;
    let mut z = vec![0.0; n];
    let mut r = x.to_vec();
    let mut p = r.clone();
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..steps {
        let q = a.spmv(&p);
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        if pq == 0.0 {
            break;
        }
        let alpha = rho / pq;
        for i in 0..n {
            z[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    (z, rho.sqrt())
}

/// The full NPB-style CG benchmark: `niter` outer power iterations.
/// Returns the final `zeta` estimate.
pub fn run_benchmark(a: &Csr, niter: u32, shift: f64) -> f64 {
    let n = a.n;
    let mut x = vec![1.0; n];
    let mut zeta = 0.0;
    for _ in 0..niter {
        let (z, _) = cg_solve(a, &x, CG_INNER);
        let xz: f64 = x.iter().zip(&z).map(|(a, b)| a * b).sum();
        zeta = shift + 1.0 / xz;
        let znorm: f64 = z.iter().map(|v| v * v).sum::<f64>().sqrt();
        for i in 0..n {
            x[i] = z[i] / znorm;
        }
    }
    zeta
}

/// The paper-sized, timing-only task: 15 outer × 25 inner fused
/// SpMV/vector kernels at grid 8.
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    let total_kernels = (PAPER_NITER * CG_INNER) as usize;
    let per_kernel_ms = PAPER_TASK_COMPUTE_MS / total_kernels as f64;
    let desc = KernelDesc::new("cg-spmv", PAPER_GRID, PAPER_TPB)
        .regs(26)
        .with_target_time(cfg, SimDuration::from_millis_f64(per_kernel_ms));
    let vec_bytes = (PAPER_NA * 8) as u64;
    let mat_bytes = (PAPER_NA * (PAPER_NONZER + 1) * 16) as u64;
    GpuTask {
        name: "CG".into(),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: mat_bytes + 6 * vec_bytes,
        iterations: 1,
        bytes_in: mat_bytes + vec_bytes,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: vec_bytes + 8, // z and zeta
        d2h_offset: mat_bytes,
        kernels: vec![KernelTemplate::timing(desc); total_kernels],
    }
}

/// Functional task: runs the benchmark on an `n`-order matrix inside one
/// kernel body; writes `zeta` (f64) at device offset 0.
pub fn functional_task(cfg: &DeviceConfig, n: usize, niter: u32, seed: u64) -> GpuTask {
    let desc = KernelDesc::new("cg-bench", PAPER_GRID, PAPER_TPB)
        .regs(26)
        .with_target_time(cfg, SimDuration::from_millis_f64(2.0));
    let factory: BodyFactory = Arc::new(move |base: DevicePtr| {
        Arc::new(move |mem: &mut DeviceMemory| {
            let a = make_matrix(n, PAPER_NONZER, seed);
            let zeta = run_benchmark(&a, niter, PAPER_SHIFT);
            mem.write_f64(base, &[zeta]).expect("cg: write zeta");
        }) as KernelBody
    });
    GpuTask {
        name: format!("CG(n={n})"),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: 256,
        iterations: 1,
        bytes_in: 0,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: 8,
        d2h_offset: 0,
        kernels: vec![KernelTemplate::functional(desc, factory)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        let a = make_matrix(100, PAPER_NONZER, 42);
        for i in 0..a.n {
            for idx in a.row_ptr[i]..a.row_ptr[i + 1] {
                let j = a.cols[idx];
                let v = a.vals[idx];
                // Find (j, i).
                let found = (a.row_ptr[j]..a.row_ptr[j + 1])
                    .any(|k| a.cols[k] == i && (a.vals[k] - v).abs() < 1e-12);
                assert!(found, "A[{i}][{j}] present but A[{j}][{i}] missing");
            }
        }
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let a = make_matrix(200, PAPER_NONZER, 7);
        for i in 0..a.n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for idx in a.row_ptr[i]..a.row_ptr[i + 1] {
                if a.cols[idx] == i {
                    diag = a.vals[idx];
                } else {
                    off += a.vals[idx].abs();
                }
            }
            assert!(diag > off, "row {i}: diag {diag} ≤ off-diag {off}");
        }
    }

    #[test]
    fn spmv_identity_on_unit_matrix() {
        let eye = Csr {
            n: 3,
            row_ptr: vec![0, 1, 2, 3],
            cols: vec![0, 1, 2],
            vals: vec![1.0, 1.0, 1.0],
        };
        assert_eq!(eye.spmv(&[4.0, 5.0, 6.0]), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn cg_converges_on_spd_system() {
        let a = make_matrix(300, PAPER_NONZER, 123);
        let x = vec![1.0; 300];
        let (z, rnorm) = cg_solve(&a, &x, 25);
        // Residual after 25 steps must be far below ||x|| = √300.
        assert!(rnorm < 1e-6 * (300f64).sqrt(), "rnorm = {rnorm}");
        // And A·z ≈ x.
        let az = a.spmv(&z);
        let err: f64 = az
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "‖Az − x‖ = {err}");
    }

    #[test]
    fn zeta_exceeds_shift_and_is_stable() {
        let a = make_matrix(PAPER_NA, PAPER_NONZER, 1);
        let z15 = run_benchmark(&a, 15, PAPER_SHIFT);
        let z16 = run_benchmark(&a, 16, PAPER_SHIFT);
        assert!(z15 > PAPER_SHIFT);
        assert!(
            (z15 - z16).abs() < 1e-9,
            "power iteration not converged: {z15} vs {z16}"
        );
    }

    #[test]
    fn paper_task_shape_matches_table4() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        assert_eq!(t.kernels[0].desc.grid_blocks, 8);
        assert_eq!(t.kernels.len(), 375);
        let total: f64 = t
            .kernels
            .iter()
            .map(|k| gv_gpu::estimate_kernel_time(&cfg, &k.desc).as_millis_f64())
            .sum();
        assert!((total - PAPER_TASK_COMPUTE_MS).abs() / PAPER_TASK_COMPUTE_MS < 0.01);
    }

    #[test]
    fn functional_body_writes_finite_zeta() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let task = functional_task(&cfg, 120, 3, 9);
        let mut mem = DeviceMemory::new(1 << 16);
        let base = mem.alloc(task.device_bytes).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let zeta = mem.read_f64(base, 1).unwrap()[0];
        let want = run_benchmark(&make_matrix(120, PAPER_NONZER, 9), 3, PAPER_SHIFT);
        assert_eq!(zeta, want);
        assert!(zeta.is_finite() && zeta > PAPER_SHIFT);
    }
}

//! NPB MG — multigrid V-cycles on a 3D periodic grid (Class S: 32³,
//! Nit = 4; paper grid size 64; classified compute-intensive).
//!
//! The functional implementation is a faithful small-scale multigrid
//! solver for the discrete Poisson-like operator NPB uses: 27-point
//! stencils grouped by neighbour distance class, full-weighting
//! restriction, trilinear prolongation, and the NPB smoother. The timing
//! model represents each iteration's V-cycle as the paper's GPU port
//! does — a sequence of stencil-kernel launches at grid size 64, each
//! calibrated so a full Class S task costs ≈ 280 ms of GPU compute (an
//! unoptimized Fermi-era port; see EXPERIMENTS.md).

use std::sync::Arc;

use gv_gpu::{DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper problem edge (Class S).
pub const PAPER_N: usize = 32;
/// Paper iteration count (Table IV).
pub const PAPER_ITERATIONS: u32 = 4;
/// Paper grid size (Table IV) — the finest-level kernels.
pub const PAPER_GRID: u64 = 64;
/// Grid size of coarse-level V-cycle kernels (16³ and below).
pub const COARSE_GRID: u64 = 4;
/// Threads per block of the GPU port (one warp; 16 points per thread at
/// the finest level — low occupancy is what the GVM's concurrent kernels
/// exploit).
pub const PAPER_TPB: u32 = 32;
/// Context-switch cost (not in Table II; device default range).
pub const CTX_SWITCH_MS: f64 = 190.0;
/// Calibrated total GPU compute per Class S task, ms.
pub const PAPER_TASK_COMPUTE_MS: f64 = 280.0;
/// Share of task compute spent in finest-level (grid 64) kernels; the
/// rest sits in coarse-level (grid 4) kernels that badly underutilize the
/// GPU — multigrid's classic GPU pathology.
pub const FINE_FRACTION: f64 = 0.64;

/// NPB operator coefficients `a` (distance classes 0–3).
pub const A_COEFF: [f64; 4] = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];
/// NPB Class S smoother coefficients `c`.
pub const C_COEFF: [f64; 4] = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];

/// A cubic periodic grid of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Edge length.
    pub n: usize,
    /// Row-major values, `n³` of them.
    pub data: Vec<f64>,
}

impl Grid3 {
    /// A zero grid of edge `n`.
    pub fn zeros(n: usize) -> Self {
        Grid3 {
            n,
            data: vec![0.0; n * n * n],
        }
    }

    #[inline]
    fn at(&self, i: isize, j: isize, k: isize) -> f64 {
        let n = self.n as isize;
        let w = |x: isize| ((x % n + n) % n) as usize;
        self.data[(w(i) * self.n + w(j)) * self.n + w(k)]
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Apply a 27-point distance-class stencil: for each point, `co[0]`×center
/// + `co[1]`×Σ(6 faces) + `co[2]`×Σ(12 edges) + `co[3]`×Σ(8 corners).
pub fn apply_stencil(src: &Grid3, co: [f64; 4]) -> Grid3 {
    let n = src.n;
    let mut out = Grid3::zeros(n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let (i, j, k) = (i as isize, j as isize, k as isize);
                let mut faces = 0.0;
                let mut edges = 0.0;
                let mut corners = 0.0;
                for di in -1isize..=1 {
                    for dj in -1isize..=1 {
                        for dk in -1isize..=1 {
                            let d = di.abs() + dj.abs() + dk.abs();
                            let v = src.at(i + di, j + dj, k + dk);
                            match d {
                                1 => faces += v,
                                2 => edges += v,
                                3 => corners += v,
                                _ => {}
                            }
                        }
                    }
                }
                let center = src.at(i, j, k);
                let idx = out.idx(i as usize, j as usize, k as usize);
                out.data[idx] = co[0] * center + co[1] * faces + co[2] * edges + co[3] * corners;
            }
        }
    }
    out
}

/// `resid`: r = v − A·u.
pub fn resid(v: &Grid3, u: &Grid3) -> Grid3 {
    let au = apply_stencil(u, A_COEFF);
    let mut r = Grid3::zeros(v.n);
    for (idx, slot) in r.data.iter_mut().enumerate() {
        *slot = v.data[idx] - au.data[idx];
    }
    r
}

/// `psinv`: u ← u + S·r (NPB smoother).
pub fn psinv(u: &mut Grid3, r: &Grid3) {
    let sr = apply_stencil(r, C_COEFF);
    for (idx, slot) in u.data.iter_mut().enumerate() {
        *slot += sr.data[idx];
    }
}

/// `rprj3`: full-weighting restriction to a grid of half the edge.
pub fn rprj3(fine: &Grid3) -> Grid3 {
    let nc = fine.n / 2;
    let mut coarse = Grid3::zeros(nc);
    for i in 0..nc {
        for j in 0..nc {
            for k in 0..nc {
                let (fi, fj, fk) = (2 * i as isize, 2 * j as isize, 2 * k as isize);
                let mut acc = 0.0;
                for di in -1isize..=1 {
                    for dj in -1isize..=1 {
                        for dk in -1isize..=1 {
                            let d = di.abs() + dj.abs() + dk.abs();
                            let w = match d {
                                0 => 8.0,
                                1 => 4.0,
                                2 => 2.0,
                                _ => 1.0,
                            } / 64.0;
                            acc += w * fine.at(fi + di, fj + dj, fk + dk);
                        }
                    }
                }
                let idx = coarse.idx(i, j, k);
                coarse.data[idx] = acc;
            }
        }
    }
    coarse
}

/// `interp`: trilinear prolongation to a grid of double the edge.
pub fn interp(coarse: &Grid3) -> Grid3 {
    let nf = coarse.n * 2;
    let mut fine = Grid3::zeros(nf);
    for i in 0..nf {
        for j in 0..nf {
            for k in 0..nf {
                let (ci, cj, ck) = (i as isize, j as isize, k as isize);
                // Each fine point averages the coarse points that bracket
                // it along each odd axis (1, 2, 4 or 8 contributors).
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for di in 0..=(i % 2) as isize {
                    for dj in 0..=(j % 2) as isize {
                        for dk in 0..=(k % 2) as isize {
                            acc += coarse.at(ci / 2 + di, cj / 2 + dj, ck / 2 + dk);
                            cnt += 1.0;
                        }
                    }
                }
                let idx = fine.idx(i, j, k);
                fine.data[idx] = acc / cnt;
            }
        }
    }
    fine
}

/// One V-cycle: returns the updated solution `u` for right-hand side `v`.
pub fn v_cycle(u: &Grid3, v: &Grid3) -> Grid3 {
    let mut u = u.clone();
    // Descend: residuals restricted to the coarsest level (edge 2).
    let mut residuals = vec![resid(v, &u)];
    while residuals.last().expect("non-empty").n > 2 {
        let next = rprj3(residuals.last().expect("non-empty"));
        residuals.push(next);
    }
    // Coarsest solve: one smoother application.
    let mut correction = Grid3::zeros(2);
    psinv(&mut correction, residuals.last().expect("non-empty"));
    // Ascend: prolongate and smooth against the stored residuals.
    for level in (0..residuals.len() - 1).rev() {
        correction = interp(&correction);
        let r = &residuals[level];
        // r_level' = r_level − A·correction, then smooth.
        let acorr = apply_stencil(&correction, A_COEFF);
        let mut r2 = Grid3::zeros(r.n);
        for (idx, slot) in r2.data.iter_mut().enumerate() {
            *slot = r.data[idx] - acorr.data[idx];
        }
        psinv(&mut correction, &r2);
    }
    for (idx, slot) in u.data.iter_mut().enumerate() {
        *slot += correction.data[idx];
    }
    u
}

/// The NPB-style Class S right-hand side: +1/−1 charges at fixed
/// pseudo-random lattice points (deterministic here).
pub fn class_s_rhs(n: usize) -> Grid3 {
    let mut v = Grid3::zeros(n);
    let mut state = 314_159u64;
    let mut next = |m: usize| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as usize) % m
    };
    for charge in 0..20 {
        let (i, j, k) = (next(n), next(n), next(n));
        let idx = v.idx(i, j, k);
        v.data[idx] = if charge % 2 == 0 { 1.0 } else { -1.0 };
    }
    v
}

/// Kernel launches in one Class S V-cycle iteration, matching the GPU
/// port's decomposition (resid + 4 restrictions + bottom smooth +
/// 4×(interp, resid, psinv)).
pub fn kernels_per_iteration(n: usize) -> usize {
    let levels = (n as f64).log2() as usize - 1; // 32 → 4 descents to edge 2
    1 + levels + 1 + 3 * levels
}

/// The paper-sized, timing-only task. Each of the 4 iterations runs one
/// V-cycle: 4 finest-level kernels (grid 64) and 14 coarse-level kernels
/// (grid 4), with per-kernel times calibrated so a task totals
/// [`PAPER_TASK_COMPUTE_MS`] split [`FINE_FRACTION`] fine / rest coarse.
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    let fine_per_iter = 4u32;
    let coarse_per_iter = (kernels_per_iteration(PAPER_N) as u32) - fine_per_iter;
    let fine_total = fine_per_iter * PAPER_ITERATIONS;
    let coarse_total = coarse_per_iter * PAPER_ITERATIONS;
    let fine_ms = PAPER_TASK_COMPUTE_MS * FINE_FRACTION / fine_total as f64;
    let coarse_ms = PAPER_TASK_COMPUTE_MS * (1.0 - FINE_FRACTION) / coarse_total as f64;
    let fine = KernelDesc::new("mg-fine", PAPER_GRID, PAPER_TPB)
        .regs(24)
        .with_target_time(cfg, SimDuration::from_millis_f64(fine_ms));
    let coarse = KernelDesc::new("mg-coarse", COARSE_GRID, PAPER_TPB)
        .regs(24)
        .with_target_time(cfg, SimDuration::from_millis_f64(coarse_ms));
    // V-cycle order: top resid (fine), descents + bottom + most ascents
    // (coarse), final top-level interp/resid/psinv (fine).
    let mut kernels = Vec::new();
    for _ in 0..PAPER_ITERATIONS {
        kernels.push(KernelTemplate::timing(fine.clone()));
        for _ in 0..coarse_per_iter {
            kernels.push(KernelTemplate::timing(coarse.clone()));
        }
        for _ in 0..(fine_per_iter - 1) {
            kernels.push(KernelTemplate::timing(fine.clone()));
        }
    }
    let bytes = (PAPER_N * PAPER_N * PAPER_N * 8) as u64;
    GpuTask {
        name: "MG".into(),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: 4 * bytes,
        iterations: 1,
        bytes_in: 2 * bytes, // u and v
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: bytes, // final u
        d2h_offset: 0,
        kernels,
    }
}

/// Functional task: `iterations` V-cycles on an `n³` grid with the Class S
/// style RHS (layout `[u | v]`; result u written back in place).
pub fn functional_task(cfg: &DeviceConfig, n: usize, iterations: u32) -> GpuTask {
    let bytes = (n * n * n * 8) as u64;
    let v = class_s_rhs(n);
    let u0 = Grid3::zeros(n);
    let mut input = Vec::with_capacity(2 * bytes as usize);
    input.extend(u0.data.iter().flat_map(|x| x.to_le_bytes()));
    input.extend(v.data.iter().flat_map(|x| x.to_le_bytes()));

    let desc = KernelDesc::new("mg-vcycle", PAPER_GRID.min(n as u64), PAPER_TPB)
        .regs(24)
        .with_target_time(cfg, SimDuration::from_millis_f64(1.0));
    let factory: BodyFactory = Arc::new(move |base: DevicePtr| {
        Arc::new(move |mem: &mut DeviceMemory| {
            let cells = n * n * n;
            let u_data = mem.read_f64(base, cells).expect("mg: read u");
            let v_data = mem
                .read_f64(base.add(8 * cells as u64), cells)
                .expect("mg: read v");
            let u = Grid3 { n, data: u_data };
            let v = Grid3 { n, data: v_data };
            let u2 = v_cycle(&u, &v);
            mem.write_f64(base, &u2.data).expect("mg: write u");
        }) as KernelBody
    });
    GpuTask {
        name: format!("MG(n={n})"),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: 2 * bytes,
        iterations: 1,
        bytes_in: 2 * bytes,
        round_bytes_in: Vec::new(),
        input: Some(Arc::new(input)),
        bytes_out: bytes,
        d2h_offset: 0,
        kernels: vec![KernelTemplate::functional(desc, factory); iterations as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_of_constant_field_scales_by_coefficient_sum() {
        let n = 8;
        let mut g = Grid3::zeros(n);
        g.data.fill(2.0);
        let out = apply_stencil(&g, A_COEFF);
        let sum = A_COEFF[0] + 6.0 * A_COEFF[1] + 12.0 * A_COEFF[2] + 8.0 * A_COEFF[3];
        for v in &out.data {
            assert!((v - 2.0 * sum).abs() < 1e-12);
        }
    }

    #[test]
    fn restriction_preserves_constant_fields() {
        let mut g = Grid3::zeros(8);
        g.data.fill(3.5);
        let c = rprj3(&g);
        assert_eq!(c.n, 4);
        for v in &c.data {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_preserves_constant_fields() {
        let mut g = Grid3::zeros(4);
        g.data.fill(-1.25);
        let f = interp(&g);
        assert_eq!(f.n, 8);
        for v in &f.data {
            assert!((v + 1.25).abs() < 1e-12);
        }
    }

    #[test]
    fn v_cycle_reduces_residual() {
        let n = 16;
        let v = class_s_rhs(n);
        let u0 = Grid3::zeros(n);
        let r0 = resid(&v, &u0).norm();
        let mut u = u0;
        for _ in 0..4 {
            u = v_cycle(&u, &v);
        }
        let r4 = resid(&v, &u).norm();
        assert!(
            r4 < 0.5 * r0,
            "V-cycles failed to converge: r0 = {r0}, r4 = {r4}"
        );
    }

    #[test]
    fn kernel_count_matches_vcycle_structure() {
        // 32³: 4 descents → 1 + 4 + 1 + 12 = 18 kernels per iteration.
        assert_eq!(kernels_per_iteration(32), 18);
        assert_eq!(kernels_per_iteration(16), 14);
    }

    #[test]
    fn paper_task_compute_calibrated() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        assert_eq!(t.kernels.len(), 18 * 4);
        let total: f64 = t
            .kernels
            .iter()
            .map(|k| gv_gpu::estimate_kernel_time(&cfg, &k.desc).as_millis_f64())
            .sum();
        let err = (total - PAPER_TASK_COMPUTE_MS).abs() / PAPER_TASK_COMPUTE_MS;
        assert!(err < 0.01, "MG total compute {total} ms");
    }

    #[test]
    fn functional_body_runs_one_vcycle() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let n = 8;
        let task = functional_task(&cfg, n, 1);
        let mut mem = DeviceMemory::new(1 << 22);
        let base = mem.alloc(task.device_bytes).unwrap();
        mem.write_bytes(base, task.input.as_ref().unwrap()).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let got = Grid3 {
            n,
            data: mem.read_f64(base, n * n * n).unwrap(),
        };
        let want = v_cycle(&Grid3::zeros(n), &class_s_rhs(n));
        assert_eq!(got, want);
    }
}

//! Vector addition — the paper's I/O-intensive microbenchmark.
//!
//! Paper configuration (Table II): 50M single-precision elements,
//! grid size 50 000, `Tdata_in` 135.874 ms (two 200 MB operand arrays),
//! `Tcomp` 0.038 ms, `Tdata_out` 66.656 ms (200 MB result),
//! `Tctx_switch` 148.226 ms.
//!
//! The kernel itself is calibrated to the paper's measured `Tcomp` (an
//! async-launch-dominated figure — see EXPERIMENTS.md); the task-level
//! behaviour is bandwidth-bound either way.

use std::sync::Arc;

use gv_gpu::{DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper problem size: 50M floats.
pub const PAPER_N: u64 = 50_000_000;
/// Paper grid size (Table II).
pub const PAPER_GRID: u64 = 50_000;
/// Threads per block implied by N and the grid.
pub const PAPER_TPB: u32 = 1_000;
/// Paper-measured per-task context-switch cost, ms (Table II).
pub const PAPER_CTX_SWITCH_MS: f64 = 148.226;
/// Paper-measured kernel time, ms (Table II `Tcomp` minus the launch call).
pub const PAPER_KERNEL_MS: f64 = 0.030;

/// The paper-sized, timing-only task.
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    scaled_task(cfg, PAPER_N)
}

/// A timing-only task over `n` elements (same geometry rules as the paper:
/// one thread per element, 1000-thread blocks; kernel time scales with n).
pub fn scaled_task(cfg: &DeviceConfig, n: u64) -> GpuTask {
    let grid = n.div_ceil(PAPER_TPB as u64);
    let scale = n as f64 / PAPER_N as f64;
    let desc = KernelDesc::new("vecadd", grid, PAPER_TPB)
        .regs(10)
        .with_target_time(cfg, SimDuration::from_millis_f64(PAPER_KERNEL_MS * scale));
    GpuTask {
        name: "VectorAdd".into(),
        class: WorkloadClass::IoIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(PAPER_CTX_SWITCH_MS),
        device_bytes: 12 * n,
        iterations: 1,
        bytes_in: 8 * n,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: 4 * n,
        d2h_offset: 8 * n,
        kernels: vec![KernelTemplate::timing(desc)],
    }
}

/// CPU reference: element-wise sum.
pub fn reference(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Functional device body over the task's device region
/// (layout: `[a(n) | b(n) | c(n)]` as f32).
fn body(base: DevicePtr, n: usize) -> KernelBody {
    Arc::new(move |mem: &mut DeviceMemory| {
        let a = mem.read_f32(base, n).expect("vecadd: read a");
        let b = mem
            .read_f32(base.add(4 * n as u64), n)
            .expect("vecadd: read b");
        let c = reference(&a, &b);
        mem.write_f32(base.add(8 * n as u64), &c)
            .expect("vecadd: write c");
    })
}

/// A functional task over `n` elements with the given operand values.
pub fn functional_task(cfg: &DeviceConfig, a: &[f32], b: &[f32]) -> GpuTask {
    assert_eq!(a.len(), b.len());
    let n = a.len() as u64;
    let mut task = scaled_task(cfg, n);
    let mut input = Vec::with_capacity(8 * n as usize);
    input.extend(a.iter().flat_map(|v| v.to_le_bytes()));
    input.extend(b.iter().flat_map(|v| v.to_le_bytes()));
    task.input = Some(Arc::new(input));
    let n_usize = n as usize;
    let factory: BodyFactory = Arc::new(move |base| body(base, n_usize));
    task.kernels = vec![KernelTemplate::functional(
        task.kernels[0].desc.clone(),
        factory,
    )];
    task
}

/// Decode a functional task's output bytes into f32s.
pub fn decode_output(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::estimate_kernel_time;

    #[test]
    fn paper_task_geometry_matches_table2() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        assert_eq!(t.kernels[0].desc.grid_blocks, PAPER_GRID);
        assert_eq!(t.bytes_in, 400_000_000);
        assert_eq!(t.bytes_out, 200_000_000);
        assert_eq!(t.iterations, 1);
    }

    #[test]
    fn kernel_calibrated_to_paper_tcomp() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        let est = estimate_kernel_time(&cfg, &t.kernels[0].desc);
        let err = (est.as_millis_f64() - PAPER_KERNEL_MS).abs() / PAPER_KERNEL_MS;
        assert!(
            err < 0.01,
            "kernel time {est} vs target {PAPER_KERNEL_MS} ms"
        );
    }

    #[test]
    fn reference_adds() {
        assert_eq!(reference(&[1.0, 2.0], &[0.5, -2.0]), vec![1.5, 0.0]);
    }

    #[test]
    fn functional_body_computes_sum() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..64).map(|i| (i * 2) as f32).collect();
        let task = functional_task(&cfg, &a, &b);
        assert!(task.is_functional());

        let mut mem = DeviceMemory::new(1 << 20);
        let base = mem.alloc(task.device_bytes).unwrap();
        mem.write_bytes(base, task.input.as_ref().unwrap()).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let out = mem.read_f32(base.add(task.d2h_offset), 64).unwrap();
        assert_eq!(out, reference(&a, &b));
    }

    #[test]
    fn scaled_task_shrinks_io() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = scaled_task(&cfg, 1_000_000);
        assert_eq!(t.bytes_in, 8_000_000);
        assert_eq!(t.kernels[0].desc.grid_blocks, 1000);
    }
}

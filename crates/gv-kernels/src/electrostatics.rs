//! Electrostatics — direct Coulomb summation (DCS) from VMD's fast
//! molecular electrostatics (paper Table IV: 100K atoms, Nit = 25,
//! grid 288; classified compute-intensive).
//!
//! Each kernel computes the electrostatic potential on one lattice slice:
//! every thread owns one lattice point and sums `q_j / r_ij` over all
//! atoms. At grid size 288 the kernel saturates the C2070 (288 blocks of
//! 4 warps ≫ the 112-block residency), so the paper observes little
//! concurrency benefit — gains come from eliminating context-switch and
//! initialization overheads only.

use std::sync::Arc;

use gv_gpu::{CostSpec, DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper atom count.
pub const PAPER_ATOMS: u64 = 100_000;
/// Paper iteration (slice) count.
pub const PAPER_ITERATIONS: u32 = 25;
/// Paper grid size (Table IV).
pub const PAPER_GRID: u64 = 288;
/// Threads per block of the VMD kernel.
pub const PAPER_TPB: u32 = 128;
/// Context-switch cost (not in Table II; device default range).
pub const CTX_SWITCH_MS: f64 = 195.0;

/// One atom: position + charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Position (Å).
    pub x: f32,
    /// Position (Å).
    pub y: f32,
    /// Position (Å).
    pub z: f32,
    /// Partial charge (e).
    pub q: f32,
}

/// Deterministic pseudo-random atoms in a `span³` Å box.
pub fn generate_atoms(n: usize, span: f32, seed: u64) -> Vec<Atom> {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1u64 << 24) as f32
    };
    (0..n)
        .map(|_| Atom {
            x: next() * span,
            y: next() * span,
            z: next() * span,
            q: next() - 0.5,
        })
        .collect()
}

/// CPU reference: potential at each point of an `nx × ny` lattice slice at
/// height `z`, spacing `h` Å.
pub fn reference_slice(atoms: &[Atom], nx: usize, ny: usize, z: f32, h: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; nx * ny];
    for gy in 0..ny {
        for gx in 0..nx {
            let px = gx as f32 * h;
            let py = gy as f32 * h;
            let mut pot = 0.0f32;
            for a in atoms {
                let dx = a.x - px;
                let dy = a.y - py;
                let dz = a.z - z;
                let r2 = dx * dx + dy * dy + dz * dz;
                pot += a.q / r2.sqrt().max(1e-6);
            }
            out[gy * nx + gx] = pot;
        }
    }
    out
}

fn kernel_desc(cfg: &DeviceConfig, atoms: u64) -> KernelDesc {
    // ~5 SP-pipe flops per atom per lattice point: 3 subs + 2 FMAs, with
    // the rsqrt retiring on the SFU pipe in parallel (VMD DCS inner loop).
    let cost = CostSpec::new(atoms as f64 * 5.0, 16.0);
    KernelDesc::new("dcs-slice", PAPER_GRID, PAPER_TPB)
        .regs(28)
        .with_cost(cfg, &cost)
}

/// The paper-sized, timing-only task: one DCS kernel per slice iteration,
/// atom upload once, potential map retrieved at the end.
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    scaled_task(cfg, PAPER_ATOMS, PAPER_ITERATIONS)
}

/// A timing-only task over `atoms` atoms and `slices` lattice slices.
pub fn scaled_task(cfg: &DeviceConfig, atoms: u64, slices: u32) -> GpuTask {
    let lattice_points = PAPER_GRID * PAPER_TPB as u64; // one point per thread
    let atom_bytes = atoms * 16;
    let map_bytes = lattice_points * 4 * slices as u64;
    GpuTask {
        name: "Electrostatics".into(),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: atom_bytes + map_bytes,
        iterations: 1,
        bytes_in: atom_bytes,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: map_bytes,
        d2h_offset: atom_bytes,
        kernels: vec![KernelTemplate::timing(kernel_desc(cfg, atoms)); slices as usize],
    }
}

/// Functional task: `slices` slices of an `nx × ny` lattice over explicit
/// atoms (layout `[atoms | map]`).
pub fn functional_task(
    cfg: &DeviceConfig,
    atoms: Vec<Atom>,
    nx: usize,
    ny: usize,
    slices: u32,
    h: f32,
) -> GpuTask {
    let atom_bytes = (atoms.len() * 16) as u64;
    let slice_bytes = (nx * ny * 4) as u64;
    let mut input = Vec::with_capacity(atom_bytes as usize);
    for a in &atoms {
        for v in [a.x, a.y, a.z, a.q] {
            input.extend(v.to_le_bytes());
        }
    }
    let atoms = Arc::new(atoms);
    let mut kernels = Vec::with_capacity(slices as usize);
    for s in 0..slices {
        let atoms = Arc::clone(&atoms);
        let desc = kernel_desc(cfg, atoms.len() as u64);
        let factory: BodyFactory = Arc::new(move |base: DevicePtr| {
            let atoms = Arc::clone(&atoms);
            Arc::new(move |mem: &mut DeviceMemory| {
                let z = s as f32 * h;
                let slice = reference_slice(&atoms, nx, ny, z, h);
                let off = atom_bytes + s as u64 * slice_bytes;
                mem.write_f32(base.add(off), &slice)
                    .expect("dcs: write slice");
            }) as KernelBody
        });
        kernels.push(KernelTemplate::functional(desc, factory));
    }
    GpuTask {
        name: "Electrostatics(func)".into(),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: atom_bytes + slice_bytes * slices as u64,
        iterations: 1,
        bytes_in: atom_bytes,
        round_bytes_in: Vec::new(),
        input: Some(Arc::new(input)),
        bytes_out: slice_bytes * slices as u64,
        d2h_offset: atom_bytes,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_positive_charge_gives_coulomb_falloff() {
        let atoms = vec![Atom {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            q: 1.0,
        }];
        let slice = reference_slice(&atoms, 3, 1, 0.0, 1.0);
        // Potential at distance 1 and 2 Å: 1.0 and 0.5.
        assert!((slice[1] - 1.0).abs() < 1e-6);
        assert!((slice[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn superposition_holds() {
        let a1 = vec![Atom {
            x: 1.0,
            y: 2.0,
            z: 0.5,
            q: 0.7,
        }];
        let a2 = vec![Atom {
            x: 3.0,
            y: 0.0,
            z: 1.5,
            q: -0.3,
        }];
        let both = vec![a1[0], a2[0]];
        let s1 = reference_slice(&a1, 4, 4, 0.0, 1.0);
        let s2 = reference_slice(&a2, 4, 4, 0.0, 1.0);
        let s12 = reference_slice(&both, 4, 4, 0.0, 1.0);
        for i in 0..16 {
            assert!((s12[i] - (s1[i] + s2[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_task_saturates_gpu_and_is_compute_bound() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        assert_eq!(t.kernels.len(), 25);
        assert_eq!(t.kernels[0].desc.grid_blocks, 288);
        let comp: f64 = t
            .kernels
            .iter()
            .map(|k| gv_gpu::estimate_kernel_time(&cfg, &k.desc).as_millis_f64())
            .sum();
        let io = cfg.copy_time(t.bytes_in, true, false).as_millis_f64()
            + cfg.copy_time(t.bytes_out, false, false).as_millis_f64();
        assert!(comp > 20.0 * io, "comp {comp} ms vs io {io} ms");
        // 288 blocks exceed full residency (14 SMs × 8 blocks = 112).
        assert!(t.kernels[0].desc.grid_blocks > 112);
    }

    #[test]
    fn functional_slices_match_reference() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let atoms = generate_atoms(50, 8.0, 3);
        let task = functional_task(&cfg, atoms.clone(), 4, 4, 2, 2.0);
        let mut mem = DeviceMemory::new(1 << 20);
        let base = mem.alloc(task.device_bytes).unwrap();
        mem.write_bytes(base, task.input.as_ref().unwrap()).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let got = mem.read_f32(base.add(task.d2h_offset), 32).unwrap();
        let want0 = reference_slice(&atoms, 4, 4, 0.0, 2.0);
        let want1 = reference_slice(&atoms, 4, 4, 2.0, 2.0);
        assert_eq!(&got[..16], &want0[..]);
        assert_eq!(&got[16..], &want1[..]);
    }

    #[test]
    fn atoms_are_deterministic_in_seed() {
        assert_eq!(generate_atoms(10, 5.0, 9), generate_atoms(10, 5.0, 9));
        assert_ne!(generate_atoms(10, 5.0, 9), generate_atoms(10, 5.0, 10));
    }
}

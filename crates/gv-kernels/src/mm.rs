//! MM — dense single-precision matrix multiplication (2048×2048 in the
//! paper, Table IV; grid 4096, classified "Intermediate").
//!
//! A tiled SGEMM: 16×16 thread blocks, each computing a 32×32 output tile
//! (4 elements per thread), shared-memory staging of operand tiles. The
//! full grid saturates the GPU, so MM gains from I/O↔compute overlap under
//! virtualization but not from concurrent kernels (paper §VI).

use std::sync::Arc;

use gv_gpu::{CostSpec, DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper matrix dimension.
pub const PAPER_N: u64 = 2048;
/// Paper grid size (Table IV).
pub const PAPER_GRID: u64 = 4096;
/// Threads per block (16×16 tiles).
pub const PAPER_TPB: u32 = 256;
/// Context-switch cost for MM tasks. Not in Table II; switch cost varies
/// per application (148–220 ms measured there) and MM's context footprint
/// is the smallest of the five apps, so we place it at the low end.
pub const CTX_SWITCH_MS: f64 = 110.0;

/// Per-thread cost of the tiled kernel for dimension `n`: each thread
/// produces `elems` outputs, each a length-`n` dot product (2n flops),
/// with shared-memory tiling cutting DRAM traffic to ~2·4·n/16 bytes per
/// output. The 2.0 scale folds in smem-pipeline and sync stalls relative
/// to the pure roofline (~260 GFLOP/s effective, typical of a clean but
/// not hand-tuned Fermi SGEMM).
fn cost_for(n: u64, grid: u64) -> CostSpec {
    let threads = grid * PAPER_TPB as u64;
    let elems = (n * n) as f64 / threads as f64;
    let flops = elems * 2.0 * n as f64;
    let dram = elems * 2.0 * 4.0 * n as f64 / 16.0;
    CostSpec::new(flops, dram).scaled(2.0)
}

/// The paper-sized, timing-only task.
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    scaled_task(cfg, PAPER_N)
}

/// A timing-only task for an `n × n` multiply (grid scales with n²).
pub fn scaled_task(cfg: &DeviceConfig, n: u64) -> GpuTask {
    let grid = (n * n / 1024).max(1); // 32×32 outputs per block
    let bytes = 4 * n * n;
    let desc = KernelDesc::new("mm", grid, PAPER_TPB)
        .regs(28)
        .smem(2 * 16 * 16 * 4)
        .with_cost(cfg, &cost_for(n, grid));
    GpuTask {
        name: "MM".into(),
        class: WorkloadClass::Intermediate,
        ctx_switch_cost: SimDuration::from_millis_f64(CTX_SWITCH_MS),
        device_bytes: 3 * bytes,
        iterations: 1,
        bytes_in: 2 * bytes,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: bytes,
        d2h_offset: 2 * bytes,
        kernels: vec![KernelTemplate::timing(desc)],
    }
}

/// CPU reference: row-major `c = a · b`.
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Functional task: multiplies the given `n × n` matrices on the device
/// (layout `[a | b | c]`, row-major f32).
pub fn functional_task(cfg: &DeviceConfig, a: &[f32], b: &[f32], n: usize) -> GpuTask {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut task = scaled_task(cfg, n as u64);
    let mut input = Vec::with_capacity(8 * n * n);
    input.extend(a.iter().flat_map(|v| v.to_le_bytes()));
    input.extend(b.iter().flat_map(|v| v.to_le_bytes()));
    task.input = Some(Arc::new(input));
    let bytes = (4 * n * n) as u64;
    let factory: BodyFactory = Arc::new(move |base: DevicePtr| {
        Arc::new(move |mem: &mut DeviceMemory| {
            let a = mem.read_f32(base, n * n).expect("mm: read a");
            let b = mem.read_f32(base.add(bytes), n * n).expect("mm: read b");
            // The device kernel computes tiles in block order; the result
            // is element-wise identical to the naive order because each
            // output accumulates over k in ascending order either way.
            let c = reference(&a, &b, n);
            mem.write_f32(base.add(2 * bytes), &c).expect("mm: write c");
        }) as KernelBody
    });
    task.kernels = vec![KernelTemplate::functional(
        task.kernels[0].desc.clone(),
        factory,
    )];
    task
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::{estimate_kernel_time, occupancy};

    #[test]
    fn paper_geometry_matches_table4() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        assert_eq!(t.kernels[0].desc.grid_blocks, PAPER_GRID);
        assert_eq!(t.bytes_in, 2 * 4 * 2048 * 2048);
        assert_eq!(t.bytes_out, 4 * 2048 * 2048);
    }

    #[test]
    fn kernel_time_is_intermediate_class() {
        // Compute time should be the same order as I/O time (tens of ms).
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        let comp = estimate_kernel_time(&cfg, &t.kernels[0].desc).as_millis_f64();
        let io = cfg.copy_time(t.bytes_in, true, false).as_millis_f64()
            + cfg.copy_time(t.bytes_out, false, false).as_millis_f64();
        let ratio = comp / io;
        assert!(
            (0.3..4.0).contains(&ratio),
            "MM comp/io ratio {ratio} (comp {comp} ms, io {io} ms) not intermediate"
        );
    }

    #[test]
    fn full_grid_saturates_gpu() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        // 4096 blocks across 14 SMs: many waves; occupancy decent.
        assert!(occupancy(&cfg, &t.kernels[0].desc) >= 0.5);
        assert!(t.kernels[0].desc.grid_blocks > 14 * 8);
    }

    #[test]
    fn reference_identity() {
        let n = 4;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(reference(&eye, &b, n), b);
    }

    #[test]
    fn functional_body_matches_reference() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let n = 8;
        let a: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let task = functional_task(&cfg, &a, &b, n);
        let mut mem = DeviceMemory::new(1 << 20);
        let base = mem.alloc(task.device_bytes).unwrap();
        mem.write_bytes(base, task.input.as_ref().unwrap()).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let got = mem.read_f32(base.add(task.d2h_offset), n * n).unwrap();
        assert_eq!(got, reference(&a, &b, n));
    }
}

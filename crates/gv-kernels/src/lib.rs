//! # gv-kernels — the paper's benchmark workloads
//!
//! All seven benchmarks the paper evaluates (Table II microbenchmarks +
//! Table IV applications), each with:
//!
//! * the paper's exact problem size and grid geometry;
//! * an analytic or Table II-calibrated timing profile;
//! * a CPU reference implementation;
//! * a *functional* device body (for reduced sizes) whose results are
//!   bit-checked against the reference in tests and integration tests.
//!
//! [`task::GpuTask`] is the declarative unit executors run: H2D → kernels →
//! D2H cycles, one per SPMD process. [`registry::Benchmark`] is the
//! catalogue.
//!
//! ```
//! use gv_gpu::DeviceConfig;
//! use gv_kernels::{Benchmark, BenchmarkId};
//!
//! let cfg = DeviceConfig::tesla_c2070_paper();
//! let task = Benchmark::paper_task(BenchmarkId::VecAdd, &cfg);
//! assert_eq!(task.kernels[0].desc.grid_blocks, 50_000); // Table II
//! assert_eq!(task.bytes_in, 400_000_000);               // two 200 MB operands
//! ```

#![warn(missing_docs)]

pub mod blackscholes;
pub mod cg;
pub mod electrostatics;
pub mod ep;
pub mod mg;
pub mod mm;
pub mod npb_rng;
pub mod registry;
pub mod task;
pub mod vecadd;

pub use registry::{Benchmark, BenchmarkId};
pub use task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

//! NPB EP (Embarrassingly Parallel) — the paper's compute-intensive
//! microbenchmark.
//!
//! EP generates 2^M pairs of NPB-LCG uniforms, maps them to Gaussian
//! deviates with the Marsaglia polar method, and tallies the deviates into
//! ten annular bins. The paper runs Class B (M = 30) with a deliberately
//! tiny grid of **4 blocks** "merely to show the effectiveness of
//! concurrency under virtualization": 4 blocks occupy 4 of the 14 SMs, so
//! up to three such kernels execute fully concurrently.
//!
//! Paper profile (Table II): `Tinit` 1513.555 ms, `Tdata_in` 0,
//! `Tcomp` 8951.346 ms, `Tdata_out` ≈ 0, `Tctx_switch` 220.599 ms.

use std::sync::Arc;

use gv_gpu::{DeviceConfig, DeviceMemory, DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

use crate::npb_rng::NpbRng;
use crate::task::{BodyFactory, GpuTask, KernelTemplate, WorkloadClass};

/// Paper class: B → M = 30.
pub const PAPER_M: u32 = 30;
/// Paper grid size (Table II).
pub const PAPER_GRID: u64 = 4;
/// Threads per block in the GPU port.
pub const PAPER_TPB: u32 = 128;
/// Paper-measured kernel time, ms (Table II `Tcomp`).
pub const PAPER_KERNEL_MS: f64 = 8951.346;
/// Paper-measured per-task context-switch cost, ms (Table II).
pub const PAPER_CTX_SWITCH_MS: f64 = 220.599;
/// Bytes of result the task retrieves: sx, sy (f64) + 10 bin counts (u64).
pub const RESULT_BYTES: u64 = 96;

/// EP tallies: Gaussian sums and annulus bin counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of accepted Gaussian x deviates.
    pub sx: f64,
    /// Sum of accepted Gaussian y deviates.
    pub sy: f64,
    /// Counts per annulus `l = ⌊max(|x|,|y|)⌋`, l in 0..10.
    pub q: [u64; 10],
}

impl EpResult {
    /// Total accepted pairs.
    pub fn accepted(&self) -> u64 {
        self.q.iter().sum()
    }

    /// Serialize to the task's device/result layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RESULT_BYTES as usize);
        out.extend(self.sx.to_le_bytes());
        out.extend(self.sy.to_le_bytes());
        for c in self.q {
            out.extend(c.to_le_bytes());
        }
        out
    }

    /// Parse from the task's result layout.
    pub fn from_bytes(b: &[u8]) -> EpResult {
        assert!(b.len() >= RESULT_BYTES as usize);
        let f = |i: usize| f64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let u = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let mut q = [0u64; 10];
        for (l, slot) in q.iter_mut().enumerate() {
            *slot = u(16 + 8 * l);
        }
        EpResult {
            sx: f(0),
            sy: f(8),
            q,
        }
    }
}

/// Run EP over samples `[first, first+count)` of the canonical sequence.
/// Each sample consumes exactly two LCG draws (jump-ahead keeps GPU block
/// partitions identical to the sequential reference).
pub fn run_range(first: u64, count: u64) -> EpResult {
    let mut rng = NpbRng::ep_default().jumped(first * 2);
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut q = [0u64; 10];
    for _ in 0..count {
        let x1 = 2.0 * rng.next_f64() - 1.0;
        let x2 = 2.0 * rng.next_f64() - 1.0;
        let t = x1 * x1 + x2 * x2;
        if t <= 1.0 {
            let factor = (-2.0 * t.ln() / t).sqrt();
            let g1 = x1 * factor;
            let g2 = x2 * factor;
            let l = g1.abs().max(g2.abs()) as usize;
            if l < 10 {
                q[l] += 1;
                sx += g1;
                sy += g2;
            }
        }
    }
    EpResult { sx, sy, q }
}

/// Sequential CPU reference over all 2^m samples.
pub fn reference(m: u32) -> EpResult {
    run_range(0, 1u64 << m)
}

/// Merge per-partition tallies (order-sensitive float sums are added in
/// partition order, mirroring the GPU reduction).
pub fn merge(parts: &[EpResult]) -> EpResult {
    let mut acc = EpResult {
        sx: 0.0,
        sy: 0.0,
        q: [0; 10],
    };
    for p in parts {
        acc.sx += p.sx;
        acc.sy += p.sy;
        for l in 0..10 {
            acc.q[l] += p.q[l];
        }
    }
    acc
}

/// The paper-sized, timing-only task (Class B, grid 4).
pub fn paper_task(cfg: &DeviceConfig) -> GpuTask {
    timing_task(cfg, PAPER_KERNEL_MS)
}

/// A timing-only EP task with an explicit kernel-time target (ms).
pub fn timing_task(cfg: &DeviceConfig, kernel_ms: f64) -> GpuTask {
    let desc = KernelDesc::new("ep", PAPER_GRID, PAPER_TPB)
        .regs(24)
        .with_target_time(cfg, SimDuration::from_millis_f64(kernel_ms));
    GpuTask {
        name: "EP".into(),
        class: WorkloadClass::ComputeIntensive,
        ctx_switch_cost: SimDuration::from_millis_f64(PAPER_CTX_SWITCH_MS),
        device_bytes: RESULT_BYTES * PAPER_GRID,
        iterations: 1,
        bytes_in: 0,
        round_bytes_in: Vec::new(),
        input: None,
        bytes_out: RESULT_BYTES,
        d2h_offset: 0,
        kernels: vec![KernelTemplate::timing(desc)],
    }
}

/// A functional EP task over 2^m samples: the device body partitions the
/// sample range over the grid exactly like the GPU port (block b handles
/// a contiguous chunk via LCG jump-ahead) and writes merged tallies at
/// device offset 0.
pub fn functional_task(cfg: &DeviceConfig, m: u32) -> GpuTask {
    let mut task = timing_task(
        cfg,
        PAPER_KERNEL_MS * (1u64 << m) as f64 / (1u64 << PAPER_M) as f64,
    );
    task.name = format!("EP(m={m})");
    let n = 1u64 << m;
    let grid = PAPER_GRID;
    let factory: BodyFactory = Arc::new(move |base: DevicePtr| {
        Arc::new(move |mem: &mut DeviceMemory| {
            let per_block = n / grid;
            let parts: Vec<EpResult> = (0..grid)
                .map(|b| {
                    let first = b * per_block;
                    let count = if b == grid - 1 { n - first } else { per_block };
                    run_range(first, count)
                })
                .collect();
            let merged = merge(&parts);
            mem.write_bytes(base, &merged.to_bytes())
                .expect("ep: write result");
        }) as KernelBody
    });
    task.kernels = vec![KernelTemplate::functional(
        task.kernels[0].desc.clone(),
        factory,
    )];
    task
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_gpu::estimate_kernel_time;

    #[test]
    fn acceptance_rate_near_pi_over_4() {
        // Marsaglia polar accepts with probability π/4 ≈ 0.785.
        let r = reference(16);
        let rate = r.accepted() as f64 / (1u64 << 16) as f64;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "rate = {rate}"
        );
    }

    #[test]
    fn gaussian_moments_plausible() {
        let r = reference(16);
        let n = r.accepted() as f64;
        // Mean of a standard Gaussian ≈ 0 (±5σ/√n).
        assert!((r.sx / n).abs() < 5.0 / n.sqrt(), "sx/n = {}", r.sx / n);
        assert!((r.sy / n).abs() < 5.0 / n.sqrt());
        // Nearly all mass below |g| < 4.
        assert_eq!(r.q[6..].iter().sum::<u64>(), 0);
        assert!(r.q[0] > r.q[1] && r.q[1] > r.q[2]);
    }

    #[test]
    fn partitioned_equals_sequential() {
        let n = 1u64 << 14;
        let parts: Vec<EpResult> = (0..4).map(|b| run_range(b * n / 4, n / 4)).collect();
        let merged = merge(&parts);
        let seq = reference(14);
        assert_eq!(merged.q, seq.q);
        assert!((merged.sx - seq.sx).abs() < 1e-9);
        assert!((merged.sy - seq.sy).abs() < 1e-9);
    }

    #[test]
    fn result_bytes_roundtrip() {
        let r = reference(12);
        assert_eq!(EpResult::from_bytes(&r.to_bytes()), r);
    }

    #[test]
    fn paper_task_calibrated_to_table2() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = paper_task(&cfg);
        let est = estimate_kernel_time(&cfg, &t.kernels[0].desc);
        let err = (est.as_millis_f64() - PAPER_KERNEL_MS).abs() / PAPER_KERNEL_MS;
        assert!(err < 1e-6, "EP kernel {est} vs {PAPER_KERNEL_MS} ms");
        assert_eq!(t.bytes_in, 0);
        assert_eq!(t.kernels[0].desc.grid_blocks, 4);
    }

    #[test]
    fn functional_body_matches_reference() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let task = functional_task(&cfg, 12);
        let mut mem = DeviceMemory::new(1 << 16);
        let base = mem.alloc(task.device_bytes).unwrap();
        for k in task.bind_kernels(base) {
            (k.body.unwrap())(&mut mem);
        }
        let mut out = vec![0u8; RESULT_BYTES as usize];
        mem.read_bytes(base, &mut out).unwrap();
        let got = EpResult::from_bytes(&out);
        let want = reference(12);
        assert_eq!(got.q, want.q);
        assert!((got.sx - want.sx).abs() < 1e-9);
    }
}

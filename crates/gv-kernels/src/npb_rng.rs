//! The NAS Parallel Benchmarks linear congruential generator.
//!
//! NPB's `randlc`: x_{k+1} = a·x_k mod 2^46 with a = 5^13, returning
//! uniform doubles x·2^-46 in (0, 1). The generator is exactly
//! reproducible and supports O(log n) jump-ahead (`a^n mod 2^46`), which is
//! how both the CPU reference and the simulated GPU blocks of EP carve the
//! sequence into independent chunks — each GPU block starts at seed
//! `a^(first_sample·2) · s mod 2^46`, exactly like the real GPU port.

/// Modulus 2^46.
const M46: u64 = 1 << 46;
const MASK46: u64 = M46 - 1;

/// The NPB multiplier a = 5^13.
pub const NPB_A: u64 = 1_220_703_125;

/// The NPB EP seed s = 271828183.
pub const NPB_SEED: u64 = 271_828_183;

/// 2^-46 as f64.
const R46: f64 = 1.0 / M46 as f64;

/// Multiply mod 2^46.
#[inline]
fn mulmod46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK46 as u128) as u64
}

/// a^n mod 2^46 by binary exponentiation.
pub fn pow_mod46(mut a: u64, mut n: u64) -> u64 {
    let mut acc: u64 = 1;
    a &= MASK46;
    while n > 0 {
        if n & 1 == 1 {
            acc = mulmod46(acc, a);
        }
        a = mulmod46(a, a);
        n >>= 1;
    }
    acc
}

/// The NPB LCG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpbRng {
    x: u64,
}

impl NpbRng {
    /// Start from `seed` (NPB uses 271828183 for EP).
    pub fn new(seed: u64) -> Self {
        NpbRng { x: seed & MASK46 }
    }

    /// The canonical EP generator.
    pub fn ep_default() -> Self {
        Self::new(NPB_SEED)
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// `randlc`: advance once, returning a uniform double in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        self.x = mulmod46(self.x, NPB_A);
        self.x as f64 * R46
    }

    /// Jump the state forward by `n` steps in O(log n).
    pub fn skip(&mut self, n: u64) {
        let an = pow_mod46(NPB_A, n);
        self.x = mulmod46(self.x, an);
    }

    /// A generator positioned `n` steps after this one.
    pub fn jumped(&self, n: u64) -> NpbRng {
        let mut c = *self;
        c.skip(n);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_values_are_in_unit_interval_and_deterministic() {
        let mut a = NpbRng::ep_default();
        let mut b = NpbRng::ep_default();
        for _ in 0..1000 {
            let va = a.next_f64();
            let vb = b.next_f64();
            assert_eq!(va, vb);
            assert!(va > 0.0 && va < 1.0);
        }
    }

    #[test]
    fn skip_equals_sequential_advance() {
        let mut seq = NpbRng::ep_default();
        for _ in 0..12_345 {
            seq.next_f64();
        }
        let jumped = NpbRng::ep_default().jumped(12_345);
        assert_eq!(seq.state(), jumped.state());
    }

    #[test]
    fn pow_identity_cases() {
        assert_eq!(pow_mod46(NPB_A, 0), 1);
        assert_eq!(pow_mod46(NPB_A, 1), NPB_A);
        // a^2 = a·a.
        assert_eq!(pow_mod46(NPB_A, 2), mulmod46(NPB_A, NPB_A));
    }

    #[test]
    fn partitioned_streams_tile_the_sequence() {
        // 4 chunks of 100 draws each must equal 400 sequential draws.
        let mut seq = NpbRng::ep_default();
        let sequential: Vec<f64> = (0..400).map(|_| seq.next_f64()).collect();
        let mut tiled = Vec::new();
        for chunk in 0..4u64 {
            let mut rng = NpbRng::ep_default().jumped(chunk * 100);
            for _ in 0..100 {
                tiled.push(rng.next_f64());
            }
        }
        assert_eq!(sequential, tiled);
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = NpbRng::ep_default();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }
}

//! The process-level GPU task abstraction.
//!
//! A [`GpuTask`] is what one SPMD process asks the GPU to do: a number of
//! *iterations*, each consisting of an H2D transfer, a sequence of kernel
//! launches, and a D2H transfer (the paper's Fig. 3 execution cycle; most
//! benchmarks have one iteration, BlackScholes re-stages data every
//! iteration, which is what makes it I/O-intensive).
//!
//! Tasks are declarative: executors (the conventional direct-sharing client
//! and the GVM) allocate one device region of [`GpuTask::device_bytes`] and
//! bind kernels to it via [`GpuTask::bind_kernels`]. Functional tasks carry
//! real input bytes and body factories so results can be verified end to
//! end; timing-only tasks carry just sizes.

use std::sync::Arc;

use gv_gpu::{DevicePtr, KernelBody, KernelDesc};
use gv_sim::SimDuration;

/// The paper's benchmark classification (Table IV "Class").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Turnaround dominated by host↔device I/O.
    IoIntensive,
    /// Turnaround dominated by kernel execution.
    ComputeIntensive,
    /// Comparable I/O and compute.
    Intermediate,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::IoIntensive => write!(f, "I/O-intensive"),
            WorkloadClass::ComputeIntensive => write!(f, "Comp-intensive"),
            WorkloadClass::Intermediate => write!(f, "Intermediate"),
        }
    }
}

/// Builds a kernel body once the executor knows the device base pointer.
pub type BodyFactory = Arc<dyn Fn(DevicePtr) -> KernelBody + Send + Sync>;

/// One kernel launch within a task: geometry/cost plus an optional
/// functional body factory.
#[derive(Clone)]
pub struct KernelTemplate {
    /// Geometry and timing (body left `None`; bound at execution).
    pub desc: KernelDesc,
    /// Optional functional body, parameterized by the task's device region.
    pub body_factory: Option<BodyFactory>,
}

impl KernelTemplate {
    /// A timing-only template.
    pub fn timing(desc: KernelDesc) -> Self {
        KernelTemplate {
            desc,
            body_factory: None,
        }
    }

    /// A functional template.
    pub fn functional(desc: KernelDesc, factory: BodyFactory) -> Self {
        KernelTemplate {
            desc,
            body_factory: Some(factory),
        }
    }
}

impl std::fmt::Debug for KernelTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelTemplate")
            .field("desc", &self.desc)
            .field("functional", &self.body_factory.is_some())
            .finish()
    }
}

/// A complete process-level GPU task.
#[derive(Clone)]
pub struct GpuTask {
    /// Benchmark name.
    pub name: String,
    /// I/O vs compute classification.
    pub class: WorkloadClass,
    /// Per-benchmark context-switch cost (paper Table II measurement,
    /// charged by the device when the conventional scheme switches to this
    /// task's context).
    pub ctx_switch_cost: SimDuration,
    /// Device memory this task allocates.
    pub device_bytes: u64,
    /// Number of (H2D → kernels → D2H) cycles.
    pub iterations: u32,
    /// Input bytes staged per iteration.
    pub bytes_in: u64,
    /// Per-*round* input shape for multi-round sessions: round `j` stages
    /// `round_bytes_in[j]` bytes per iteration instead of [`bytes_in`]
    /// (rounds past the end fall back to `bytes_in`). Empty — the common
    /// case — means every round stages `bytes_in`. Shaped sessions must
    /// be timing-only: a functional task's verified input is a single
    /// fixed byte string.
    ///
    /// [`bytes_in`]: Self::bytes_in
    pub round_bytes_in: Vec<u64>,
    /// Functional input (written at device offset 0), timing-only if `None`.
    pub input: Option<Arc<Vec<u8>>>,
    /// Output bytes retrieved per iteration.
    pub bytes_out: u64,
    /// Offset of the output region within the device allocation.
    pub d2h_offset: u64,
    /// Kernels launched per iteration, in order.
    pub kernels: Vec<KernelTemplate>,
}

impl GpuTask {
    /// Bind this task's kernels to a concrete device region.
    pub fn bind_kernels(&self, base: DevicePtr) -> Vec<KernelDesc> {
        self.kernels
            .iter()
            .map(|t| {
                let mut desc = t.desc.clone();
                if let Some(factory) = &t.body_factory {
                    desc.body = Some(factory(base));
                }
                desc
            })
            .collect()
    }

    /// Total bytes staged to the device over all iterations.
    pub fn total_bytes_in(&self) -> u64 {
        self.bytes_in * self.iterations as u64
    }

    /// Input bytes round `round` stages per iteration: the shaped
    /// per-round size when one was declared, else [`bytes_in`]
    /// (`Self::bytes_in`).
    pub fn bytes_in_for_round(&self, round: u32) -> u64 {
        self.round_bytes_in
            .get(round as usize)
            .copied()
            .unwrap_or(self.bytes_in)
    }

    /// Largest per-iteration input any round stages — what boot-time
    /// sizing (shm segments, zero-copy leases) must provision for.
    pub fn max_bytes_in(&self) -> u64 {
        self.round_bytes_in
            .iter()
            .copied()
            .fold(self.bytes_in, u64::max)
    }

    /// `self` with a per-round input shape (see
    /// [`round_bytes_in`](Self::round_bytes_in)). Panics on functional
    /// tasks — their verified input is a single fixed byte string.
    pub fn with_round_shape(mut self, rounds: Vec<u64>) -> Self {
        assert!(
            !self.is_functional() || rounds.is_empty(),
            "per-round input shapes require a timing-only task"
        );
        self.round_bytes_in = rounds;
        self
    }

    /// Total bytes retrieved over all iterations.
    pub fn total_bytes_out(&self) -> u64 {
        self.bytes_out * self.iterations as u64
    }

    /// Total kernel launches over all iterations.
    pub fn total_launches(&self) -> usize {
        self.kernels.len() * self.iterations as usize
    }

    /// Is this task functional (carries real data)?
    pub fn is_functional(&self) -> bool {
        self.input.is_some() || self.kernels.iter().any(|k| k.body_factory.is_some())
    }
}

impl std::fmt::Debug for GpuTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuTask")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("iterations", &self.iterations)
            .field("bytes_in", &self.bytes_in)
            .field("bytes_out", &self.bytes_out)
            .field("kernels", &self.kernels.len())
            .field("functional", &self.is_functional())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_task() -> GpuTask {
        GpuTask {
            name: "t".into(),
            class: WorkloadClass::Intermediate,
            ctx_switch_cost: SimDuration::from_millis(1),
            device_bytes: 1024,
            iterations: 3,
            bytes_in: 100,
            round_bytes_in: Vec::new(),
            input: None,
            bytes_out: 50,
            d2h_offset: 512,
            kernels: vec![KernelTemplate::timing(KernelDesc::new("k", 4, 64))],
        }
    }

    #[test]
    fn totals_scale_with_iterations() {
        let t = dummy_task();
        assert_eq!(t.total_bytes_in(), 300);
        assert_eq!(t.total_bytes_out(), 150);
        assert_eq!(t.total_launches(), 3);
        assert!(!t.is_functional());
    }

    #[test]
    fn bind_attaches_bodies() {
        let mut t = dummy_task();
        t.kernels = vec![KernelTemplate::functional(
            KernelDesc::new("k", 1, 32),
            Arc::new(|base: DevicePtr| {
                Arc::new(move |mem: &mut gv_gpu::DeviceMemory| {
                    mem.write_f32(base, &[42.0]).unwrap();
                }) as KernelBody
            }),
        )];
        assert!(t.is_functional());
        let mut mem = gv_gpu::DeviceMemory::new(4096);
        let base = mem.alloc(1024).unwrap();
        let bound = t.bind_kernels(base);
        assert_eq!(bound.len(), 1);
        (bound[0].body.as_ref().unwrap())(&mut mem);
        assert_eq!(mem.read_f32(base, 1).unwrap(), vec![42.0]);
    }
}

//! Chunked copy/compute pipelining sweep — the `repro_pipeline` binary.
//!
//! Compares the serial-staging GVM (chunking off, the seed behavior) with
//! the chunked+pooled pipeline over chunk count × payload size × group
//! size, all on an I/O-bound VectorAdd-shaped timing-only workload. The
//! headline configuration is the ISSUE's acceptance point: 8 processes
//! staging ≥ 16 MiB each, where interleaving shm→pinned staging with the
//! pre-issued H2D chunks keeps the copy engine busy while the GVM is still
//! staging the next rank.
//!
//! With `analyze` on, every point also records its trace and is gated on
//! the `gv-analyze` checkers — including the `staging` checker, which
//! proves each chunked transfer tiles its payload exactly and that no
//! pooled buffer is recycled while a chunk copy is still in flight.

use gv_kernels::{vecadd, GpuTask};
use gv_sim::SimDuration;
use gv_virt::sched::estimate_cost_ms;
use gv_virt::{MemConfig, SchedPolicy};

use crate::report::{ms, pct, TextTable};
use crate::repro::Artifact;
use crate::scenario::{ExecutionMode, Scenario};

/// Chunk counts swept; 1 is the serial-staging baseline.
pub const CHUNKS: [usize; 4] = [1, 2, 4, 8];

/// Group sizes swept.
pub const PROCS: [usize; 3] = [2, 4, 8];

/// Staged input payload sizes (MiB per rank). The ISSUE's headline point
/// is the ≥ 16 MiB row.
pub const PAYLOADS_MIB: [u64; 2] = [16, 64];

/// Chunking threshold used by every swept point: low enough that even
/// `--quick`-scaled payloads split.
pub const THRESHOLD: u64 = 64 << 10;

/// Compute rounds per rank in the steady-state sweep (the ISSUE's
/// acceptance point asks for ≥ 4 iterations).
pub const STEADY_ROUNDS: u32 = 4;

/// Payload sizes (MiB per rank) for the steady-state before/after record.
pub const STEADY_PAYLOADS_MIB: [u64; 3] = [1, 16, 64];

/// One chunk-count × payload × group-size measurement.
pub struct PipelinePoint {
    /// Chunk count (1 = serial staging).
    pub chunks: usize,
    /// Staged input payload per rank, MiB.
    pub payload_mib: f64,
    /// Process count.
    pub nprocs: usize,
    /// Group turnaround (max end − min start) in ms.
    pub group_ms: f64,
    /// Mean per-rank turnaround (own end − own start) in ms.
    pub mean_rank_ms: f64,
    /// GVM staging copy time (`GvmStats::copy_time`) in ms.
    pub copy_ms: f64,
    /// Staging-pool hit rate over the run.
    pub pool_hit_rate: f64,
    /// Transfers the planner actually split.
    pub chunked_transfers: u64,
    /// Total chunk copies submitted.
    pub chunks_submitted: u64,
    /// `gv-analyze` verdict (`None` when analysis is off).
    pub clean: Option<bool>,
}

/// The workload: a VectorAdd-shaped timing-only task staging
/// `payload_bytes` of input per rank (output is half that, as in
/// VectorAdd's 2-in/1-out layout). Timing-only, so paper-sized payloads
/// cost no host RAM.
pub fn payload_task(scenario: &Scenario, payload_bytes: u64) -> GpuTask {
    vecadd::scaled_task(&scenario.device, payload_bytes / 8)
}

/// Run one point. `chunks <= 1` runs the serial-staging baseline.
pub fn run_point(
    base: &Scenario,
    chunks: usize,
    payload_bytes: u64,
    n: usize,
    analyze: bool,
) -> PipelinePoint {
    let mem = if chunks > 1 {
        MemConfig::pipelined(chunks, THRESHOLD)
    } else {
        MemConfig::default()
    };
    let scenario = Scenario {
        analyze,
        ..base.clone()
    }
    .with_mem(mem);
    let task = payload_task(&scenario, payload_bytes);
    let result = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
    let gvm = result.gvm.as_ref().expect("virtualized run has GVM stats");
    PipelinePoint {
        chunks,
        payload_mib: payload_bytes as f64 / (1 << 20) as f64,
        nprocs: n,
        group_ms: result.turnaround_ms,
        mean_rank_ms: result.mean_phase(|r| r.end.duration_since(r.start).as_millis_f64()),
        copy_ms: gvm.copy_time.as_millis_f64(),
        pool_hit_rate: gvm.pool_hit_rate(),
        chunked_transfers: gvm.chunked_transfers,
        chunks_submitted: gvm.chunks_submitted,
        clean: result.analysis.as_ref().map(|r| r.is_clean()),
    }
}

/// The pool-reuse demonstration: 8 ranks × the headline payload arrive
/// far enough apart (FCFS dispatch) that each rank's round completes —
/// recycling its staging leases — before the next rank's `SND`. Every
/// rank after the first is then served from the pool's free lists.
pub fn pool_reuse_point(base: &Scenario, scale_down: u32, analyze: bool) -> PipelinePoint {
    let payload = (16 << 20) / scale_down.max(1) as u64;
    let scenario = Scenario {
        analyze,
        ..base.clone()
    }
    .with_mem(MemConfig::pipelined(4, THRESHOLD))
    .with_scheduler(SchedPolicy::Fcfs);
    let task = payload_task(&scenario, payload);
    // 1.5× the modeled single-rank service time of skew: each round is
    // fully drained (leases recycled at RCV) before the next SND arrives.
    let cost = estimate_cost_ms(&task, &scenario.device, &scenario.node);
    let scenario = scenario.with_stagger(SimDuration::from_millis_f64(cost * 1.5));
    let n = 8;
    let result = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
    let gvm = result.gvm.as_ref().expect("virtualized run has GVM stats");
    PipelinePoint {
        chunks: 4,
        payload_mib: payload as f64 / (1 << 20) as f64,
        nprocs: n,
        group_ms: result.turnaround_ms,
        mean_rank_ms: result.mean_phase(|r| r.end.duration_since(r.start).as_millis_f64()),
        copy_ms: gvm.copy_time.as_millis_f64(),
        pool_hit_rate: gvm.pool_hit_rate(),
        chunked_transfers: gvm.chunked_transfers,
        chunks_submitted: gvm.chunks_submitted,
        clean: result.analysis.as_ref().map(|r| r.is_clean()),
    }
}

/// One steady-state before/after measurement: the same multi-round group
/// run with PR 4-style per-iteration chunking (no overlap across rounds)
/// and with iteration-overlapped adaptive pipelining.
pub struct SteadyPoint {
    /// Staged input payload per rank, MiB.
    pub payload_mib: f64,
    /// Process count.
    pub nprocs: usize,
    /// Compute rounds per rank.
    pub rounds: u32,
    /// Mean per-rank turnaround, fixed chunked pipelining only (ms).
    pub before_ms: f64,
    /// Mean per-rank turnaround, steady overlap + adaptive sizing (ms).
    pub after_ms: f64,
    /// Next-round `SND`s the GVM absorbed during the previous round.
    pub prefetches: u64,
    /// Mean adaptive chunk count over the split transfers (0 if none).
    pub mean_k: f64,
    /// `gv-analyze` verdict over both runs (`None` when analysis is off).
    pub clean: Option<bool>,
}

impl SteadyPoint {
    /// Mean-rank-turnaround improvement over the non-overlapped baseline,
    /// as a fraction.
    pub fn improvement(&self) -> f64 {
        1.0 - self.after_ms / self.before_ms
    }
}

/// Run one steady-state point: `n` ranks × `rounds` rounds at
/// `payload_bytes`, before (first-round-only pipelining: chunked
/// pre-issue on the session's first `SND` only, steady-state rounds
/// staged serially with a monolithic flush-time H2D — the pre-PR schedule
/// the ROADMAP documented) and after (adaptive chunk sizing with the same
/// cap on every round, plus steady-state double-buffered prefetch).
pub fn steady_point(
    base: &Scenario,
    payload_bytes: u64,
    n: usize,
    rounds: u32,
    analyze: bool,
) -> SteadyPoint {
    let run = |mem: MemConfig| {
        let scenario = Scenario {
            analyze,
            ..base.clone()
        }
        .with_mem(mem)
        .with_rounds(rounds);
        let task = payload_task(&scenario, payload_bytes);
        scenario.run_uniform(ExecutionMode::Virtualized, &task, n)
    };
    let before = run(MemConfig::pipelined(4, THRESHOLD).with_first_round_only());
    let after = run(MemConfig::adaptive(4, THRESHOLD).with_steady());
    let gvm = after.gvm.as_ref().expect("virtualized run has GVM stats");
    let clean = match (
        before.analysis.as_ref().map(|r| r.is_clean()),
        after.analysis.as_ref().map(|r| r.is_clean()),
    ) {
        (Some(b), Some(a)) => Some(b && a),
        _ => None,
    };
    SteadyPoint {
        payload_mib: payload_bytes as f64 / (1 << 20) as f64,
        nprocs: n,
        rounds,
        before_ms: before.mean_phase(|r| r.end.duration_since(r.start).as_millis_f64()),
        after_ms: after.mean_phase(|r| r.end.duration_since(r.start).as_millis_f64()),
        prefetches: gvm.steady_prefetches,
        mean_k: if gvm.chunked_transfers > 0 {
            gvm.chunks_submitted as f64 / gvm.chunked_transfers as f64
        } else {
            0.0
        },
        clean,
    }
}

/// The steady-state sweep: 8 ranks × [`STEADY_ROUNDS`] rounds at each
/// [`STEADY_PAYLOADS_MIB`] payload.
pub fn steady_sweep(base: &Scenario, scale_down: u32, analyze: bool) -> Vec<SteadyPoint> {
    STEADY_PAYLOADS_MIB
        .iter()
        .map(|&mib| {
            let payload = (mib << 20) / scale_down.max(1) as u64;
            steady_point(base, payload, 8, STEADY_ROUNDS, analyze)
        })
        .collect()
}

/// Render the machine-readable steady-state record
/// (`BENCH_pipeline_steady.json`): before/after mean rank turnaround per
/// payload size.
pub fn steady_bench_json(points: &[SteadyPoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pipeline_steady\",\n");
    out.push_str(&format!(
        "  \"nprocs\": {},\n  \"rounds\": {},\n  \"points\": [\n",
        points.first().map_or(8, |p| p.nprocs),
        points.first().map_or(STEADY_ROUNDS, |p| p.rounds),
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload_mib\": {:.3}, \"before_mean_rank_ms\": {:.6}, \
             \"after_mean_rank_ms\": {:.6}, \"improvement\": {:.4}, \
             \"steady_prefetches\": {}, \"mean_adaptive_k\": {:.3}}}{}\n",
            p.payload_mib,
            p.before_ms,
            p.after_ms,
            p.improvement(),
            p.prefetches,
            p.mean_k,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The headline comparison: serial vs every chunk count at 8 processes ×
/// 16 MiB (scaled), plus the best improvement fraction over serial.
pub struct Headline {
    /// Points in [`CHUNKS`] order (first is the serial baseline).
    pub points: Vec<PipelinePoint>,
    /// Best mean-rank-turnaround improvement over serial, as a fraction.
    pub best_improvement: f64,
}

/// Run the headline experiment at 8 processes × (16 MiB / `scale_down`).
pub fn headline(base: &Scenario, scale_down: u32, analyze: bool) -> Headline {
    let payload = (16 << 20) / scale_down.max(1) as u64;
    let points: Vec<PipelinePoint> = CHUNKS
        .iter()
        .map(|&k| run_point(base, k, payload, 8, analyze))
        .collect();
    let serial = points[0].mean_rank_ms;
    let best_improvement = points[1..]
        .iter()
        .map(|p| 1.0 - p.mean_rank_ms / serial)
        .fold(f64::MIN, f64::max);
    Headline {
        points,
        best_improvement,
    }
}

/// Render the machine-readable benchmark record (`BENCH_pipeline.json`)
/// from the headline points and the pool-reuse demonstration.
pub fn bench_json(hl: &Headline, reuse: Option<&PipelinePoint>) -> String {
    let mut out = String::from("{\n  \"bench\": \"pipeline\",\n");
    out.push_str(&format!(
        "  \"nprocs\": {},\n  \"payload_mib\": {:.3},\n  \"points\": [\n",
        hl.points[0].nprocs, hl.points[0].payload_mib
    ));
    for (i, p) in hl.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"chunks\": {}, \"mean_rank_turnaround_ms\": {:.6}, \
             \"group_turnaround_ms\": {:.6}, \"copy_time_ms\": {:.6}, \
             \"pool_hit_rate\": {:.4}}}{}\n",
            p.chunks,
            p.mean_rank_ms,
            p.group_ms,
            p.copy_ms,
            p.pool_hit_rate,
            if i + 1 < hl.points.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"best_improvement_over_serial\": {:.4}",
        hl.best_improvement
    ));
    if let Some(r) = reuse {
        out.push_str(&format!(
            ",\n  \"staggered_pool_hit_rate\": {:.4}",
            r.pool_hit_rate
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Run the full matrix plus the headline and the steady-state sweep;
/// returns the artifact, the `BENCH_pipeline.json` record, the
/// `BENCH_pipeline_steady.json` record, and whether every analyzed trace
/// was clean.
pub fn sweep(base: &Scenario, scale_down: u32, analyze: bool) -> (Artifact, String, String, bool) {
    let mut csv = String::from(
        "experiment,chunks,payload_mib,nprocs,group_ms,mean_rank_ms,copy_ms,\
         pool_hit_rate,chunked_transfers,chunks_submitted,analyzed_clean\n",
    );
    let mut clean = true;
    let push = |csv: &mut String, experiment: &str, p: &PipelinePoint| {
        csv.push_str(&format!(
            "{experiment},{},{:.3},{},{:.3},{:.3},{:.3},{:.4},{},{},{}\n",
            p.chunks,
            p.payload_mib,
            p.nprocs,
            p.group_ms,
            p.mean_rank_ms,
            p.copy_ms,
            p.pool_hit_rate,
            p.chunked_transfers,
            p.chunks_submitted,
            p.clean.map(|c| c.to_string()).unwrap_or_default(),
        ));
    };

    let mut text = format!("CHUNKED STAGING PIPELINE SWEEP (scale 1/{scale_down})\n\n");
    for payload_mib in PAYLOADS_MIB {
        let payload = (payload_mib << 20) / scale_down.max(1) as u64;
        for n in PROCS {
            let mut t = TextTable::new(vec![
                "chunks",
                "group (ms)",
                "mean rank (ms)",
                "copy (ms)",
                "pool hits",
                "chunked xfers",
            ]);
            for k in CHUNKS {
                let p = run_point(base, k, payload, n, analyze);
                clean &= p.clean.unwrap_or(true);
                t.row(vec![
                    if p.chunks > 1 {
                        p.chunks.to_string()
                    } else {
                        "serial".to_string()
                    },
                    ms(p.group_ms),
                    ms(p.mean_rank_ms),
                    ms(p.copy_ms),
                    pct(p.pool_hit_rate),
                    p.chunked_transfers.to_string(),
                ]);
                push(&mut csv, "matrix", &p);
            }
            text.push_str(&format!(
                "{payload_mib} MiB payload × {n} processes:\n{}\n",
                t.render()
            ));
        }
    }

    let hl = headline(base, scale_down, analyze);
    let mut t = TextTable::new(vec!["chunks", "mean rank (ms)", "vs serial", "pool hits"]);
    let serial = hl.points[0].mean_rank_ms;
    for p in &hl.points {
        clean &= p.clean.unwrap_or(true);
        t.row(vec![
            if p.chunks > 1 {
                p.chunks.to_string()
            } else {
                "serial".to_string()
            },
            ms(p.mean_rank_ms),
            pct(1.0 - p.mean_rank_ms / serial),
            pct(p.pool_hit_rate),
        ]);
        push(&mut csv, "headline", p);
    }
    text.push_str(&format!(
        "HEADLINE — 8 processes × {:.0} MiB staged input each:\n{}\n\
         Best chunked improvement over serial staging (mean rank turnaround): {:.1}%\n\n",
        hl.points[0].payload_mib,
        t.render(),
        hl.best_improvement * 100.0
    ));

    let reuse = pool_reuse_point(base, scale_down, analyze);
    clean &= reuse.clean.unwrap_or(true);
    push(&mut csv, "staggered-reuse", &reuse);
    text.push_str(&format!(
        "POOL REUSE — 8 staggered FCFS rounds × {:.0} MiB, 4 chunks:\n\
         staging-pool hit rate {} (every rank after the first is served\n\
         from recycled pinned buffers)\n",
        reuse.payload_mib,
        pct(reuse.pool_hit_rate),
    ));

    let steady = steady_sweep(base, scale_down, analyze);
    let mut t = TextTable::new(vec![
        "payload (MiB)",
        "before (ms)",
        "after (ms)",
        "improvement",
        "prefetches",
        "mean k",
    ]);
    for p in &steady {
        clean &= p.clean.unwrap_or(true);
        t.row(vec![
            format!("{:.2}", p.payload_mib),
            ms(p.before_ms),
            ms(p.after_ms),
            pct(p.improvement()),
            p.prefetches.to_string(),
            format!("{:.2}", p.mean_k),
        ]);
        let flag = p.clean.map(|c| c.to_string()).unwrap_or_default();
        csv.push_str(&format!(
            "steady-before,4,{:.3},{},,{:.3},,,,,{flag}\n",
            p.payload_mib, p.nprocs, p.before_ms
        ));
        csv.push_str(&format!(
            "steady-after,4,{:.3},{},,{:.3},,,,,{flag}\n",
            p.payload_mib, p.nprocs, p.after_ms
        ));
    }
    text.push_str(&format!(
        "\nSTEADY STATE — 8 processes × {STEADY_ROUNDS} rounds, \
         iteration-overlapped adaptive pipelining vs per-iteration chunking:\n{}\n",
        t.render()
    ));

    let json = bench_json(&hl, Some(&reuse));
    let steady_json = steady_bench_json(&steady);
    (
        Artifact {
            name: "pipeline",
            text,
            csv,
        },
        json,
        steady_json,
        clean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_beats_serial_at_n8_16mib() {
        // The ISSUE's acceptance point, at full payload (timing-only tasks
        // make 16 MiB free to simulate).
        let hl = headline(&Scenario::default(), 1, false);
        assert!(
            hl.best_improvement > 0.0,
            "chunked+pooled must beat serial staging at 8×16 MiB, got {:.4}",
            hl.best_improvement
        );
    }

    #[test]
    fn staggered_rounds_hit_the_staging_pool() {
        // Lockstep single-round groups can't reuse (every rank acquires
        // before any recycles); staggered FCFS rounds must.
        let p = pool_reuse_point(&Scenario::default(), 16, false);
        assert!(
            p.pool_hit_rate > 0.5,
            "staggered rounds should mostly hit the pool, got {:.3}",
            p.pool_hit_rate
        );
    }

    #[test]
    fn chunked_traces_are_analyze_clean() {
        let p = run_point(&Scenario::default(), 4, 1 << 20, 2, true);
        assert_eq!(p.clean, Some(true));
        assert!(
            p.chunked_transfers > 0,
            "payload above threshold must chunk"
        );
        assert_eq!(p.chunks_submitted, p.chunked_transfers * 4);
    }

    #[test]
    fn steady_overlap_beats_per_iteration_pipelining() {
        // The ISSUE's steady-state acceptance point: 8 processes ×
        // 4 rounds × 16 MiB, ≥ 15% mean-rank-turnaround improvement over
        // PR 4's non-overlapped chunked schedule.
        let p = steady_point(&Scenario::default(), 16 << 20, 8, STEADY_ROUNDS, false);
        assert!(
            p.improvement() >= 0.15,
            "steady overlap must improve ≥ 15% at 8×16 MiB×{} rounds, got {:.4}",
            STEADY_ROUNDS,
            p.improvement()
        );
        assert!(
            p.prefetches > 0,
            "steady runs must absorb next-round SNDs early"
        );
    }

    #[test]
    fn steady_traces_are_analyze_clean() {
        // Smoke-scaled, both runs under the full checker suite (staging
        // tiling under adaptive k included).
        let p = steady_point(&Scenario::default(), 1 << 20, 4, 3, true);
        assert_eq!(p.clean, Some(true));
        assert!(p.prefetches > 0);
    }

    #[test]
    fn steady_bench_json_is_well_formed() {
        let pts = steady_sweep(&Scenario::default(), 256, false);
        let j = steady_bench_json(&pts);
        assert!(j.contains("\"bench\": \"pipeline_steady\""));
        assert_eq!(
            j.matches("\"payload_mib\":").count(),
            STEADY_PAYLOADS_MIB.len()
        );
        assert!(j.contains("\"before_mean_rank_ms\""));
        assert!(j.contains("\"after_mean_rank_ms\""));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let hl = headline(&Scenario::default(), 256, false);
        let j = bench_json(&hl, None);
        assert!(j.contains("\"bench\": \"pipeline\""));
        assert!(j.contains("\"pool_hit_rate\""));
        assert_eq!(j.matches("\"chunks\":").count(), CHUNKS.len());
    }
}

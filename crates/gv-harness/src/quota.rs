//! Device-memory quota and VRAM-oversubscription measurements — the
//! `repro_quota` binary.
//!
//! Each point runs the same staggered FCFS wave of 8 quota'd sessions
//! twice against a deliberately small device: once **hard-fit** (finite
//! quotas, demand-swap off — a session whose working set does not fit in
//! free VRAM is NAKed away) and once **oversubscribed** (demand-swap on —
//! the GVM evicts idle parked working sets to pinned host staging and
//! restores them on the next touch). Sweeping the aggregate demand from
//! 1× to 8× of device capacity shows the trade: hard-fit admission decays
//! toward one session while swap keeps admitting all eight, at the cost
//! of the swap traffic the model's `swap_cost` equation prices.
//!
//! Every rank's working set has a *distinct* byte size, so the
//! device-allocation cache can never serve a later session from an
//! exact-shape parked buffer and mask the hard-fit ceiling.

use std::sync::Arc;

use gv_cuda::CudaDevice;
use gv_gpu::{DeviceConfig, GpuDevice};
use gv_ipc::Node;
use gv_kernels::vecadd;
use gv_sim::{SimDuration, Simulation};
use gv_virt::sched::estimate_cost_ms;
use gv_virt::{Gvm, GvmConfig, GvmStats, MemQuota, SchedPolicy, VgpuClient};
use parking_lot::Mutex;

use crate::report::{ms, x, TextTable};
use crate::repro::Artifact;
use crate::scenario::Scenario;

/// Sessions per wave.
const NPROCS: usize = 8;

/// One oversubscription ratio, measured hard-fit and swap-backed.
pub struct QuotaPoint {
    /// Aggregate demand as a multiple of device capacity.
    pub ratio: u32,
    /// Process count (sessions requested).
    pub nprocs: usize,
    /// Sessions that ran to completion without demand-swap.
    pub admitted_hard: usize,
    /// Sessions that ran to completion with demand-swap.
    pub admitted_swap: usize,
    /// NAKs sent in the hard-fit run.
    pub naks_hard: u64,
    /// Working sets demand-swapped out to host staging (swap run).
    pub swap_outs: u64,
    /// Working sets restored from host staging (swap run).
    pub swap_ins: u64,
    /// Bytes moved device→host by demand-swap (swap run).
    pub swapped_out_bytes: u64,
    /// Group turnaround of the hard-fit run, ms.
    pub group_ms_hard: f64,
    /// Group turnaround of the swap run, ms.
    pub group_ms_swap: f64,
    /// `gv-analyze` verdict on the hard-fit trace (`None`: analysis off).
    pub clean_hard: Option<bool>,
    /// `gv-analyze` verdict on the swap trace (`None`: analysis off).
    pub clean_swap: Option<bool>,
}

impl QuotaPoint {
    /// Admission gain of oversubscription over hard-fit.
    pub fn admit_gain(&self) -> f64 {
        if self.admitted_hard == 0 {
            self.admitted_swap as f64
        } else {
            self.admitted_swap as f64 / self.admitted_hard as f64
        }
    }
}

/// What one wave (one mode at one ratio) measured.
struct Wave {
    admitted: usize,
    group_ms: f64,
    stats: GvmStats,
    clean: Option<bool>,
}

/// The small device the sweep overcommits: the base device with its VRAM
/// shrunk to `64 MiB / scale_down`, so paper-sized cost parameters apply
/// but capacity is something eight sessions can actually strain.
fn quota_device(base: &Scenario, scale_down: u32) -> DeviceConfig {
    DeviceConfig {
        global_mem_bytes: (64 << 20) / u64::from(scale_down.max(1)),
        ..base.device.clone()
    }
}

/// Per-rank working sets at `ratio`× aggregate overcommit: each of the 8
/// ranks demands `ratio/8` of device capacity, minus a distinct per-rank
/// offset so no two sessions share a buffer shape (element counts, so the
/// VectorAdd task's `12·n` device bytes stay exact).
fn working_set_elems(capacity: u64, ratio: u32) -> Vec<u64> {
    let step = (capacity / 256).max(24) / 12; // distinct-shape offset, elems
    let base = u64::from(ratio) * capacity / NPROCS as u64 / 12;
    (0..NPROCS as u64).map(|i| base - i * step).collect()
}

/// Run one wave: 8 staggered FCFS sessions with per-session quotas equal
/// to their working sets, demand-swap on or off. Returns how many
/// sessions the GVM actually served.
fn run_wave(
    base: &Scenario,
    device_cfg: &DeviceConfig,
    elems: &[u64],
    swap: bool,
    analyze: bool,
) -> Wave {
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    tracer.set_analysis(analyze);
    let device = GpuDevice::install(&mut sim, device_cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(base.node.clone());

    let tasks: Vec<_> = elems
        .iter()
        .map(|&n| vecadd::scaled_task(device_cfg, n))
        .collect();
    let quotas: Vec<MemQuota> = tasks
        .iter()
        .map(|t| MemQuota::Bytes(t.device_bytes))
        .collect();
    // Stagger like the ft wave: each session fully drains (working set
    // parked at RLS) before the next session's SND arrives, so hard-fit
    // admission is limited by *accumulated parked* memory, not by racing
    // live sessions.
    let cost = tasks
        .iter()
        .map(|t| estimate_cost_ms(t, device_cfg, &base.node))
        .fold(0.0, f64::max);
    let stagger = SimDuration::from_millis_f64(cost * 2.0);

    let mut config = GvmConfig::new(tasks.len())
        .with_scheduler(SchedPolicy::Fcfs)
        .with_mem(base.mem)
        .with_quotas(quotas);
    if swap {
        config = config.with_swap();
    }
    let n = tasks.len();
    let handle = Gvm::install(&mut sim, &node, &cuda, config, tasks);

    type Spans = Arc<Mutex<Vec<(gv_sim::SimTime, gv_sim::SimTime, bool)>>>;
    let spans: Spans = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let spans = spans.clone();
        let arrival = SimDuration::from_nanos(stagger.as_nanos().saturating_mul(rank as u64));
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            if !arrival.is_zero() {
                ctx.hold(arrival);
            }
            let start = ctx.now();
            let admitted = client.try_run_task(ctx).is_ok();
            spans.lock().push((start, ctx.now(), admitted));
        })
        .expect("pin SPMD process");
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().expect("quota wave must complete");

    let spans = spans.lock();
    let start = spans.iter().map(|(s, _, _)| *s).min().expect("non-empty");
    let end = spans.iter().map(|(_, e, _)| *e).max().expect("non-empty");
    let stats = handle.stats.lock().clone();
    Wave {
        admitted: spans.iter().filter(|(_, _, ok)| *ok).count(),
        group_ms: end.duration_since(start).as_millis_f64(),
        stats,
        clean: analyze.then(|| {
            let report = gv_analyze::analyze(&tracer.analysis_snapshot());
            if !report.is_clean() {
                eprintln!(
                    "quota wave (swap={swap}): gv-analyze diagnostics:\n{}",
                    report.render()
                );
            }
            report.is_clean()
        }),
    }
}

/// Sweep aggregate demand over 1×, 2×, 4×, and 8× of device capacity.
/// With `analyze`, every wave's trace is checked by the full `gv-analyze`
/// suite (including the quota/swap checker); the returned flag is `false`
/// if any trace had diagnostics.
pub fn sweep(base: &Scenario, scale_down: u32, analyze: bool) -> (Vec<QuotaPoint>, bool) {
    let device_cfg = quota_device(base, scale_down);
    let capacity = device_cfg.global_mem_bytes;
    let mut clean = true;
    let points = [1u32, 2, 4, 8]
        .into_iter()
        .map(|ratio| {
            let elems = working_set_elems(capacity, ratio);
            let hard = run_wave(base, &device_cfg, &elems, false, analyze);
            let swap = run_wave(base, &device_cfg, &elems, true, analyze);
            clean &= hard.clean.unwrap_or(true) && swap.clean.unwrap_or(true);
            QuotaPoint {
                ratio,
                nprocs: NPROCS,
                admitted_hard: hard.admitted,
                admitted_swap: swap.admitted,
                naks_hard: hard.stats.naks,
                swap_outs: swap.stats.swap_outs,
                swap_ins: swap.stats.swap_ins,
                swapped_out_bytes: swap.stats.swapped_out_bytes,
                group_ms_hard: hard.group_ms,
                group_ms_swap: swap.group_ms,
                clean_hard: hard.clean,
                clean_swap: swap.clean,
            }
        })
        .collect();
    (points, clean)
}

/// Render the text + CSV artifact from the sweep points.
pub fn artifact(points: &[QuotaPoint], scale_down: u32) -> Artifact {
    let mut t = TextTable::new(vec![
        "demand",
        "procs",
        "admitted (hard-fit)",
        "admitted (swap)",
        "gain",
        "naks",
        "swap outs",
        "swap ins",
        "swapped (MiB)",
        "hard-fit (ms)",
        "swap (ms)",
    ]);
    let mut csv = String::from(
        "ratio,nprocs,admitted_hard,admitted_swap,admit_gain,naks_hard,\
         swap_outs,swap_ins,swapped_out_bytes,group_ms_hard,group_ms_swap\n",
    );
    for p in points {
        t.row(vec![
            format!("{}x", p.ratio),
            p.nprocs.to_string(),
            p.admitted_hard.to_string(),
            p.admitted_swap.to_string(),
            x(p.admit_gain()),
            p.naks_hard.to_string(),
            p.swap_outs.to_string(),
            p.swap_ins.to_string(),
            format!("{:.1}", p.swapped_out_bytes as f64 / (1 << 20) as f64),
            ms(p.group_ms_hard),
            ms(p.group_ms_swap),
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{:.3},{},{},{},{},{:.3},{:.3}\n",
            p.ratio,
            p.nprocs,
            p.admitted_hard,
            p.admitted_swap,
            p.admit_gain(),
            p.naks_hard,
            p.swap_outs,
            p.swap_ins,
            p.swapped_out_bytes,
            p.group_ms_hard,
            p.group_ms_swap,
        ));
    }
    let best = points
        .iter()
        .map(QuotaPoint::admit_gain)
        .fold(0.0, f64::max);
    let text = format!(
        "DEVICE-MEMORY QUOTAS AND VRAM OVERSUBSCRIPTION — DEMAND-SWAP \
         (scale 1/{scale_down})\n\n{}\n\
         Aggregate demand sweeps 1x-8x of device VRAM. Hard-fit NAKs any\n\
         session whose quota'd working set cannot be placed; demand-swap\n\
         parks idle working sets in pinned host staging instead, admitting\n\
         up to {:.1}x more sessions at the cost of the swap traffic above.\n",
        t.render(),
        best,
    );
    Artifact {
        name: "quota",
        text,
        csv,
    }
}

/// Render the machine-readable record (`BENCH_quota.json`).
pub fn bench_json(points: &[QuotaPoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"quota_oversubscription\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"ratio\": {}, \"nprocs\": {}, \"admitted_hard\": {}, \
             \"admitted_swap\": {}, \"admit_gain\": {:.3}, \"naks_hard\": {}, \
             \"swap_outs\": {}, \"swap_ins\": {}, \"swapped_out_bytes\": {}, \
             \"group_ms_hard\": {:.6}, \"group_ms_swap\": {:.6}}}{}\n",
            p.ratio,
            p.nprocs,
            p.admitted_hard,
            p.admitted_swap,
            p.admit_gain(),
            p.naks_hard,
            p.swap_outs,
            p.swap_ins,
            p.swapped_out_bytes,
            p.group_ms_hard,
            p.group_ms_swap,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversubscription_admits_4x_more_than_hard_fit() {
        let (pts, _) = sweep(&Scenario::default(), 16, false);
        for p in &pts {
            assert_eq!(
                p.admitted_swap, p.nprocs,
                "demand-swap must admit every session at {}x",
                p.ratio
            );
        }
        // Hard-fit admission decays as demand grows past capacity…
        let hard: Vec<usize> = pts.iter().map(|p| p.admitted_hard).collect();
        assert_eq!(hard[0], NPROCS, "everything fits at 1x");
        assert!(
            hard.windows(2).all(|w| w[1] <= w[0]),
            "hard-fit admission must be monotone in demand: {hard:?}"
        );
        // …and the acceptance headline: ≥4× more sessions admitted under
        // oversubscription than hard-fit.
        let best = pts.iter().map(QuotaPoint::admit_gain).fold(0.0, f64::max);
        assert!(best >= 4.0, "admission gain only {best:.2}x: {hard:?}");
    }

    #[test]
    fn swap_traffic_appears_exactly_when_overcommitted() {
        let (pts, clean) = sweep(&Scenario::default(), 32, true);
        assert!(clean, "every swept trace must analyze clean");
        for p in &pts {
            assert_eq!(p.clean_hard, Some(true));
            assert_eq!(p.clean_swap, Some(true));
            if p.ratio == 1 {
                assert_eq!(p.swap_outs, 0, "nothing to swap when everything fits");
                assert_eq!(p.naks_hard, 0);
            } else {
                assert!(
                    p.swap_outs > 0,
                    "{}x overcommit must demand-swap at least once",
                    p.ratio
                );
                assert!(p.naks_hard > 0, "hard-fit must reject at {}x", p.ratio);
            }
        }
    }

    #[test]
    fn quota_artifacts_are_well_formed() {
        let (pts, _) = sweep(&Scenario::default(), 64, false);
        let a = artifact(&pts, 64);
        assert_eq!(a.csv.lines().count(), 1 + pts.len());
        let j = bench_json(&pts);
        assert!(j.contains("\"bench\": \"quota_oversubscription\""));
        assert_eq!(j.matches("\"ratio\":").count(), pts.len());
    }
}

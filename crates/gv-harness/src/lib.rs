//! # gv-harness — experiment drivers for every table and figure
//!
//! * [`scenario`] — assemble node + device + SPMD group, run one experiment
//! * [`turnaround`] — 1–8-process sweeps (Figs. 9, 11–15) and speedups
//!   (Table III experimental half, Fig. 16)
//! * [`profile`] — microbenchmark profiling (Table II)
//! * [`overhead`] — virtualization-overhead sweep (Fig. 10)
//! * [`analysis`] — the `--analyze` pass: `gv-analyze` checkers over traces
//! * [`sched`] — GVM scheduling-policy sweeps (beyond the paper)
//! * [`cluster`] — cluster placement-policy sweeps (beyond the paper)
//! * [`pipeline`] — chunked staging/copy pipeline sweeps (beyond the paper)
//! * [`report`] — text/CSV/JSON emission
//!
//! The `repro_*` binaries in this crate regenerate each artifact:
//! `repro_table2`, `repro_table3`, `repro_table4`, `repro_fig9`,
//! `repro_fig10`, `repro_fig11_15`, `repro_fig16`, `repro_sched`,
//! `repro_pipeline`, `repro_cluster`, and `repro_all`. Each accepts `--quick` for a
//! scaled-down smoke run.

#![warn(missing_docs)]

pub mod ablation;
pub mod analysis;
pub mod cluster;
pub mod coalesce;
pub mod ft;
pub mod overhead;
pub mod pipeline;
pub mod profile;
pub mod quota;
pub mod remote_compare;
pub mod report;
pub mod repro;
pub mod scenario;
pub mod sched;
pub mod sensitivity;
pub mod timeline;
pub mod turnaround;
pub mod zerocopy;

pub use scenario::{ExecutionMode, ExperimentResult, Scenario};
pub use turnaround::{sweep, TurnaroundConfig, TurnaroundPoint, TurnaroundSeries};

//! Cross-rank DMA coalescing and batched kernel launch sweep — the
//! `repro_coalesce` binary.
//!
//! Compares the per-rank flush (coalescing off, the seed schedule kept as
//! a config-selectable ablation) against the coalescing flush — staging
//! leases placed adjacently, wave-per-iteration submission, adjacent
//! same-direction transfers fused into one DMA submission per run, and
//! co-flushed ranks' kernel launches batched into grouped submissions —
//! over payload size at 8 processes.
//!
//! The workload is deliberately *launch-dense*: several small kernels per
//! iteration, so the per-submission fixed costs (DMA setup latency, host
//! launch overhead) that coalescing amortizes are a visible fraction of
//! each request. The headline metric is mean per-request *overhead*: the
//! mean per-rank turnaround of the virtualized run minus a single direct
//! (unvirtualized) execution of the same task. The acceptance gate is a
//! ≥ 25 % overhead reduction at the small-payload points; the largest
//! swept payload sits above the fuse threshold, pinning that oversized
//! transfers fall back to per-rank submission.
//!
//! With `analyze` on, every point's trace runs the full `gv-analyze`
//! suite — including the coalesce checker's manifest-partition,
//! command-fan-out, and generation-currency rules.

use gv_gpu::KernelDesc;
use gv_kernels::{vecadd, GpuTask, KernelTemplate};
use gv_model::coalesce_saving;
use gv_sim::SimDuration;
use gv_virt::MemConfig;

use crate::report::{ms, pct, TextTable};
use crate::repro::Artifact;
use crate::scenario::{ExecutionMode, Scenario};

/// Staged input payload sizes (KiB per rank) — the ISSUE's acceptance
/// points. 16 MiB sits above the default 4 MiB fuse threshold, so its
/// transfers must go down unfused.
pub const PAYLOADS_KIB: [u64; 3] = [64, 1024, 16384];

/// Process count for every swept point.
pub const NPROCS: usize = 8;

/// Kernel launches per iteration — the launch-dense shape whose host
/// overhead the batched submission amortizes.
pub const KERNELS_PER_ITER: usize = 32;

/// The workload: a VectorAdd-shaped timing-only task (`payload` in, half
/// that out) whose single kernel is split into [`KERNELS_PER_ITER`] small
/// stages of equal cost — a short multi-stage pipeline, as launch-heavy
/// workloads (graph analytics steps, fused-op chains) present per request.
pub fn launch_dense_task(scenario: &Scenario, payload_bytes: u64) -> GpuTask {
    let mut task = vecadd::scaled_task(&scenario.device, (payload_bytes / 8).max(1));
    let grid = task.kernels[0].desc.grid_blocks;
    let tpb = task.kernels[0].desc.threads_per_block;
    let per_stage = SimDuration::from_micros(4);
    task.name = "LaunchDense".into();
    task.kernels = (0..KERNELS_PER_ITER)
        .map(|i| {
            KernelTemplate::timing(
                KernelDesc::new(format!("stage{i}"), grid, tpb)
                    .regs(10)
                    .with_target_time(&scenario.device, per_stage),
            )
        })
        .collect();
    task
}

/// One payload-size measurement: per-rank flush vs coalescing flush.
pub struct CoalescePoint {
    /// Staged input payload per rank, KiB.
    pub payload_kib: f64,
    /// Process count.
    pub nprocs: usize,
    /// Post-init turnaround of one direct (unvirtualized, single process)
    /// execution — the raw-device baseline the overheads are measured
    /// against.
    pub direct_ms: f64,
    /// Mean per-rank turnaround, per-rank flush (coalescing off), ms.
    pub off_rank_ms: f64,
    /// Mean per-rank turnaround, coalescing flush, ms.
    pub on_rank_ms: f64,
    /// Fused DMA submissions the coalescing run produced.
    pub fused_dma_groups: u64,
    /// Sub-ops riding in those fused submissions.
    pub fused_dma_subs: u64,
    /// Kernel launches that went down in batched submissions.
    pub batched_launches: u64,
    /// Fraction of flush DMA ops that rode in fused submissions.
    pub fused_ratio: f64,
    /// `gv-analyze` verdict over both virtualized traces (`None` when
    /// analysis is off).
    pub clean: Option<bool>,
}

impl CoalescePoint {
    /// Mean per-request overhead of the per-rank flush (ms).
    pub fn off_overhead(&self) -> f64 {
        self.off_rank_ms - self.direct_ms
    }

    /// Mean per-request overhead of the coalescing flush (ms).
    pub fn on_overhead(&self) -> f64 {
        self.on_rank_ms - self.direct_ms
    }

    /// Overhead reduction from coalescing, as a fraction.
    pub fn improvement(&self) -> f64 {
        1.0 - self.on_overhead() / self.off_overhead()
    }
}

/// Run one payload point: the direct baseline once, then the virtualized
/// group with coalescing off and on.
pub fn run_point(base: &Scenario, payload_bytes: u64, n: usize, analyze: bool) -> CoalescePoint {
    let run = |mem: MemConfig| {
        let scenario = Scenario {
            analyze,
            ..base.clone()
        }
        .with_mem(mem);
        let task = launch_dense_task(&scenario, payload_bytes);
        scenario.run_uniform(ExecutionMode::Virtualized, &task, n)
    };
    let direct = {
        let scenario = base.clone();
        let task = launch_dense_task(&scenario, payload_bytes);
        scenario.run_uniform(ExecutionMode::Direct, &task, 1)
    };
    let off = run(MemConfig::default());
    let on = run(MemConfig::default().with_coalesce(true));
    let og = on.gvm.as_ref().expect("virtualized run has GVM stats");
    let mean = |r: &crate::scenario::ExperimentResult| {
        r.mean_phase(|t| t.end.duration_since(t.start).as_millis_f64())
    };
    let clean = match (
        off.analysis.as_ref().map(|r| r.is_clean()),
        on.analysis.as_ref().map(|r| r.is_clean()),
    ) {
        (Some(o), Some(c)) => Some(o && c),
        _ => None,
    };
    CoalescePoint {
        payload_kib: payload_bytes as f64 / 1024.0,
        nprocs: n,
        direct_ms: direct.mean_phase(|t| t.end.duration_since(t.init_done).as_millis_f64()),
        off_rank_ms: mean(&off),
        on_rank_ms: mean(&on),
        fused_dma_groups: og.fused_dma_groups,
        fused_dma_subs: og.fused_dma_subs,
        batched_launches: og.batched_launches,
        fused_ratio: og.fused_dma_ratio(),
        clean,
    }
}

/// Render the machine-readable benchmark record (`BENCH_coalesce.json`).
pub fn bench_json(points: &[CoalescePoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"coalesce\",\n");
    out.push_str(&format!(
        "  \"nprocs\": {},\n  \"points\": [\n",
        points.first().map_or(NPROCS, |p| p.nprocs)
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload_kib\": {:.1}, \"off_overhead_ms\": {:.6}, \
             \"on_overhead_ms\": {:.6}, \"improvement\": {:.4}, \
             \"fused_dma_groups\": {}, \"fused_dma_subs\": {}, \
             \"batched_launches\": {}, \"fused_ratio\": {:.4}}}{}\n",
            p.payload_kib,
            p.off_overhead(),
            p.on_overhead(),
            p.improvement(),
            p.fused_dma_groups,
            p.fused_dma_subs,
            p.batched_launches,
            p.fused_ratio,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the sweep; returns the artifact, the `BENCH_coalesce.json` record,
/// and whether every analyzed trace was clean.
pub fn sweep(base: &Scenario, scale_down: u32, analyze: bool) -> (Artifact, String, bool) {
    let mut csv = String::from(
        "payload_kib,nprocs,direct_ms,off_rank_ms,on_rank_ms,off_overhead_ms,\
         on_overhead_ms,improvement,fused_dma_groups,fused_dma_subs,\
         batched_launches,fused_ratio,analyzed_clean\n",
    );
    let mut clean = true;
    let mut points = Vec::new();
    let mut t = TextTable::new(vec![
        "payload (KiB)",
        "off ovh (ms)",
        "coalesced ovh (ms)",
        "improvement",
        "fused groups/subs",
        "batched launches",
    ]);
    for &kib in &PAYLOADS_KIB {
        let payload = (kib << 10) / u64::from(scale_down.max(1));
        let p = run_point(base, payload.max(4096), NPROCS, analyze);
        clean &= p.clean.unwrap_or(true);
        t.row(vec![
            format!("{:.0}", p.payload_kib),
            ms(p.off_overhead()),
            ms(p.on_overhead()),
            pct(p.improvement()),
            format!("{} / {}", p.fused_dma_groups, p.fused_dma_subs),
            format!("{}", p.batched_launches),
        ]);
        csv.push_str(&format!(
            "{:.1},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{},{},{},{:.4},{}\n",
            p.payload_kib,
            p.nprocs,
            p.direct_ms,
            p.off_rank_ms,
            p.on_rank_ms,
            p.off_overhead(),
            p.on_overhead(),
            p.improvement(),
            p.fused_dma_groups,
            p.fused_dma_subs,
            p.batched_launches,
            p.fused_ratio,
            p.clean.map(|c| c.to_string()).unwrap_or_default(),
        ));
        points.push(p);
    }
    // The analytical side (gv-model's coalesce terms): per-flush fixed
    // submission cost saved when n sub-ops fuse to one group per
    // direction and n·K launches batch to one wave.
    let mut m = TextTable::new(vec!["n", "DMA saving (ms)", "launch saving (ms)"]);
    let l_dma = base.device.dma_latency.as_millis_f64();
    let l_launch = base.device.kernel_launch_overhead.as_millis_f64();
    for n in [2u32, 4, 8] {
        m.row(vec![
            format!("{n}"),
            ms(2.0 * coalesce_saving(n, 1, l_dma)),
            ms(coalesce_saving(n * KERNELS_PER_ITER as u32, 1, l_launch)),
        ]);
    }
    let text = format!(
        "CROSS-RANK COALESCING SWEEP (scale 1/{scale_down})\n\n\
         Mean per-request overhead over direct execution, {NPROCS} processes,\n\
         {KERNELS_PER_ITER} kernels per iteration, per-rank flush vs \
         coalescing flush:\n{}\n\
         Model prediction (gv-model coalesce_saving, per flush):\n{}\n\
         Coalescing places co-flushed ranks' staging leases adjacently,\n\
         fuses adjacent same-direction transfers into one DMA submission\n\
         per run (followers elide the setup latency), and batches the\n\
         group's kernel launches into one submission per device wave.\n",
        t.render(),
        m.render(),
    );
    let json = bench_json(&points);
    (
        Artifact {
            name: "coalesce",
            text,
            csv,
        },
        json,
        clean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_cuts_small_payload_overhead_by_a_quarter() {
        // The ISSUE's acceptance gate: ≥ 25 % lower mean per-request
        // overhead at the small-payload points.
        for &kib in &PAYLOADS_KIB[..2] {
            let p = run_point(&Scenario::default(), kib << 10, NPROCS, false);
            assert!(
                p.improvement() >= 0.25,
                "{kib} KiB: improvement {:.1} % must be ≥ 25 % \
                 (off {:.4} ms, on {:.4} ms)",
                p.improvement() * 100.0,
                p.off_overhead(),
                p.on_overhead()
            );
            assert!(p.fused_dma_groups > 0, "{kib} KiB: nothing fused");
            assert!(p.batched_launches > 0, "{kib} KiB: nothing batched");
        }
    }

    #[test]
    fn oversized_payloads_do_not_fuse() {
        // 16 MiB sits above the 4 MiB fuse threshold: transfers go down
        // per rank (launch batching still applies).
        let p = run_point(&Scenario::default(), 16 << 20, NPROCS, false);
        assert_eq!(p.fused_dma_groups, 0);
        assert!(p.batched_launches > 0);
    }

    #[test]
    fn coalesce_traces_are_analyze_clean() {
        let p = run_point(&Scenario::default(), 1 << 20, 4, true);
        assert_eq!(p.clean, Some(true));
        assert!(p.fused_dma_groups > 0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let (_, json, _) = sweep(&Scenario::default(), 16, false);
        assert!(json.contains("\"bench\": \"coalesce\""));
        assert_eq!(json.matches("\"payload_kib\":").count(), PAYLOADS_KIB.len());
        assert!(json.contains("\"fused_dma_groups\""));
    }
}

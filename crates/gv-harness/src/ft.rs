//! Fault-tolerant buffer-lifecycle measurements — the `repro_ft` binary.
//!
//! The fault-tolerant GVM allocates device memory lazily at `SND`, parks
//! allocations in the [`DeviceAllocCache`](gv_mem::DeviceAllocCache) when
//! a rank is evicted or releases with an idle stream, and re-issues them
//! to later admissions of the same shape. These scenarios measure that
//! cache instead of just unit-testing it: a lockstep group (every rank
//! allocates before anyone releases — all misses), a staggered FCFS wave
//! (each rank inherits its predecessor's parked allocation), and the same
//! wave with a crashed rank whose eviction routes its allocation through
//! the cache.

use std::sync::Arc;

use gv_cuda::CudaDevice;
use gv_gpu::GpuDevice;
use gv_ipc::Node;
use gv_sim::{SimDuration, Simulation};
use gv_virt::sched::estimate_cost_ms;
use gv_virt::{
    FaultPlan, FaultSpec, Gvm, GvmConfig, GvmStats, RequestKind, SchedPolicy, VgpuClient,
};
use parking_lot::Mutex;

use crate::pipeline::payload_task;
use crate::report::{ms, pct, TextTable};
use crate::repro::Artifact;
use crate::scenario::Scenario;

/// One fault-tolerant scenario's measurements.
pub struct FtPoint {
    /// Scenario label.
    pub name: &'static str,
    /// Process count.
    pub nprocs: usize,
    /// Group turnaround (max end − min start over completed ranks), ms.
    pub group_ms: f64,
    /// Device-allocation cache hits (allocations served without
    /// `cudaMalloc`).
    pub devcache_hits: u64,
    /// Device-allocation cache misses (real allocator calls).
    pub devcache_misses: u64,
    /// Ranks evicted by the fault-tolerance layer.
    pub evictions: u64,
    /// NAK responses sent.
    pub naks: u64,
}

impl FtPoint {
    /// Fraction of device allocations served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.devcache_hits + self.devcache_misses;
        if total == 0 {
            0.0
        } else {
            self.devcache_hits as f64 / total as f64
        }
    }
}

/// Run one fault-tolerant group: `n` ranks of the pipeline payload task,
/// arrivals `stagger` apart, under `plan`. Ranks scripted to abort walk
/// away mid-protocol; everyone else runs to completion.
fn run_ft(
    base: &Scenario,
    name: &'static str,
    payload_bytes: u64,
    n: usize,
    scheduler: SchedPolicy,
    stagger: SimDuration,
    plan: &FaultPlan,
) -> FtPoint {
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, base.device.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(base.node.clone());
    let task = payload_task(base, payload_bytes);
    let config = GvmConfig::fault_tolerant(n)
        .with_scheduler(scheduler)
        .with_mem(base.mem);
    let handle = Gvm::install(&mut sim, &node, &cuda, config, vec![task; n]);
    plan.install(&handle, &device);

    type Spans = Arc<Mutex<Vec<(gv_sim::SimTime, gv_sim::SimTime)>>>;
    let spans: Spans = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let spans = spans.clone();
        let abort = plan.abort_stage(rank);
        let arrival = SimDuration::from_nanos(stagger.as_nanos().saturating_mul(rank as u64));
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let mut client = VgpuClient::connect(ctx, &handle, rank);
            if !arrival.is_zero() {
                ctx.hold(arrival);
            }
            if let Some(stage) = abort {
                client.abort_at(stage);
            }
            let start = ctx.now();
            let _ = client.try_run_task(ctx);
            spans.lock().push((start, ctx.now()));
        })
        .expect("pin SPMD process");
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().expect("fault-tolerant scenario must complete");

    let spans = spans.lock();
    let start = spans.iter().map(|(s, _)| *s).min().expect("non-empty");
    let end = spans.iter().map(|(_, e)| *e).max().expect("non-empty");
    let stats: GvmStats = handle.stats.lock().clone();
    FtPoint {
        name,
        nprocs: n,
        group_ms: end.duration_since(start).as_millis_f64(),
        devcache_hits: stats.devcache_hits,
        devcache_misses: stats.devcache_misses,
        evictions: stats.evictions,
        naks: stats.naks,
    }
}

/// Run the three scenarios at `16 MiB / scale_down` payloads.
pub fn scenarios(base: &Scenario, scale_down: u32) -> Vec<FtPoint> {
    let payload = (16 << 20) / scale_down.max(1) as u64;
    let n = 8;
    let task = payload_task(base, payload);
    let cost = estimate_cost_ms(&task, &base.device, &base.node);
    // 2× the modeled single-rank service time: each rank's session fully
    // drains (allocation parked at RLS) before the next rank's SND. The
    // fault-free estimate undershoots the fault-tolerant round (device
    // allocation happens lazily at SND), hence the margin.
    let stagger = SimDuration::from_millis_f64(cost * 2.0);
    vec![
        // Lockstep joint flush: every rank allocates before anyone
        // releases, so the cache cannot help — the all-miss baseline.
        run_ft(
            base,
            "lockstep-joint",
            payload,
            n,
            SchedPolicy::JointFlush,
            SimDuration::ZERO,
            &FaultPlan::new(0),
        ),
        // Staggered FCFS wave: rank i's SND arrives after rank i−1's RLS
        // parked its allocation; every rank after the first reuses it.
        run_ft(
            base,
            "staggered-fcfs",
            payload,
            n,
            SchedPolicy::Fcfs,
            stagger,
            &FaultPlan::new(0),
        ),
        // The same wave with rank 0 crashing after its flush: the idle
        // eviction routes its allocation through the cache too, and the
        // survivors still inherit their predecessors' buffers.
        run_ft(
            base,
            "staggered-abort",
            payload,
            n,
            SchedPolicy::Fcfs,
            stagger,
            &FaultPlan::new(0).push(FaultSpec::ClientAbort {
                rank: 0,
                stage: RequestKind::Stp,
            }),
        ),
    ]
}

/// Render the text + CSV artifact from the scenario points.
pub fn artifact(points: &[FtPoint], scale_down: u32) -> Artifact {
    let mut t = TextTable::new(vec![
        "scenario",
        "procs",
        "group (ms)",
        "cache hits",
        "cache misses",
        "hit rate",
        "evictions",
        "naks",
    ]);
    let mut csv = String::from(
        "scenario,nprocs,group_ms,devcache_hits,devcache_misses,hit_rate,evictions,naks\n",
    );
    for p in points {
        t.row(vec![
            p.name.to_string(),
            p.nprocs.to_string(),
            ms(p.group_ms),
            p.devcache_hits.to_string(),
            p.devcache_misses.to_string(),
            pct(p.hit_rate()),
            p.evictions.to_string(),
            p.naks.to_string(),
        ]);
        csv.push_str(&format!(
            "{},{},{:.3},{},{},{:.4},{},{}\n",
            p.name,
            p.nprocs,
            p.group_ms,
            p.devcache_hits,
            p.devcache_misses,
            p.hit_rate(),
            p.evictions,
            p.naks,
        ));
    }
    let text = format!(
        "FAULT-TOLERANT BUFFER LIFECYCLE — DEVICE-ALLOCATION CACHE \
         (scale 1/{scale_down})\n\n{}\n\
         Lockstep groups allocate all at once (all misses); staggered\n\
         waves inherit parked allocations from released and evicted\n\
         ranks instead of paying cudaMalloc again.\n",
        t.render()
    );
    Artifact {
        name: "ft",
        text,
        csv,
    }
}

/// Render the machine-readable record (`BENCH_ft.json`).
pub fn bench_json(points: &[FtPoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"ft_devcache\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"nprocs\": {}, \"group_ms\": {:.6}, \
             \"devcache_hits\": {}, \"devcache_misses\": {}, \"hit_rate\": {:.4}, \
             \"evictions\": {}, \"naks\": {}}}{}\n",
            p.name,
            p.nprocs,
            p.group_ms,
            p.devcache_hits,
            p.devcache_misses,
            p.hit_rate(),
            p.evictions,
            p.naks,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_misses_staggered_hits() {
        let pts = scenarios(&Scenario::default(), 16);
        let lockstep = &pts[0];
        let staggered = &pts[1];
        assert_eq!(lockstep.devcache_hits, 0, "lockstep cannot reuse");
        assert_eq!(lockstep.devcache_misses as usize, lockstep.nprocs);
        assert!(
            staggered.devcache_hits as usize >= staggered.nprocs - 1,
            "every rank after the first inherits a parked allocation, got {} hits",
            staggered.devcache_hits
        );
    }

    #[test]
    fn aborted_rank_is_evicted_and_survivors_reuse() {
        let pts = scenarios(&Scenario::default(), 16);
        let abort = &pts[2];
        assert_eq!(abort.evictions, 1, "exactly the crashed rank is evicted");
        assert!(
            abort.devcache_hits > 0,
            "survivors still reuse parked allocations"
        );
    }

    #[test]
    fn ft_artifacts_are_well_formed() {
        let pts = scenarios(&Scenario::default(), 64);
        let a = artifact(&pts, 64);
        assert_eq!(a.csv.lines().count(), 1 + pts.len());
        let j = bench_json(&pts);
        assert!(j.contains("\"bench\": \"ft_devcache\""));
        assert_eq!(j.matches("\"scenario\":").count(), pts.len());
    }
}

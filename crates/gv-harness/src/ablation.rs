//! Ablation studies: how much does each Fermi/GVM mechanism contribute?
//!
//! The paper argues its gains come from three mechanisms working jointly —
//! concurrent kernel execution, copy/compute overlap with bidirectional
//! DMA, and the elimination of context creation/switching. It never
//! separates them. These ablations do:
//!
//! * **NoConcurrentKernels** — window limited to 1 kernel (pre-Fermi);
//! * **UnifiedCopyEngine** — D2H shares the H2D engine (one copy engine,
//!   no bidirectional overlap — a GTX 280-class DMA block);
//! * **SerialFlush** — the GVM drains each process's stream before
//!   flushing the next (a naive time-sharing manager: contexts are still
//!   shared, but nothing overlaps).

use gv_kernels::{Benchmark, BenchmarkId};
use serde::Serialize;

use crate::scenario::{ExecutionMode, Scenario};
use gv_cuda::CudaDevice;
use gv_gpu::GpuDevice;
use gv_ipc::Node;
use gv_sim::Simulation;
use gv_virt::{Gvm, GvmConfig, VgpuClient};

/// Which mechanism is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Ablation {
    /// Everything enabled (the paper's configuration).
    Full,
    /// One kernel at a time on the device.
    NoConcurrentKernels,
    /// One copy engine shared by both directions.
    UnifiedCopyEngine,
    /// GVM flushes streams one at a time, draining in between.
    SerialFlush,
}

impl Ablation {
    /// All variants in presentation order.
    pub fn all() -> [Ablation; 4] {
        [
            Ablation::Full,
            Ablation::NoConcurrentKernels,
            Ablation::UnifiedCopyEngine,
            Ablation::SerialFlush,
        ]
    }
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ablation::Full => write!(f, "full (paper config)"),
            Ablation::NoConcurrentKernels => write!(f, "no concurrent kernels"),
            Ablation::UnifiedCopyEngine => write!(f, "single copy engine"),
            Ablation::SerialFlush => write!(f, "serial GVM flush"),
        }
    }
}

/// One ablation measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AblationPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Disabled mechanism.
    pub ablation: Ablation,
    /// Virtualized turnaround under the ablation, ms.
    pub vt_ms: f64,
    /// Speedup over the (un-ablated) conventional baseline.
    pub speedup: f64,
}

/// Run the virtualized experiment under `ablation`.
pub fn run_virtualized_ablated(
    scenario: &Scenario,
    benchmark: BenchmarkId,
    n: usize,
    scale_down: u32,
    ablation: Ablation,
) -> f64 {
    let mut device_cfg = scenario.device.clone();
    let mut gvm_cfg = GvmConfig::new(n);
    match ablation {
        Ablation::Full => {}
        Ablation::NoConcurrentKernels => device_cfg.max_concurrent_kernels = 1,
        Ablation::UnifiedCopyEngine => device_cfg.unified_copy_engine = true,
        Ablation::SerialFlush => gvm_cfg.serial_flush = true,
    }
    let task = if scale_down <= 1 {
        Benchmark::paper_task(benchmark, &device_cfg)
    } else {
        Benchmark::scaled_task(benchmark, &device_cfg, scale_down)
    };

    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, device_cfg);
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(scenario.node.clone());
    let handle = Gvm::install(&mut sim, &node, &cuda, gvm_cfg, vec![task; n]);
    use parking_lot::Mutex;
    use std::sync::Arc;
    let spans: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for rank in 0..n {
        let handle = handle.clone();
        let spans = spans.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (run, _) = client.run_task(ctx);
            spans
                .lock()
                .push((run.start.as_nanos(), run.end.as_nanos()));
        })
        .expect("pin process");
    }
    let h = handle.clone();
    let dev = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h.done.wait(ctx);
        dev.shutdown(ctx);
    });
    sim.run().expect("ablation run completes");
    let spans = spans.lock();
    let start = spans.iter().map(|s| s.0).min().expect("ranks reported");
    let end = spans.iter().map(|s| s.1).max().expect("ranks reported");
    (end - start) as f64 / 1.0e6
}

/// Full ablation sweep for one benchmark at `n` processes.
pub fn sweep(
    scenario: &Scenario,
    benchmark: BenchmarkId,
    n: usize,
    scale_down: u32,
) -> Vec<AblationPoint> {
    let task = if scale_down <= 1 {
        Benchmark::paper_task(benchmark, &scenario.device)
    } else {
        Benchmark::scaled_task(benchmark, &scenario.device, scale_down)
    };
    let baseline = scenario
        .run_uniform(ExecutionMode::Direct, &task, n)
        .turnaround_ms;
    let name = Benchmark::describe(benchmark).name.to_string();
    Ablation::all()
        .into_iter()
        .map(|ab| {
            let vt_ms = run_virtualized_ablated(scenario, benchmark, n, scale_down, ab);
            AblationPoint {
                benchmark: name.clone(),
                ablation: ab,
                vt_ms,
                speedup: baseline / vt_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Disabling concurrent kernels must hurt EP (its gains are exactly
    /// concurrency), while the full config is the fastest variant.
    #[test]
    fn ep_depends_on_concurrent_kernels() {
        let sc = Scenario::default();
        let pts = sweep(&sc, BenchmarkId::Ep, 4, 64);
        let get = |ab: Ablation| pts.iter().find(|p| p.ablation == ab).unwrap().vt_ms;
        let full = get(Ablation::Full);
        let no_cke = get(Ablation::NoConcurrentKernels);
        let serial = get(Ablation::SerialFlush);
        assert!(
            no_cke > 2.0 * full,
            "EP without CKE should collapse: full {full:.1} ms, no-CKE {no_cke:.1} ms"
        );
        assert!(serial >= no_cke * 0.9, "serial flush is at least as bad");
        for p in &pts {
            assert!(
                p.vt_ms >= full * 0.999,
                "{:?} beat the full config",
                p.ablation
            );
        }
    }

    /// A single copy engine must hurt an I/O benchmark's pipeline but
    /// leave compute-bound EP almost untouched.
    #[test]
    fn unified_copy_engine_hurts_io_not_compute() {
        let sc = Scenario::default();
        let va = sweep(&sc, BenchmarkId::VecAdd, 4, 32);
        let get = |pts: &[AblationPoint], ab: Ablation| {
            pts.iter().find(|p| p.ablation == ab).unwrap().vt_ms
        };
        let va_penalty = get(&va, Ablation::UnifiedCopyEngine) / get(&va, Ablation::Full);
        assert!(
            va_penalty > 1.05,
            "VectorAdd should lose >5% without bidirectional DMA, lost {:.1}%",
            (va_penalty - 1.0) * 100.0
        );
        let ep = sweep(&sc, BenchmarkId::Ep, 4, 64);
        let ep_penalty = get(&ep, Ablation::UnifiedCopyEngine) / get(&ep, Ablation::Full);
        assert!(
            ep_penalty < 1.02,
            "EP barely moves data; unified engine cost {:.1}%",
            (ep_penalty - 1.0) * 100.0
        );
    }
}

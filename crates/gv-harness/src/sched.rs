//! The scheduling-policy sweep behind the `repro_sched` binary.
//!
//! Two experiments:
//!
//! * **Matrix** — every policy × {VectorAdd, EP, MM, BlackScholes} ×
//!   N ∈ {2, 4, 8}, lockstep arrivals: the SPMD steady state the paper
//!   targets. Shows the policies agree on turnaround there (dispatch
//!   order barely matters when everyone arrives together) while the
//!   queue-depth/idle-gap counters expose how differently they wait.
//! * **Headline** — an 8-process VectorAdd group with staggered arrivals
//!   (rank `r` starts `r × stagger` late). The joint flush holds every
//!   early rank hostage to the last straggler; FCFS and the adaptive
//!   batch dispatch early work immediately and win on mean per-rank
//!   turnaround.
//!
//! With `analyze` on, every policy run also records its trace and is
//! gated on the `gv-analyze` checkers (the relaxed flush-width rule for
//! partial policies comes from the trace's `ProtoSched` record).

use gv_kernels::{Benchmark, BenchmarkId, GpuTask};
use gv_sim::SimDuration;
use gv_virt::sched::{calibrated_batch_timeout, estimate_cost_ms};
use gv_virt::SchedPolicy;

use crate::report::{ms, x, TextTable};
use crate::repro::Artifact;
use crate::scenario::{ExecutionMode, Scenario};

/// Benchmarks the matrix sweeps (Table II microbenchmarks plus two
/// Table IV applications).
pub const BENCHMARKS: [BenchmarkId; 4] = [
    BenchmarkId::VecAdd,
    BenchmarkId::Ep,
    BenchmarkId::Mm,
    BenchmarkId::BlackScholes,
];

/// Process counts the matrix sweeps.
pub const PROCS: [usize; 3] = [2, 4, 8];

/// The four policies for an `n`-rank group running `tasks`: the adaptive
/// batch triggers at half the group (min 2) with a timeout calibrated to
/// the task mix.
pub fn policies(n: usize, tasks: &[GpuTask], scenario: &Scenario) -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::JointFlush,
        SchedPolicy::Fcfs,
        SchedPolicy::AdaptiveBatch {
            k: (n / 2).clamp(2, n.max(2)),
            timeout: Some(calibrated_batch_timeout(
                tasks,
                &scenario.device,
                &scenario.node,
            )),
        },
        SchedPolicy::ShortestJobFirst,
    ]
}

/// One policy × benchmark × N measurement.
pub struct SchedPoint {
    /// Policy label.
    pub policy: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Process count.
    pub nprocs: usize,
    /// Group turnaround (max end − min start) in ms.
    pub group_ms: f64,
    /// Mean per-rank turnaround (own end − own start) in ms.
    pub mean_rank_ms: f64,
    /// Stream flushes the GVM performed.
    pub flushes: u64,
    /// Flushes covering a strict subset of the active ranks.
    pub partial_flushes: u64,
    /// Mean `STR` backlog at arrival.
    pub queue_depth_mean: f64,
    /// Total queueing delay the policy imposed, in ms.
    pub idle_gap_ms: f64,
    /// `gv-analyze` verdict (`None` when analysis is off).
    pub clean: Option<bool>,
}

/// Run one policy point. `stagger` skews rank arrivals.
pub fn run_point(
    base: &Scenario,
    policy: SchedPolicy,
    id: BenchmarkId,
    n: usize,
    scale_down: u32,
    stagger: SimDuration,
    analyze: bool,
) -> SchedPoint {
    let name = policy.name();
    let scenario = Scenario {
        analyze,
        ..base.clone()
    }
    .with_scheduler(policy)
    .with_stagger(stagger);
    let task = Benchmark::scaled_task(id, &scenario.device, scale_down.max(1));
    let result = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
    let gvm = result.gvm.as_ref().expect("virtualized run has GVM stats");
    let mean_rank_ms = result.mean_phase(|r| r.end.duration_since(r.start).as_millis_f64());
    SchedPoint {
        policy: name,
        benchmark: Benchmark::describe(id).name,
        nprocs: n,
        group_ms: result.turnaround_ms,
        mean_rank_ms,
        flushes: gvm.flushes,
        partial_flushes: gvm.partial_flushes,
        queue_depth_mean: gvm.queue_depth_mean(),
        idle_gap_ms: gvm.idle_gap.as_millis_f64(),
        clean: result.analysis.as_ref().map(|r| r.is_clean()),
    }
}

/// The staggered-arrival headline comparison: mean per-rank turnaround of
/// every policy on an 8-process VectorAdd group whose ranks arrive half a
/// modeled service time apart.
pub struct Headline {
    /// Points in [`policies`] order.
    pub points: Vec<SchedPoint>,
    /// The stagger used.
    pub stagger: SimDuration,
    /// Best mean-turnaround improvement of `fcfs`/`adaptive` over
    /// `joint`, as a fraction (0.10 = 10 %).
    pub best_improvement: f64,
}

/// Run the headline experiment.
pub fn headline(base: &Scenario, scale_down: u32, analyze: bool) -> Headline {
    let n = 8;
    let id = BenchmarkId::VecAdd;
    let task = Benchmark::scaled_task(id, &base.device, scale_down.max(1));
    // Half the modeled single-cycle service time per rank of skew: enough
    // that the joint barrier idles the GPU for most of the window, small
    // enough that a real launcher plausibly produces it.
    let cost = estimate_cost_ms(&task, &base.device, &base.node);
    let stagger = SimDuration::from_millis_f64(cost * 0.5);
    let tasks = vec![task; n];
    let points: Vec<SchedPoint> = policies(n, &tasks, base)
        .into_iter()
        .map(|p| run_point(base, p, id, n, scale_down, stagger, analyze))
        .collect();
    let joint = points
        .iter()
        .find(|p| p.policy == "joint")
        .expect("joint policy in set")
        .mean_rank_ms;
    let best_improvement = points
        .iter()
        .filter(|p| p.policy == "fcfs" || p.policy == "adaptive")
        .map(|p| 1.0 - p.mean_rank_ms / joint)
        .fold(f64::MIN, f64::max);
    Headline {
        points,
        stagger,
        best_improvement,
    }
}

/// Run the full matrix plus the headline and render the artifact.
/// `clean` in the returned tuple is `false` if any analyzed trace had
/// diagnostics (always `true` when `analyze` is off).
pub fn sweep(base: &Scenario, scale_down: u32, analyze: bool) -> (Artifact, bool) {
    let mut csv = String::from(
        "experiment,policy,benchmark,nprocs,group_ms,mean_rank_ms,flushes,\
         partial_flushes,queue_depth_mean,idle_gap_ms,analyzed_clean\n",
    );
    let mut clean = true;
    let push = |csv: &mut String, experiment: &str, p: &SchedPoint| {
        csv.push_str(&format!(
            "{experiment},{},{},{},{:.3},{:.3},{},{},{:.2},{:.3},{}\n",
            p.policy,
            p.benchmark,
            p.nprocs,
            p.group_ms,
            p.mean_rank_ms,
            p.flushes,
            p.partial_flushes,
            p.queue_depth_mean,
            p.idle_gap_ms,
            p.clean.map(|c| c.to_string()).unwrap_or_default(),
        ));
    };

    let mut text = format!("SCHEDULING POLICY SWEEP (scale 1/{scale_down})\n\n");
    for id in BENCHMARKS {
        for n in PROCS {
            let task = Benchmark::scaled_task(id, &base.device, scale_down.max(1));
            let tasks = vec![task; n];
            let mut t = TextTable::new(vec![
                "policy",
                "group (ms)",
                "mean rank (ms)",
                "flushes",
                "partial",
                "mean depth",
                "idle gap (ms)",
            ]);
            for policy in policies(n, &tasks, base) {
                let p = run_point(base, policy, id, n, scale_down, SimDuration::ZERO, analyze);
                clean &= p.clean.unwrap_or(true);
                t.row(vec![
                    p.policy.to_string(),
                    ms(p.group_ms),
                    ms(p.mean_rank_ms),
                    p.flushes.to_string(),
                    p.partial_flushes.to_string(),
                    format!("{:.2}", p.queue_depth_mean),
                    ms(p.idle_gap_ms),
                ]);
                push(&mut csv, "matrix", &p);
            }
            text.push_str(&format!(
                "{} × {n} processes:\n{}\n",
                Benchmark::describe(id).name,
                t.render()
            ));
        }
    }

    let hl = headline(base, scale_down, analyze);
    let mut t = TextTable::new(vec!["policy", "mean rank (ms)", "vs joint", "flushes"]);
    let joint = hl
        .points
        .iter()
        .find(|p| p.policy == "joint")
        .expect("joint in headline")
        .mean_rank_ms;
    for p in &hl.points {
        clean &= p.clean.unwrap_or(true);
        t.row(vec![
            p.policy.to_string(),
            ms(p.mean_rank_ms),
            x(joint / p.mean_rank_ms),
            p.flushes.to_string(),
        ]);
        push(&mut csv, "staggered", p);
    }
    text.push_str(&format!(
        "HEADLINE — 8-process VectorAdd, arrivals staggered {} apart:\n{}\n\
         Best fcfs/adaptive improvement over joint (mean rank turnaround): {:.1}%\n",
        ms(hl.stagger.as_millis_f64()),
        t.render(),
        hl.best_improvement * 100.0
    ));

    (
        Artifact {
            name: "sched",
            text,
            csv,
        },
        clean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_vecadd_headline_beats_joint_by_10pct() {
        // The acceptance criterion, at smoke scale so the suite stays fast.
        let hl = headline(&Scenario::default(), 64, false);
        assert!(
            hl.best_improvement >= 0.10,
            "best fcfs/adaptive improvement {:.3} < 10%",
            hl.best_improvement
        );
    }

    #[test]
    fn lockstep_policies_all_complete_with_identical_group_shape() {
        let base = Scenario::default();
        let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &base.device, 256);
        let tasks = vec![task; 2];
        for policy in policies(2, &tasks, &base) {
            let p = run_point(
                &base,
                policy,
                BenchmarkId::VecAdd,
                2,
                256,
                SimDuration::ZERO,
                false,
            );
            assert!(p.group_ms > 0.0);
            assert!(p.flushes >= 1, "{}: no flush", p.policy);
        }
    }
}

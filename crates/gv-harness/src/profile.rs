//! Microbenchmark profiling — regenerates Table II.
//!
//! Methodology (mirroring the paper's):
//! * `Tdata_in`, `Tcomp`, `Tdata_out`: single-process conventional run,
//!   phases measured at the process (`Tcomp` spans launch → completion via
//!   an explicit stream synchronize);
//! * `Tinit`: 8-process conventional run, time until the last process
//!   finishes device/context initialization (driver-serialized);
//! * `Tctx_switch`: 8-process conventional run, mean of the device's
//!   charged context-switch costs.

use gv_kernels::{Benchmark, BenchmarkId};
use gv_model::ExecutionProfile;
use serde::Serialize;

use crate::scenario::{ExecutionMode, Scenario};

/// A measured Table II column, plus the geometry rows.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredProfile {
    /// Benchmark name.
    pub benchmark: String,
    /// Problem-size string (catalogue).
    pub problem_size: String,
    /// Grid size (catalogue).
    pub grid_size: u64,
    /// The measured model parameters (ms).
    pub profile: ExecutionProfile,
}

/// Profile one benchmark (paper-sized when `scale_down <= 1`).
pub fn measure(scenario: &Scenario, id: BenchmarkId, scale_down: u32) -> MeasuredProfile {
    let desc = Benchmark::describe(id);
    let task = if scale_down <= 1 {
        Benchmark::paper_task(id, &scenario.device)
    } else {
        Benchmark::scaled_task(id, &scenario.device, scale_down)
    };

    // Phase measurements: clean single-process run.
    let single = scenario.run_uniform(ExecutionMode::Direct, &task, 1);
    let run = &single.runs[0];

    // Initialization and switching: contended 8-process run.
    let n = scenario.node.cores;
    let group = scenario.run_uniform(ExecutionMode::Direct, &task, n);
    let t_init = group.t_init_total();
    let switches = group.device.ctx_switches.max(1);
    let t_ctx_switch = group.device.ctx_switch_time.as_millis_f64() / switches as f64;

    MeasuredProfile {
        benchmark: desc.name.to_string(),
        problem_size: desc.problem_size.to_string(),
        grid_size: desc.grid_size,
        profile: ExecutionProfile {
            t_init,
            t_ctx_switch,
            t_data_in: run.t_data_in(),
            t_comp: run.t_comp(),
            t_data_out: run.t_data_out(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline calibration check: the simulated Table II must land on
    /// the paper's published VectorAdd column.
    #[test]
    fn vecadd_profile_matches_table2() {
        let sc = Scenario::default();
        let m = measure(&sc, BenchmarkId::VecAdd, 1);
        let p = &m.profile;
        let close = |got: f64, want: f64, tol_frac: f64, what: &str| {
            let err = (got - want).abs() / want.max(1e-9);
            assert!(
                err < tol_frac,
                "{what}: got {got}, paper {want} ({:.1}% off)",
                err * 100.0
            );
        };
        close(p.t_init, 1519.386, 0.01, "Tinit");
        close(p.t_data_in, 135.874, 0.02, "Tdata_in");
        close(p.t_comp, 0.038, 0.15, "Tcomp");
        close(p.t_data_out, 66.656, 0.02, "Tdata_out");
        close(p.t_ctx_switch, 148.226, 0.02, "Tctx_switch");
    }

    /// EP column.
    #[test]
    fn ep_profile_matches_table2() {
        let sc = Scenario::default();
        let m = measure(&sc, BenchmarkId::Ep, 1);
        let p = &m.profile;
        assert!(
            (p.t_init - 1519.4).abs() / 1519.4 < 0.01,
            "Tinit = {}",
            p.t_init
        );
        assert_eq!(p.t_data_in, 0.0, "EP stages no input");
        assert!(
            (p.t_comp - 8951.346).abs() / 8951.346 < 0.01,
            "Tcomp = {}",
            p.t_comp
        );
        // Paper prints ~0 (55 ns); our DMA latency floor gives ~0.03 ms.
        assert!(p.t_data_out < 0.1, "Tdata_out = {}", p.t_data_out);
        assert!(
            (p.t_ctx_switch - 220.599).abs() / 220.599 < 0.02,
            "Tctx_switch = {}",
            p.t_ctx_switch
        );
    }
}

//! Device-sensitivity study (extension): how do the paper's speedups move
//! across Fermi-generation devices and node widths?
//!
//! The paper evaluates one device (Tesla C2070) and one node width (8
//! cores). Because the virtualization gain is a function of *asymmetry* —
//! how much idle GPU a single process leaves — both knobs matter for
//! anyone provisioning CPU:GPU ratios. This module sweeps them.

use gv_gpu::DeviceConfig;
use gv_kernels::BenchmarkId;
use serde::Serialize;

use crate::scenario::Scenario;
use crate::turnaround;

/// Speedup of one benchmark at `nprocs` on one device preset.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivityPoint {
    /// Device preset name.
    pub device: &'static str,
    /// Benchmark name.
    pub benchmark: String,
    /// Process count.
    pub nprocs: usize,
    /// Virtualization speedup.
    pub speedup: f64,
}

/// The device presets swept.
pub fn presets() -> Vec<DeviceConfig> {
    vec![
        DeviceConfig::tesla_c2070_paper(),
        DeviceConfig::tesla_c2050(),
        DeviceConfig::gtx_480(),
    ]
}

/// Sweep benchmarks × presets at a fixed node width.
pub fn device_sweep(
    base: &Scenario,
    benchmarks: &[BenchmarkId],
    nprocs: usize,
    scale_down: u32,
) -> Vec<SensitivityPoint> {
    let mut out = Vec::new();
    for device in presets() {
        let scenario = Scenario {
            device: device.clone(),
            ..base.clone()
        };
        for &id in benchmarks {
            let p = turnaround::at_n(&scenario, id, nprocs, scale_down);
            out.push(SensitivityPoint {
                device: device.name,
                benchmark: gv_kernels::Benchmark::describe(id).name.to_string(),
                nprocs,
                speedup: p.speedup(),
            });
        }
    }
    out
}

/// Sweep node widths (1..=max cores) on the paper device for one benchmark.
pub fn width_sweep(
    base: &Scenario,
    id: BenchmarkId,
    widths: &[usize],
    scale_down: u32,
) -> Vec<SensitivityPoint> {
    widths
        .iter()
        .map(|&n| {
            let p = turnaround::at_n(base, id, n, scale_down);
            SensitivityPoint {
                device: base.device.name,
                benchmark: gv_kernels::Benchmark::describe(id).name.to_string(),
                nprocs: n,
                speedup: p.speedup(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_devices() {
        let p = presets();
        assert_eq!(p.len(), 3);
        let names: Vec<_> = p.iter().map(|d| d.name).collect();
        assert!(names.contains(&"GeForce GTX 480"));
    }

    #[test]
    fn ep_speedup_grows_with_width_on_every_preset() {
        let sc = Scenario::default();
        let pts = width_sweep(&sc, BenchmarkId::Ep, &[2, 4], 64);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].speedup > pts[0].speedup,
            "EP speedup should grow with node width: {pts:?}"
        );
    }

    #[test]
    fn device_sweep_covers_grid() {
        let sc = Scenario::default();
        let pts = device_sweep(&sc, &[BenchmarkId::Ep], 2, 64);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.speedup > 1.0, "{p:?}");
        }
    }
}

//! Engine timelines: auditing the overlap the paper's Figs. 4–6 illustrate.
//!
//! With tracing enabled, the device scheduler records spans for every DMA
//! transfer, kernel, and context switch. This module reconstructs them into
//! a per-engine timeline, renders an ASCII Gantt chart (the reproduction of
//! the paper's Fig. 4 / Fig. 5–6 execution diagrams), and computes overlap
//! facts that tests assert on: under virtualization, transfers of one
//! process overlap kernels of another; under conventional sharing, context
//! episodes strictly serialize.

use gv_sim::trace::Span;
use gv_sim::SimTime;

/// All spans of one run, split by engine.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// H2D engine transfers.
    pub h2d: Vec<Span>,
    /// D2H engine transfers.
    pub d2h: Vec<Span>,
    /// Kernel window residencies.
    pub kernels: Vec<Span>,
    /// Context-switch intervals.
    pub switches: Vec<Span>,
}

impl Timeline {
    /// Split a tracer's spans by category.
    pub fn from_tracer(tracer: &gv_sim::Tracer) -> Timeline {
        Timeline {
            h2d: tracer.spans("h2d"),
            d2h: tracer.spans("d2h"),
            kernels: tracer.spans("kernel"),
            switches: tracer.spans("ctx-switch"),
        }
    }

    /// Earliest span start.
    pub fn start(&self) -> SimTime {
        self.all().map(|s| s.start).min().unwrap_or(SimTime::ZERO)
    }

    /// Latest span end.
    pub fn end(&self) -> SimTime {
        self.all().map(|s| s.end).max().unwrap_or(SimTime::ZERO)
    }

    fn all(&self) -> impl Iterator<Item = &Span> {
        self.h2d
            .iter()
            .chain(&self.d2h)
            .chain(&self.kernels)
            .chain(&self.switches)
    }

    /// Do any two kernel spans (from different streams) overlap? — the
    /// concurrent-kernel-execution witness.
    pub fn kernels_overlap(&self) -> bool {
        for (i, a) in self.kernels.iter().enumerate() {
            for b in &self.kernels[i + 1..] {
                if a.track != b.track && a.overlaps(b) {
                    return true;
                }
            }
        }
        false
    }

    /// Does any transfer overlap any kernel of a *different* stream? — the
    /// copy/compute-overlap witness.
    pub fn copy_overlaps_foreign_kernel(&self) -> bool {
        self.h2d.iter().chain(&self.d2h).any(|c| {
            self.kernels
                .iter()
                .any(|k| k.track != c.track && c.overlaps(k))
        })
    }

    /// Does any H2D transfer overlap any D2H transfer? — the bidirectional
    /// DMA witness.
    pub fn bidirectional_overlap(&self) -> bool {
        self.h2d
            .iter()
            .any(|a| self.d2h.iter().any(|b| a.overlaps(b)))
    }

    /// Total busy time of a span list in ms.
    pub fn busy_ms(spans: &[Span]) -> f64 {
        spans.iter().map(|s| s.duration().as_millis_f64()).sum()
    }

    /// Render an ASCII Gantt chart with `width` columns: one row per
    /// engine lane (H2D / D2H / one lane per kernel stream / switches).
    pub fn render_gantt(&self, width: usize) -> String {
        let start = self.start();
        let end = self.end();
        let total = end.duration_since(start).as_secs_f64();
        if total <= 0.0 {
            return String::from("(empty timeline)\n");
        }
        let col = |t: SimTime| -> usize {
            let frac = t.duration_since(start).as_secs_f64() / total;
            ((frac * width as f64) as usize).min(width - 1)
        };
        let mut out = String::new();
        let mut lane = |label: String, spans: &[Span], ch: char| {
            let mut row = vec![' '; width];
            for s in spans {
                let (a, b) = (col(s.start), col(s.end));
                for c in row.iter_mut().take(b + 1).skip(a) {
                    *c = ch;
                }
            }
            out.push_str(&format!(
                "{label:>12} |{}|\n",
                row.iter().collect::<String>()
            ));
        };
        lane("H2D".to_string(), &self.h2d, '=');
        lane("D2H".to_string(), &self.d2h, '-');
        let mut tracks: Vec<u32> = self.kernels.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in tracks {
            let spans: Vec<Span> = self
                .kernels
                .iter()
                .filter(|s| s.track == t)
                .cloned()
                .collect();
            lane(format!("kernel s{t}"), &spans, '#');
        }
        lane("ctx switch".to_string(), &self.switches, 'X');
        out.push_str(&format!(
            "{:>12}  0 ms {:>width$.1} ms\n",
            "",
            end.duration_since(start).as_millis_f64(),
            width = width.saturating_sub(4)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::trace::TraceKind;
    use gv_sim::{SimDuration, Tracer};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tracer_with(spans: &[(&'static str, &str, u32, u64, u64)]) -> Tracer {
        let tr = Tracer::new();
        tr.set_enabled(true);
        for &(cat, label, track, a, b) in spans {
            tr.record(t(a), cat, label, TraceKind::Begin, track);
            tr.record(t(b), cat, label, TraceKind::End, track);
        }
        tr
    }

    #[test]
    fn overlap_witnesses() {
        // Kernel on stream 1 [0,10]; H2D on stream 2 [5,8]; kernel on
        // stream 2 [8,12].
        let tr = tracer_with(&[
            ("kernel", "k-1", 1, 0, 10),
            ("h2d", "cmd-2", 2, 5, 8),
            ("kernel", "k-2", 2, 8, 12),
        ]);
        let tl = Timeline::from_tracer(&tr);
        assert!(tl.kernels_overlap());
        assert!(tl.copy_overlaps_foreign_kernel());
        assert!(!tl.bidirectional_overlap());
        assert_eq!(tl.end(), t(12));
    }

    #[test]
    fn serialized_timeline_has_no_overlap() {
        let tr = tracer_with(&[
            ("kernel", "k-1", 1, 0, 5),
            ("ctx-switch", "to-ctx-2", 0, 5, 7),
            ("kernel", "k-2", 2, 7, 12),
        ]);
        let tl = Timeline::from_tracer(&tr);
        assert!(!tl.kernels_overlap());
        assert!(!tl.copy_overlaps_foreign_kernel());
        assert_eq!(Timeline::busy_ms(&tl.switches), 2.0);
    }

    #[test]
    fn gantt_renders_lanes() {
        let tr = tracer_with(&[("h2d", "cmd-1", 1, 0, 4), ("kernel", "k-1", 1, 4, 10)]);
        let tl = Timeline::from_tracer(&tr);
        let g = tl.render_gantt(40);
        assert!(g.contains("H2D"));
        assert!(g.contains("kernel s1"));
        assert!(g.contains('='));
        assert!(g.contains('#'));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::default();
        assert_eq!(tl.render_gantt(40), "(empty timeline)\n");
    }
}

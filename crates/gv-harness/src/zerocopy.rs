//! Zero-copy descriptor-passing transport sweep — the `repro_zerocopy`
//! binary.
//!
//! Compares the staged-copy request path (the seed wire format, kept as a
//! config-selectable ablation) against the zero-copy transport — the GVM
//! exports each rank's pinned staging lease *as* its shm segment, hands
//! the client a generation-stamped descriptor at `REQ`/ACK, `SND` carries
//! only the descriptor, H2D issues straight from the lease, and `STR`
//! flush ACKs batch to one mq latency charge per flush — over payload
//! size at 8 processes.
//!
//! The headline metric is mean per-request *overhead*: the mean per-rank
//! turnaround of the virtualized run minus a single direct (unvirtualized)
//! execution of the same task, i.e. everything the transport adds on top
//! of raw device time. The acceptance gate is that zero-copy's overhead
//! is strictly below the staged ablation's at every swept payload.
//!
//! With `analyze` on, every point's trace runs the full `gv-analyze`
//! suite — including the staging checker's descriptor-currency and
//! write-after-`SND` rules.

use gv_model::request_overhead;
use gv_virt::MemConfig;

use crate::pipeline::payload_task;
use crate::report::{ms, pct, TextTable};
use crate::repro::Artifact;
use crate::scenario::{ExecutionMode, Scenario};

/// Staged input payload sizes (MiB per rank) — the ISSUE's acceptance
/// points.
pub const PAYLOADS_MIB: [u64; 3] = [1, 16, 64];

/// Process count for every swept point.
pub const NPROCS: usize = 8;

/// One payload-size measurement: staged ablation vs zero-copy transport.
pub struct ZeroCopyPoint {
    /// Staged input payload per rank, MiB.
    pub payload_mib: f64,
    /// Process count.
    pub nprocs: usize,
    /// Post-init turnaround (`end − init_done`) of one direct
    /// (unvirtualized, single process) execution — the raw-device
    /// baseline the overheads are measured against. Initialization is
    /// excluded: it is one-time, not per-request.
    pub direct_ms: f64,
    /// Mean per-rank turnaround, staged-copy ablation (ms).
    pub staged_rank_ms: f64,
    /// Mean per-rank turnaround, zero-copy transport (ms).
    pub zc_rank_ms: f64,
    /// GVM staging-copy time under the ablation (shm→pinned + pinned→shm).
    pub staged_copy_ms: f64,
    /// GVM staging-copy time under zero-copy (the dropped copies; ~0).
    pub zc_copy_ms: f64,
    /// `SND` staging copies the GVM performed under the ablation.
    pub staged_snd_copies: u64,
    /// `SND` staging copies under zero-copy (must be 0).
    pub zc_snd_copies: u64,
    /// `gv-analyze` verdict over both virtualized traces (`None` when
    /// analysis is off).
    pub clean: Option<bool>,
}

impl ZeroCopyPoint {
    /// Mean per-request overhead of the staged ablation (ms).
    pub fn staged_overhead(&self) -> f64 {
        self.staged_rank_ms - self.direct_ms
    }

    /// Mean per-request overhead of the zero-copy transport (ms).
    pub fn zc_overhead(&self) -> f64 {
        self.zc_rank_ms - self.direct_ms
    }

    /// Overhead reduction over the staged ablation, as a fraction.
    pub fn improvement(&self) -> f64 {
        1.0 - self.zc_overhead() / self.staged_overhead()
    }
}

/// Run one payload point: the direct baseline once, then the virtualized
/// group under the staged ablation and under the zero-copy transport.
pub fn run_point(base: &Scenario, payload_bytes: u64, n: usize, analyze: bool) -> ZeroCopyPoint {
    let run = |mem: MemConfig| {
        let scenario = Scenario {
            analyze,
            ..base.clone()
        }
        .with_mem(mem);
        let task = payload_task(&scenario, payload_bytes);
        scenario.run_uniform(ExecutionMode::Virtualized, &task, n)
    };
    let direct = {
        let scenario = base.clone();
        let task = payload_task(&scenario, payload_bytes);
        scenario.run_uniform(ExecutionMode::Direct, &task, 1)
    };
    let staged = run(MemConfig::zero_copy().with_zero_copy(false));
    let zc = run(MemConfig::zero_copy());
    let sg = staged.gvm.as_ref().expect("virtualized run has GVM stats");
    let zg = zc.gvm.as_ref().expect("virtualized run has GVM stats");
    let mean = |r: &crate::scenario::ExperimentResult| {
        r.mean_phase(|t| t.end.duration_since(t.start).as_millis_f64())
    };
    let clean = match (
        staged.analysis.as_ref().map(|r| r.is_clean()),
        zc.analysis.as_ref().map(|r| r.is_clean()),
    ) {
        (Some(s), Some(z)) => Some(s && z),
        _ => None,
    };
    ZeroCopyPoint {
        payload_mib: payload_bytes as f64 / (1 << 20) as f64,
        nprocs: n,
        direct_ms: direct.mean_phase(|t| t.end.duration_since(t.init_done).as_millis_f64()),
        staged_rank_ms: mean(&staged),
        zc_rank_ms: mean(&zc),
        staged_copy_ms: sg.copy_time.as_millis_f64(),
        zc_copy_ms: zg.copy_time.as_millis_f64(),
        staged_snd_copies: sg.snd_copies,
        zc_snd_copies: zg.snd_copies,
        clean,
    }
}

/// Render the machine-readable benchmark record (`BENCH_zerocopy.json`).
pub fn bench_json(points: &[ZeroCopyPoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"zerocopy\",\n");
    out.push_str(&format!(
        "  \"nprocs\": {},\n  \"points\": [\n",
        points.first().map_or(NPROCS, |p| p.nprocs)
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload_mib\": {:.3}, \"staged_overhead_ms\": {:.6}, \
             \"zerocopy_overhead_ms\": {:.6}, \"improvement\": {:.4}, \
             \"staged_gvm_copy_ms\": {:.6}, \"zerocopy_gvm_copy_ms\": {:.6}, \
             \"zerocopy_snd_copies\": {}}}{}\n",
            p.payload_mib,
            p.staged_overhead(),
            p.zc_overhead(),
            p.improvement(),
            p.staged_copy_ms,
            p.zc_copy_ms,
            p.zc_snd_copies,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the sweep; returns the artifact, the `BENCH_zerocopy.json` record,
/// and whether every analyzed trace was clean.
pub fn sweep(base: &Scenario, scale_down: u32, analyze: bool) -> (Artifact, String, bool) {
    let mut csv = String::from(
        "payload_mib,nprocs,direct_ms,staged_rank_ms,zc_rank_ms,\
         staged_overhead_ms,zc_overhead_ms,improvement,staged_copy_ms,\
         zc_copy_ms,staged_snd_copies,zc_snd_copies,analyzed_clean\n",
    );
    let mut clean = true;
    let mut points = Vec::new();
    let mut t = TextTable::new(vec![
        "payload (MiB)",
        "staged ovh (ms)",
        "zero-copy ovh (ms)",
        "improvement",
        "GVM copy staged/zc (ms)",
    ]);
    for &mib in &PAYLOADS_MIB {
        let payload = (mib << 20) / u64::from(scale_down.max(1));
        let p = run_point(base, payload, NPROCS, analyze);
        clean &= p.clean.unwrap_or(true);
        t.row(vec![
            format!("{:.2}", p.payload_mib),
            ms(p.staged_overhead()),
            ms(p.zc_overhead()),
            pct(p.improvement()),
            format!("{} / {}", ms(p.staged_copy_ms), ms(p.zc_copy_ms)),
        ]);
        csv.push_str(&format!(
            "{:.3},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{:.3},{:.3},{},{},{}\n",
            p.payload_mib,
            p.nprocs,
            p.direct_ms,
            p.staged_rank_ms,
            p.zc_rank_ms,
            p.staged_overhead(),
            p.zc_overhead(),
            p.improvement(),
            p.staged_copy_ms,
            p.zc_copy_ms,
            p.staged_snd_copies,
            p.zc_snd_copies,
            p.clean.map(|c| c.to_string()).unwrap_or_default(),
        ));
        points.push(p);
    }
    // The analytical side of the same comparison (gv-model's
    // `request_overhead` term): per-byte copy rate and mq latency are
    // arbitrary units here — the point is the *shape* of the predicted
    // gap, which the measured table must reproduce.
    let mut m = TextTable::new(vec!["payload (MiB)", "model staged", "model zero-copy"]);
    for &mib in &PAYLOADS_MIB {
        let bytes = (mib << 20) as f64;
        // VectorAdd-shaped: output is half the input payload.
        let (r, l) = (1e-6, 0.02);
        m.row(vec![
            format!("{mib}"),
            ms(request_overhead(
                bytes,
                bytes / 2.0,
                r,
                l,
                NPROCS as u32,
                false,
            )),
            ms(request_overhead(
                bytes,
                bytes / 2.0,
                r,
                l,
                NPROCS as u32,
                true,
            )),
        ]);
    }
    let text = format!(
        "ZERO-COPY TRANSPORT SWEEP (scale 1/{scale_down})\n\n\
         Mean per-request overhead over direct execution, {NPROCS} processes,\n\
         staged-copy ablation vs descriptor-passing zero-copy transport:\n{}\n\
         Model prediction (gv-model request_overhead, arbitrary units):\n{}\n\
         Zero-copy drops both GVM staging copies (shm→pinned at SND,\n\
         pinned→shm at RCV) and batches STR flush ACKs to one mq latency\n\
         charge per flush; the client's shm write IS the staging copy.\n",
        t.render(),
        m.render(),
    );
    let json = bench_json(&points);
    (
        Artifact {
            name: "zerocopy",
            text,
            csv,
        },
        json,
        clean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_overhead_strictly_below_staged_at_every_payload() {
        // The ISSUE's acceptance gate, at full payload (timing-only tasks
        // make 64 MiB free to simulate).
        for &mib in &PAYLOADS_MIB {
            let p = run_point(&Scenario::default(), mib << 20, NPROCS, false);
            assert!(
                p.zc_overhead() < p.staged_overhead(),
                "{mib} MiB: zero-copy overhead {:.4} ms must be strictly \
                 below staged {:.4} ms",
                p.zc_overhead(),
                p.staged_overhead()
            );
            assert_eq!(p.zc_snd_copies, 0, "zero-copy must not stage at SND");
            assert!(p.staged_snd_copies > 0);
            assert_eq!(p.zc_copy_ms, 0.0, "no GVM-side staging copies under zc");
        }
    }

    #[test]
    fn zero_copy_traces_are_analyze_clean() {
        let p = run_point(&Scenario::default(), 1 << 20, 4, true);
        assert_eq!(p.clean, Some(true));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let (_, json, _) = sweep(&Scenario::default(), 256, false);
        assert!(json.contains("\"bench\": \"zerocopy\""));
        assert_eq!(json.matches("\"payload_mib\":").count(), PAYLOADS_MIB.len());
        assert!(json.contains("\"zerocopy_overhead_ms\""));
    }
}

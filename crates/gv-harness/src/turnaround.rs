//! Turnaround-time experiments: the machinery behind Figs. 9 and 11–16
//! and the experimental half of Table III.

use gv_kernels::{Benchmark, BenchmarkId};
use serde::Serialize;

use crate::scenario::{ExecutionMode, Scenario};

/// Configuration of a turnaround sweep for one benchmark.
#[derive(Debug, Clone)]
pub struct TurnaroundConfig {
    /// Which benchmark.
    pub benchmark: BenchmarkId,
    /// Largest process count (the paper sweeps 1–8).
    pub max_procs: usize,
    /// Cost divisor for quick runs (1 = paper-sized).
    pub scale_down: u32,
}

impl TurnaroundConfig {
    /// Paper-sized sweep over 1–8 processes.
    pub fn paper(benchmark: BenchmarkId) -> Self {
        TurnaroundConfig {
            benchmark,
            max_procs: 8,
            scale_down: 1,
        }
    }
}

/// One point of a turnaround series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TurnaroundPoint {
    /// Process count.
    pub nprocs: usize,
    /// Conventional-sharing turnaround, ms.
    pub no_vt_ms: f64,
    /// Virtualized turnaround, ms.
    pub vt_ms: f64,
}

impl TurnaroundPoint {
    /// Speedup at this process count.
    pub fn speedup(&self) -> f64 {
        self.no_vt_ms / self.vt_ms
    }
}

/// A complete sweep (one paper figure's data).
#[derive(Debug, Clone, Serialize)]
pub struct TurnaroundSeries {
    /// Benchmark name.
    pub benchmark: String,
    /// Points for `n = 1..=max_procs`.
    pub points: Vec<TurnaroundPoint>,
}

impl TurnaroundSeries {
    /// Speedup at the largest process count (the paper's Fig. 16 bars).
    pub fn final_speedup(&self) -> f64 {
        self.points.last().expect("non-empty sweep").speedup()
    }
}

/// Run both modes for `n = 1..=max_procs` (a Fig. 9 / Fig. 11–15 series).
pub fn sweep(scenario: &Scenario, cfg: &TurnaroundConfig) -> TurnaroundSeries {
    let task = if cfg.scale_down <= 1 {
        Benchmark::paper_task(cfg.benchmark, &scenario.device)
    } else {
        Benchmark::scaled_task(cfg.benchmark, &scenario.device, cfg.scale_down)
    };
    let mut points = Vec::with_capacity(cfg.max_procs);
    for n in 1..=cfg.max_procs {
        let direct = scenario.run_uniform(ExecutionMode::Direct, &task, n);
        let virt = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
        points.push(TurnaroundPoint {
            nprocs: n,
            no_vt_ms: direct.turnaround_ms,
            vt_ms: virt.turnaround_ms,
        });
    }
    TurnaroundSeries {
        benchmark: Benchmark::describe(cfg.benchmark).name.to_string(),
        points,
    }
}

/// Run both modes at a single process count (a Table III / Fig. 16 entry).
pub fn at_n(
    scenario: &Scenario,
    benchmark: BenchmarkId,
    n: usize,
    scale_down: u32,
) -> TurnaroundPoint {
    let task = if scale_down <= 1 {
        Benchmark::paper_task(benchmark, &scenario.device)
    } else {
        Benchmark::scaled_task(benchmark, &scenario.device, scale_down)
    };
    let direct = scenario.run_uniform(ExecutionMode::Direct, &task, n);
    let virt = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
    TurnaroundPoint {
        nprocs: n,
        no_vt_ms: direct.turnaround_ms,
        vt_ms: virt.turnaround_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_nprocs() {
        let sc = Scenario::default();
        let cfg = TurnaroundConfig {
            benchmark: BenchmarkId::VecAdd,
            max_procs: 3,
            scale_down: 200,
        };
        let series = sweep(&sc, &cfg);
        assert_eq!(series.points.len(), 3);
        for (i, p) in series.points.iter().enumerate() {
            assert_eq!(p.nprocs, i + 1);
            assert!(p.no_vt_ms > 0.0 && p.vt_ms > 0.0);
        }
        // Conventional turnaround grows with n (ctx switches accumulate).
        assert!(series.points[2].no_vt_ms > series.points[0].no_vt_ms);
        // Virtualization wins by n = 3.
        assert!(series.final_speedup() > 1.0);
    }

    #[test]
    fn at_n_matches_sweep_point() {
        let sc = Scenario::default();
        let p = at_n(&sc, BenchmarkId::VecAdd, 2, 200);
        assert_eq!(p.nprocs, 2);
        assert!(p.speedup() > 0.5);
    }
}

//! Plain-text tables, CSV, and JSON emission for the repro binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A fixed-width text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(line, "| {:<w$} ", cell, w = widths[c]);
            }
            line.push('|');
            line
        };
        let header = fmt_row(&self.headers, &widths);
        let sep: String = header
            .chars()
            .map(|ch| if ch == '|' { '+' } else { '-' })
            .collect();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&header);
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| s.replace(',', ";");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

/// Format a ratio/speedup.
pub fn x(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Write results (text + csv + json) under `results/` next to the binary's
/// working directory; best-effort (prints a warning on failure).
pub fn save(name: &str, text: &str, csv: Option<&str>, json: Option<&str>) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create results/; skipping file output");
        return;
    }
    let write = |ext: &str, content: &str| {
        let path = dir.join(format!("{name}.{ext}"));
        if std::fs::write(&path, content).is_err() {
            eprintln!("warning: cannot write {}", path.display());
        }
    };
    write("txt", text);
    if let Some(c) = csv {
        write("csv", c);
    }
    if let Some(j) = json {
        write("json", j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]).row(vec!["b", "12345"]);
        let s = t.render();
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert!(s.starts_with("+"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["a,b"]);
        t.row(vec!["x,y"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a;b\nx;y\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1519.386), "1519.4");
        assert_eq!(ms(8.9), "8.900");
        assert_eq!(ms(0.038), "0.038000");
        assert_eq!(x(2.3), "2.300");
        assert_eq!(pct(0.183), "18.30%");
    }
}

//! The cluster placement sweep behind the `repro_cluster` binary.
//!
//! One experiment: a fixed 128-session workload — a heterogeneous mix of
//! VectorAdd / EP / MM / BlackScholes sessions across four tenants, with
//! a quarter of the sessions grouped into 4-wide gangs — placed over
//! {8, 16, 32} simulated C2070 devices by every [`PlacePolicy`]. The
//! interesting comparisons:
//!
//! * **Turnaround distribution** — p50/p95/mean session turnaround.
//!   BinPack concentrates load (fewer devices, more queueing); Spread
//!   and DRF flatten the tail.
//! * **Device utilization** — busy fraction per device (SM + copy
//!   engines over the makespan). BinPack drives fewer devices harder;
//!   Spread touches all of them lightly.
//! * **Placement shape** — admission waves, deferral events, and the
//!   per-device session spread (min–max).
//!
//! With `analyze` on, every point also records its trace and is gated on
//! the `gv-analyze` checkers, including the cluster co-residency linter.

use gv_cuda::CudaDevice;
use gv_gpu::{DeviceConfig, GpuDevice};
use gv_ipc::Node;
use gv_kernels::{Benchmark, BenchmarkId};
use gv_sim::Simulation;
use gv_virt::{Cluster, ClusterConfig, MemQuota, PlacePolicy, VgpuRequest};

use crate::report::{ms, pct, TextTable};
use crate::repro::Artifact;
use crate::scenario::Scenario;

/// Sessions per sweep point (fixed across device counts so the policy
/// comparison holds the workload constant).
pub const SESSIONS: usize = 128;

/// Device counts the sweep covers.
pub const DEVICES: [usize; 3] = [8, 16, 32];

/// Tenants the workload is spread across.
pub const TENANTS: u64 = 4;

/// Number of all-or-nothing gangs in the workload.
pub const GANGS: u64 = 12;

/// Sessions per gang.
pub const GANG_SIZE: u64 = 4;

/// Benchmark rotation: I/O-bound, compute-bound, and two in between.
const MIX: [BenchmarkId; 4] = [
    BenchmarkId::VecAdd,
    BenchmarkId::Ep,
    BenchmarkId::Mm,
    BenchmarkId::BlackScholes,
];

/// Build the fixed 128-session workload: the first `GANGS × GANG_SIZE`
/// requests form 4-wide single-tenant gangs (gang `g` runs benchmark
/// `MIX[g % 4]`), the rest are singletons rotating tenant and benchmark
/// by request id. Deterministic — every policy and device count places
/// the identical request stream.
pub fn requests(cfg: &DeviceConfig, scale_down: u32) -> Vec<VgpuRequest> {
    (0..SESSIONS as u64)
        .map(|i| {
            let (tenant, gang, bench) = if i < GANGS * GANG_SIZE {
                let g = i / GANG_SIZE;
                // Gang members must share a tenant.
                (g % TENANTS, Some(g + 1), MIX[(g % 4) as usize])
            } else {
                (i % TENANTS, None, MIX[(i % 4) as usize])
            };
            VgpuRequest {
                id: i,
                tenant,
                gang,
                quota: MemQuota::Unlimited,
                task: Benchmark::scaled_task(bench, cfg, scale_down.max(1)),
            }
        })
        .collect()
}

/// One policy × device-count measurement.
pub struct ClusterPoint {
    /// Policy label.
    pub policy: &'static str,
    /// Devices in the cluster.
    pub devices: usize,
    /// Sessions placed.
    pub sessions: usize,
    /// Admission waves executed.
    pub waves: u32,
    /// Deferral events during planning.
    pub deferred_groups: u64,
    /// GVM instances booted.
    pub gvms: u64,
    /// Cluster makespan (end of simulation) in ms.
    pub makespan_ms: f64,
    /// Median session turnaround (end − start) in ms.
    pub p50_ms: f64,
    /// 95th-percentile session turnaround in ms.
    pub p95_ms: f64,
    /// Mean session turnaround in ms.
    pub mean_ms: f64,
    /// Mean per-device busy fraction over the makespan.
    pub util_mean: f64,
    /// Least-busy device's busy fraction.
    pub util_min: f64,
    /// Busiest device's busy fraction.
    pub util_max: f64,
    /// Fewest sessions any device hosted.
    pub sessions_min: u64,
    /// Most sessions any device hosted.
    pub sessions_max: u64,
    /// `gv-analyze` verdict (`None` when analysis is off).
    pub clean: Option<bool>,
}

/// Nearest-rank percentile of an unsorted sample, `q` in [0, 1].
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one policy × device-count point.
pub fn run_point(
    base: &Scenario,
    policy: PlacePolicy,
    ndev: usize,
    scale_down: u32,
    analyze: bool,
) -> ClusterPoint {
    let mut sim = Simulation::new();
    let tracer = sim.tracer();
    if analyze {
        tracer.set_analysis(true);
    }
    let devices: Vec<GpuDevice> = (0..ndev)
        .map(|_| GpuDevice::install(&mut sim, base.device.clone()))
        .collect();
    let cudas: Vec<CudaDevice> = devices.iter().map(|d| CudaDevice::new(d.clone())).collect();
    let node = Node::new(base.node.clone());
    let reqs = requests(&base.device, scale_down);
    let handle = Cluster::install(&mut sim, &node, &cudas, ClusterConfig::new(policy), reqs)
        .expect("feasible placement");
    let summary = sim.run().expect("cluster run completes");
    let results = handle.session_results();
    assert_eq!(results.len(), SESSIONS, "every session finished");
    let stats = handle.stats();

    let mut turnarounds: Vec<f64> = results
        .iter()
        .map(|s| s.run.end.duration_since(s.run.start).as_millis_f64())
        .collect();
    turnarounds.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = turnarounds.iter().sum::<f64>() / turnarounds.len() as f64;

    // Busy fraction: SM cycles (converted to seconds at the device clock)
    // plus copy-engine busy time, over the makespan. A coarse proxy — the
    // engines overlap — but it separates "driven hard" from "barely used".
    let makespan_ms = summary
        .end_time
        .duration_since(gv_sim::SimTime::ZERO)
        .as_millis_f64();
    let sm_hz = base.device.num_sms as f64 * base.device.clock_ghz * 1e9;
    let utils: Vec<f64> = devices
        .iter()
        .map(|d| {
            let s = d.stats();
            let sm_ms = s.sm_busy_cycles / sm_hz * 1e3;
            let busy_ms = sm_ms + s.h2d_busy.as_millis_f64() + s.d2h_busy.as_millis_f64();
            (busy_ms / makespan_ms).min(1.0)
        })
        .collect();
    let util_mean = utils.iter().sum::<f64>() / utils.len() as f64;
    let util_min = utils.iter().cloned().fold(f64::MAX, f64::min);
    let util_max = utils.iter().cloned().fold(f64::MIN, f64::max);

    let clean = analyze.then(|| {
        let report = gv_analyze::analyze(&tracer.analysis_snapshot());
        if !report.is_clean() {
            eprintln!(
                "{} × {ndev} devices: gv-analyze diagnostics:\n{}",
                policy.name(),
                report.render()
            );
        }
        report.is_clean()
    });

    ClusterPoint {
        policy: policy.name(),
        devices: ndev,
        sessions: results.len(),
        waves: stats.waves,
        deferred_groups: stats.deferred_groups,
        gvms: stats.gvms,
        makespan_ms,
        p50_ms: percentile(&turnarounds, 0.50),
        p95_ms: percentile(&turnarounds, 0.95),
        mean_ms,
        util_mean,
        util_min,
        util_max,
        sessions_min: stats.per_device_sessions.iter().copied().min().unwrap_or(0),
        sessions_max: stats.per_device_sessions.iter().copied().max().unwrap_or(0),
        clean,
    }
}

/// Run the full policy × device-count matrix. `clean` in the returned
/// tuple is `false` if any analyzed trace had diagnostics (always `true`
/// when `analyze` is off).
pub fn matrix(base: &Scenario, scale_down: u32, analyze: bool) -> (Vec<ClusterPoint>, bool) {
    let mut points = Vec::new();
    let mut clean = true;
    for ndev in DEVICES {
        for policy in PlacePolicy::all() {
            let p = run_point(base, policy, ndev, scale_down, analyze);
            clean &= p.clean.unwrap_or(true);
            points.push(p);
        }
    }
    (points, clean)
}

/// Render the artifact from a completed [`matrix`] run.
pub fn artifact(points: &[ClusterPoint], scale_down: u32) -> Artifact {
    let mut csv = String::from(
        "policy,devices,sessions,waves,deferred_groups,gvms,makespan_ms,\
         p50_ms,p95_ms,mean_ms,util_mean,util_min,util_max,\
         sessions_min,sessions_max,analyzed_clean\n",
    );
    let mut text = format!(
        "CLUSTER PLACEMENT SWEEP — {SESSIONS} sessions ({GANGS} gangs of \
         {GANG_SIZE}, {TENANTS} tenants) (scale 1/{scale_down})\n\n"
    );
    for ndev in DEVICES {
        let mut t = TextTable::new(vec![
            "policy",
            "waves",
            "p50 (ms)",
            "p95 (ms)",
            "mean (ms)",
            "makespan (ms)",
            "util mean",
            "util min–max",
            "sess/dev",
            "deferred",
        ]);
        for p in points.iter().filter(|p| p.devices == ndev) {
            t.row(vec![
                p.policy.to_string(),
                p.waves.to_string(),
                ms(p.p50_ms),
                ms(p.p95_ms),
                ms(p.mean_ms),
                ms(p.makespan_ms),
                pct(p.util_mean),
                format!("{}–{}", pct(p.util_min), pct(p.util_max)),
                format!("{}–{}", p.sessions_min, p.sessions_max),
                p.deferred_groups.to_string(),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4},{},{},{}\n",
                p.policy,
                p.devices,
                p.sessions,
                p.waves,
                p.deferred_groups,
                p.gvms,
                p.makespan_ms,
                p.p50_ms,
                p.p95_ms,
                p.mean_ms,
                p.util_mean,
                p.util_min,
                p.util_max,
                p.sessions_min,
                p.sessions_max,
                p.clean.map(|c| c.to_string()).unwrap_or_default(),
            ));
        }
        text.push_str(&format!("{ndev} devices:\n{}\n", t.render()));
    }
    text.push_str(
        "BinPack packs the fewest devices (highest util max, deepest\n\
         queues); Spread and DRF flatten per-device load; Gang holds\n\
         4-wide groups on one device, trading waves for co-residency.\n",
    );
    Artifact {
        name: "cluster",
        text,
        csv,
    }
}

/// Render the machine-readable record (`BENCH_cluster.json`).
pub fn bench_json(points: &[ClusterPoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"cluster_placement\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"devices\": {}, \"sessions\": {}, \
             \"waves\": {}, \"deferred_groups\": {}, \"gvms\": {}, \
             \"makespan_ms\": {:.6}, \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \
             \"mean_ms\": {:.6}, \"util_mean\": {:.4}, \"util_min\": {:.4}, \
             \"util_max\": {:.4}, \"sessions_min\": {}, \"sessions_max\": {}}}{}\n",
            p.policy,
            p.devices,
            p.sessions,
            p.waves,
            p.deferred_groups,
            p.gvms,
            p.makespan_ms,
            p.p50_ms,
            p.p95_ms,
            p.mean_ms,
            p.util_mean,
            p.util_min,
            p.util_max,
            p.sessions_min,
            p.sessions_max,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let reqs = requests(&cfg, 64);
        assert_eq!(reqs.len(), SESSIONS);
        // Gang members share a tenant; ids are dense and unique.
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            if let Some(g) = r.gang {
                assert_eq!(r.tenant, (g - 1) % TENANTS);
            }
        }
        let gangs: std::collections::HashSet<u64> = reqs.iter().filter_map(|r| r.gang).collect();
        assert_eq!(gangs.len(), GANGS as usize);
        // Every gang is exactly GANG_SIZE wide.
        for g in gangs {
            let width = reqs.iter().filter(|r| r.gang == Some(g)).count();
            assert_eq!(width, GANG_SIZE as usize);
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn one_point_runs_and_balances() {
        let base = Scenario::default();
        let p = run_point(&base, PlacePolicy::Spread, 8, 64, false);
        assert_eq!(p.sessions, SESSIONS);
        assert!(p.waves >= 1);
        assert!(p.p95_ms >= p.p50_ms);
        assert!(p.makespan_ms > 0.0);
        assert!(p.util_max <= 1.0 && p.util_min >= 0.0);
        // Spread balances: no device is idle while another hosts the lot.
        assert!(p.sessions_max > 0 && p.sessions_max - p.sessions_min <= SESSIONS as u64 / 2);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let base = Scenario::default();
        let p = run_point(&base, PlacePolicy::BinPack, 8, 64, false);
        let json = bench_json(&[p]);
        assert!(json.contains("\"bench\": \"cluster_placement\""));
        assert_eq!(json.matches("\"policy\":").count(), 1);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Single point → no trailing comma before the closing bracket.
        assert!(!json.contains("},\n  ]"));
    }
}

//! The `--analyze` repro pass: run representative scenarios with analysis
//! recording on and check every trace with the `gv-analyze` suite.
//!
//! Each scenario is analyzed separately (a trace is one run; protocol
//! stages and vector clocks do not compose across simulations). The pass
//! is a regression gate: every checked scenario must analyze clean, so CI
//! runs `repro_all --quick --analyze` and fails on any diagnostic.

use gv_kernels::{Benchmark, BenchmarkId};

use crate::scenario::{ExecutionMode, Scenario};

/// One analyzed scenario: its name, the checker report, and the raw
/// records (for `--dump-trace`).
pub struct AnalyzedScenario {
    /// Scenario label (`virt-vecadd-n4`, …).
    pub name: String,
    /// Combined report from all three checkers.
    pub report: gv_analyze::Report,
    /// The trace the report was computed from.
    pub records: Vec<gv_sim::AnalysisRecord>,
}

fn run_one(
    base: &Scenario,
    mode: ExecutionMode,
    id: BenchmarkId,
    n: usize,
    scale_down: u32,
) -> AnalyzedScenario {
    let task = Benchmark::scaled_task(id, &base.device, scale_down.max(1));
    let result = base.run_uniform(mode, &task, n);
    let tracer = result
        .tracer
        .as_ref()
        .expect("analysis scenario has tracer");
    let prefix = match mode {
        ExecutionMode::Direct => "direct",
        ExecutionMode::Virtualized => "virt",
    };
    AnalyzedScenario {
        name: format!(
            "{prefix}-{}-n{n}",
            Benchmark::describe(id).name.to_lowercase()
        ),
        report: result.analysis.expect("analysis scenario has report"),
        records: tracer.analysis_snapshot(),
    }
}

/// Run the analysis pass over a representative scenario set: virtualized
/// and direct execution, an I/O-bound and a compute-bound benchmark, at
/// small and full node width.
pub fn run_all(scale_down: u32) -> Vec<AnalyzedScenario> {
    let base = Scenario::analyzed();
    vec![
        run_one(
            &base,
            ExecutionMode::Virtualized,
            BenchmarkId::VecAdd,
            2,
            scale_down,
        ),
        run_one(
            &base,
            ExecutionMode::Virtualized,
            BenchmarkId::VecAdd,
            8,
            scale_down,
        ),
        run_one(
            &base,
            ExecutionMode::Virtualized,
            BenchmarkId::Ep,
            4,
            scale_down,
        ),
        run_one(
            &base,
            ExecutionMode::Direct,
            BenchmarkId::VecAdd,
            2,
            scale_down,
        ),
    ]
}

/// Render the pass result; returns `true` when every scenario is clean.
pub fn render(scenarios: &[AnalyzedScenario]) -> (String, bool) {
    use std::fmt::Write;
    let mut out = String::from("TRACE ANALYSIS (gv-analyze)\n\n");
    let mut clean = true;
    for s in scenarios {
        let _ = writeln!(out, "{}: {}", s.name, s.report.summary());
        for d in &s.report.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        clean &= s.report.is_clean();
    }
    let _ = writeln!(
        out,
        "\n{}",
        if clean {
            "all scenarios clean"
        } else {
            "DIAGNOSTICS FOUND — see above"
        }
    );
    (out, clean)
}

/// Dump every scenario's trace under `results/` in the `gv-analyze`
/// line format, one `trace-<name>.gvtrace` per scenario (best effort).
pub fn dump_traces(scenarios: &[AnalyzedScenario]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create results/; skipping trace dump");
        return;
    }
    for s in scenarios {
        let path = dir.join(format!("trace-{}.gvtrace", s.name));
        if std::fs::write(&path, gv_analyze::model::to_dump(&s.records)).is_err() {
            eprintln!("warning: cannot write {}", path.display());
        } else {
            println!("dumped {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_analysis_pass_is_clean() {
        let base = Scenario::analyzed();
        let s = run_one(
            &base,
            ExecutionMode::Virtualized,
            BenchmarkId::VecAdd,
            2,
            256,
        );
        assert!(s.report.is_clean(), "{}", s.report.render());
        assert!(s.report.proto_messages > 0);
        assert!(!s.records.is_empty());
        assert_eq!(s.name, "virt-vectoradd-n2");
    }

    #[test]
    fn render_reports_clean_verdict() {
        let base = Scenario::analyzed();
        let scenarios = vec![run_one(
            &base,
            ExecutionMode::Direct,
            BenchmarkId::VecAdd,
            2,
            256,
        )];
        let (text, clean) = render(&scenarios);
        assert!(clean, "{text}");
        assert!(text.contains("all scenarios clean"));
    }
}

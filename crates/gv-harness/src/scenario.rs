//! Assembling and running one multi-process experiment.
//!
//! A scenario is: one simulated node (8 Xeon cores), one simulated Tesla
//! C2070, `n` SPMD processes each running one [`GpuTask`], executed either
//! conventionally ([`ExecutionMode::Direct`]) or through the GVM
//! ([`ExecutionMode::Virtualized`]). The result carries per-process phase
//! timestamps, device statistics, and the group turnaround the paper plots.

use std::sync::Arc;

use gv_cuda::CudaDevice;
use gv_gpu::{DeviceConfig, DeviceStats, GpuDevice};
use gv_ipc::{Node, NodeConfig};
use gv_kernels::GpuTask;
use gv_sim::{OracleHandle, SimDuration, SimError, Simulation};
use gv_virt::{
    run_direct, Cluster, ClusterConfig, ClusterHandle, Gvm, GvmConfig, GvmHandle, GvmStats,
    MemConfig, MemQuota, PlacePolicy, SchedPolicy, TaskRun, VgpuClient, VgpuRequest,
};
use parking_lot::Mutex;

use crate::timeline::Timeline;

/// How the SPMD group accesses the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Conventional sharing: per-process contexts, device-serialized.
    Direct,
    /// Through the GPU Virtualization Manager.
    Virtualized,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Direct => write!(f, "no virtualization"),
            ExecutionMode::Virtualized => write!(f, "virtualization"),
        }
    }
}

/// Everything one experiment produced.
#[derive(Clone)]
pub struct ExperimentResult {
    /// Mode the group ran under.
    pub mode: ExecutionMode,
    /// Process count.
    pub nprocs: usize,
    /// Group turnaround in ms: `max(end) − min(start)` over all processes
    /// (the paper's process turnaround time).
    pub turnaround_ms: f64,
    /// Per-process phase timestamps.
    pub runs: Vec<TaskRun>,
    /// Device statistics at the end of the run.
    pub device: DeviceStats,
    /// GVM statistics (virtualized runs only).
    pub gvm: Option<GvmStats>,
    /// Functional outputs per rank (functional tasks only).
    pub outputs: Vec<Option<Vec<u8>>>,
    /// Engine timeline (only when the scenario enables tracing).
    pub timeline: Option<Timeline>,
    /// Raw trace handle (tracing or analysis scenarios only).
    pub tracer: Option<gv_sim::Tracer>,
    /// `gv-analyze` report over the run's trace (analysis scenarios only).
    pub analysis: Option<gv_analyze::Report>,
}

impl ExperimentResult {
    /// Mean of a per-process phase over all ranks.
    pub fn mean_phase(&self, f: impl Fn(&TaskRun) -> f64) -> f64 {
        self.runs.iter().map(f).sum::<f64>() / self.runs.len() as f64
    }

    /// Latest initialization completion relative to group start — the
    /// paper's `Tinit` (total for all processes).
    pub fn t_init_total(&self) -> f64 {
        let start = self
            .runs
            .iter()
            .map(|r| r.start)
            .min()
            .expect("non-empty group");
        self.runs
            .iter()
            .map(|r| r.init_done.duration_since(start).as_millis_f64())
            .fold(0.0, f64::max)
    }
}

/// Scenario parameters.
#[derive(Clone)]
pub struct Scenario {
    /// Device model (defaults to the paper-calibrated C2070).
    pub device: DeviceConfig,
    /// Node model (defaults to the paper's dual-Xeon node).
    pub node: NodeConfig,
    /// Record engine timelines (costs one mutex op per engine event).
    pub trace: bool,
    /// Record analysis events (vector clocks, protocol receipts, device
    /// events) and run the `gv-analyze` checkers after the simulation.
    pub analyze: bool,
    /// GVM stream-dispatch policy (virtualized runs only).
    pub scheduler: SchedPolicy,
    /// Per-rank arrival skew: rank `r` begins its task `r × stagger`
    /// late — from group launch in Direct mode, from GVM-ready in
    /// Virtualized mode — modeling non-lockstep SPMD startup.
    pub stagger: SimDuration,
    /// Buffer-lifecycle configuration for the GVM (staging pool is always
    /// on; chunked pipelining off by default, which is bit-identical to
    /// serial staging). Ignored in Direct mode.
    pub mem: MemConfig,
    /// Compute rounds per rank (virtualized runs): each rank repeats the
    /// SND→STR→STP→RCV cycle this many times inside one REQ/RLS session,
    /// modeling iterative solvers. Direct mode always runs one round (every
    /// round recomputes the same output, so functional results stay
    /// bitwise-comparable across modes).
    pub rounds: u32,
    /// `Some(policy)`: route virtualized runs through the cluster
    /// placement front-end (a one-device cluster of the scenario's
    /// device) instead of installing the GVM directly. A one-device,
    /// one-wave cluster is bit-identical to the direct path — the
    /// differential tests pin that down per policy. Ignored in Direct
    /// mode.
    pub cluster: Option<PlacePolicy>,
    /// Scheduling oracle installed on the simulation before it runs
    /// (record, replay, or explore — see `gv_sim::oracle`). `None` keeps
    /// the engine's default FIFO/arm-order behavior.
    pub oracle: Option<OracleHandle>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            device: DeviceConfig::tesla_c2070_paper(),
            node: NodeConfig::dual_xeon_x5560(),
            trace: false,
            analyze: false,
            scheduler: SchedPolicy::JointFlush,
            stagger: SimDuration::ZERO,
            mem: MemConfig::default(),
            rounds: 1,
            cluster: None,
            oracle: None,
        }
    }
}

impl Scenario {
    /// A scenario with engine-timeline recording enabled.
    pub fn traced() -> Self {
        Scenario {
            trace: true,
            ..Self::default()
        }
    }

    /// A scenario with analysis recording and post-run checking enabled.
    pub fn analyzed() -> Self {
        Scenario {
            analyze: true,
            ..Self::default()
        }
    }

    /// `self` with the given GVM stream-dispatch policy.
    pub fn with_scheduler(self, scheduler: SchedPolicy) -> Self {
        Scenario { scheduler, ..self }
    }

    /// `self` with ranks arriving `stagger` apart.
    pub fn with_stagger(self, stagger: SimDuration) -> Self {
        Scenario { stagger, ..self }
    }

    /// `self` with the given buffer-lifecycle configuration.
    pub fn with_mem(self, mem: MemConfig) -> Self {
        Scenario { mem, ..self }
    }

    /// `self` with each rank running `rounds` compute rounds per session.
    pub fn with_rounds(self, rounds: u32) -> Self {
        assert!(rounds >= 1, "at least one round");
        Scenario { rounds, ..self }
    }

    /// `self` with virtualized runs routed through the one-device cluster
    /// placement front-end under `policy`.
    pub fn with_cluster(self, policy: PlacePolicy) -> Self {
        Scenario {
            cluster: Some(policy),
            ..self
        }
    }

    /// `self` with a scheduling oracle installed on the simulation (e.g.
    /// `ScriptOracle::recording()` to capture the decision trace of an
    /// experiment, or a replay script to pin one).
    pub fn with_oracle(self, oracle: OracleHandle) -> Self {
        Scenario {
            oracle: Some(oracle),
            ..self
        }
    }
}

impl Scenario {
    /// Run `tasks` (one per rank) under `mode`; returns the experiment
    /// result. Panics on simulation errors — experiments must be clean.
    pub fn run(&self, mode: ExecutionMode, tasks: Vec<GpuTask>) -> ExperimentResult {
        match self.try_run(mode, tasks) {
            Ok(result) => result,
            Err(e) => panic!("experiment simulation must complete: {e}"),
        }
    }

    /// Like [`run`](Self::run) but surfaces engine failures (deadlock,
    /// process panic) instead of panicking — the schedule-exploration path
    /// treats those as findings, not harness crashes.
    pub fn try_run(
        &self,
        mode: ExecutionMode,
        tasks: Vec<GpuTask>,
    ) -> Result<ExperimentResult, SimError> {
        let n = tasks.len();
        assert!(n >= 1, "at least one process");
        let mut sim = Simulation::new();
        let tracer = sim.tracer();
        tracer.set_enabled(self.trace);
        tracer.set_analysis(self.analyze);
        if let Some(oracle) = &self.oracle {
            sim.set_oracle(oracle.clone());
        }
        let device = GpuDevice::install(&mut sim, self.device.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(self.node.clone());

        type Collected = Arc<Mutex<Vec<(TaskRun, Option<Vec<u8>>)>>>;
        let collected: Collected = Arc::new(Mutex::new(Vec::new()));
        let mut cluster_handle: Option<ClusterHandle> = None;

        let gvm_handle: Option<GvmHandle> = match mode {
            ExecutionMode::Direct => {
                let finished = Arc::new(Mutex::new(0usize));
                for (rank, task) in tasks.iter().enumerate() {
                    let cuda = cuda.clone();
                    let task = task.clone();
                    let device = device.clone();
                    let collected = collected.clone();
                    let finished = finished.clone();
                    let arrival = arrival_delay(self.stagger, rank);
                    node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                        if !arrival.is_zero() {
                            ctx.hold(arrival);
                        }
                        let out = run_direct(ctx, &cuda, &task, rank);
                        collected.lock().push(out);
                        let mut f = finished.lock();
                        *f += 1;
                        if *f == n {
                            device.shutdown(ctx);
                        }
                    })
                    .expect("pin SPMD process");
                }
                None
            }
            ExecutionMode::Virtualized if self.cluster.is_some() => {
                let ccfg = ClusterConfig::new(self.cluster.unwrap())
                    .with_scheduler(self.scheduler.clone())
                    .with_mem(self.mem)
                    .with_rounds(self.rounds)
                    .with_stagger(self.stagger);
                let requests: Vec<VgpuRequest> = tasks
                    .into_iter()
                    .enumerate()
                    .map(|(rank, task)| VgpuRequest {
                        id: rank as u64,
                        tenant: 0,
                        gang: None,
                        quota: MemQuota::Unlimited,
                        task,
                    })
                    .collect();
                let handle =
                    Cluster::install(&mut sim, &node, std::slice::from_ref(&cuda), ccfg, requests)
                        .expect("one-device cluster placement must be feasible");
                cluster_handle = Some(handle);
                None
            }
            ExecutionMode::Virtualized => {
                let config = GvmConfig::new(n)
                    .with_scheduler(self.scheduler.clone())
                    .with_mem(self.mem);
                let handle = Gvm::install(&mut sim, &node, &cuda, config, tasks);
                let rounds = self.rounds;
                for rank in 0..n {
                    let handle = handle.clone();
                    let collected = collected.clone();
                    let arrival = arrival_delay(self.stagger, rank);
                    node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
                        // Hold AFTER connect: connect blocks on the GVM ready
                        // gate (one context creation for the whole group), which
                        // would otherwise absorb any skew smaller than the boot
                        // time and de-stagger every arrival.
                        let client = VgpuClient::connect(ctx, &handle, rank);
                        if !arrival.is_zero() {
                            ctx.hold(arrival);
                        }
                        let out = client.run_rounds(ctx, rounds);
                        collected.lock().push(out);
                    })
                    .expect("pin SPMD process");
                }
                let h = handle.clone();
                let dev = device.clone();
                sim.spawn("supervisor", move |ctx| {
                    h.done.wait(ctx);
                    dev.shutdown(ctx);
                });
                Some(handle)
            }
        };

        sim.run()?;

        let (runs, outputs): (Vec<TaskRun>, Vec<Option<Vec<u8>>>) = match &cluster_handle {
            Some(ch) => ch
                .session_results()
                .into_iter()
                .map(|s| (s.run, s.output))
                .unzip(),
            None => {
                let mut pairs = Arc::try_unwrap(collected)
                    .map(|m| m.into_inner())
                    .unwrap_or_else(|arc| arc.lock().clone());
                pairs.sort_by_key(|(run, _)| run.rank);
                pairs.into_iter().unzip()
            }
        };
        assert_eq!(runs.len(), n, "every rank must report");

        let start = runs.iter().map(|r| r.start).min().expect("non-empty");
        let end = runs.iter().map(|r| r.end).max().expect("non-empty");
        Ok(ExperimentResult {
            mode,
            nprocs: n,
            turnaround_ms: end.duration_since(start).as_millis_f64(),
            runs,
            device: device.stats(),
            gvm: cluster_handle
                .map(|ch| ch.stats().gvm)
                .or_else(|| gvm_handle.map(|h| h.stats.lock().clone())),
            outputs,
            timeline: self.trace.then(|| Timeline::from_tracer(&tracer)),
            analysis: self.analyze.then(|| gv_analyze::analyze_tracer(&tracer)),
            tracer: (self.trace || self.analyze).then_some(tracer),
        })
    }

    /// Convenience: run the same task on `n` ranks.
    pub fn run_uniform(&self, mode: ExecutionMode, task: &GpuTask, n: usize) -> ExperimentResult {
        self.run(mode, vec![task.clone(); n])
    }
}

/// Rank `r` arrives `r × stagger` after the group launch.
fn arrival_delay(stagger: SimDuration, rank: usize) -> SimDuration {
    SimDuration::from_nanos(stagger.as_nanos().saturating_mul(rank as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_kernels::{Benchmark, BenchmarkId};

    #[test]
    fn direct_scenario_collects_all_ranks() {
        let sc = Scenario::default();
        let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 200);
        let r = sc.run_uniform(ExecutionMode::Direct, &task, 3);
        assert_eq!(r.runs.len(), 3);
        assert_eq!(r.device.ctx_switches, 2);
        assert!(r.turnaround_ms > 0.0);
        // Ranks are ordered.
        assert_eq!(
            r.runs.iter().map(|x| x.rank).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn virtualized_scenario_collects_all_ranks() {
        let sc = Scenario::default();
        let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 200);
        let r = sc.run_uniform(ExecutionMode::Virtualized, &task, 3);
        assert_eq!(r.runs.len(), 3);
        assert_eq!(r.device.ctx_switches, 0);
        assert_eq!(r.gvm.as_ref().unwrap().flushes, 1);
    }

    #[test]
    fn tinit_total_is_max_over_ranks() {
        let sc = Scenario::default();
        let task = Benchmark::scaled_task(BenchmarkId::VecAdd, &sc.device, 500);
        let r = sc.run_uniform(ExecutionMode::Direct, &task, 4);
        // Four serialized context creations ≈ 4 × 189.9 ms.
        let t = r.t_init_total();
        assert!((t - 4.0 * 189.923).abs() < 5.0, "Tinit(4) = {t}");
    }
}

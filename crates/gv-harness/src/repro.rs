//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function runs the relevant experiments and renders a plain-text
//! artifact (plus CSV rows) that mirrors the published table/figure,
//! printing paper-reported values alongside the simulated measurements
//! wherever the paper states them. `scale_down = 1` is the paper-sized
//! configuration; larger values shrink costs proportionally for smoke runs.

use gv_kernels::{Benchmark, BenchmarkId};
use gv_model::{ExecutionProfile, SpeedupModel};

use crate::overhead;
use crate::profile::{self, MeasuredProfile};
use crate::report::{ms, pct, x, TextTable};
use crate::scenario::Scenario;
use crate::turnaround::{self, TurnaroundConfig};

/// A rendered artifact: human-readable text plus machine-readable CSV.
pub struct Artifact {
    /// Artifact name (`table2`, `fig9`, …).
    pub name: &'static str,
    /// Rendered text (what the binaries print).
    pub text: String,
    /// CSV rows.
    pub csv: String,
}

impl Artifact {
    /// Persist under `results/` (best effort).
    pub fn save(&self) {
        crate::report::save(self.name, &self.text, Some(&self.csv), None);
    }
}

/// Table II: initial benchmark profiles and parameters.
pub fn table2(scenario: &Scenario, scale_down: u32) -> Artifact {
    let vecadd = profile::measure(scenario, BenchmarkId::VecAdd, scale_down);
    let ep = profile::measure(scenario, BenchmarkId::Ep, scale_down);
    let paper_vecadd = ExecutionProfile::vecadd_paper();
    let paper_ep = ExecutionProfile::ep_paper();

    let mut t = TextTable::new(vec![
        "Parameter",
        "VectorAdd (sim)",
        "VectorAdd (paper)",
        "EP (sim)",
        "EP (paper)",
    ]);
    let row = |t: &mut TextTable, name: &str, sim: [f64; 2], paper: [f64; 2]| {
        t.row(vec![
            name.to_string(),
            ms(sim[0]),
            ms(paper[0]),
            ms(sim[1]),
            ms(paper[1]),
        ]);
    };
    t.row(vec![
        "Problem Size".to_string(),
        vecadd.problem_size.clone(),
        "Vector Size = 50M (float)".to_string(),
        ep.problem_size.clone(),
        "Class B (M=30)".to_string(),
    ]);
    t.row(vec![
        "Grid Size".to_string(),
        vecadd.grid_size.to_string(),
        "50K".to_string(),
        ep.grid_size.to_string(),
        "4".to_string(),
    ]);
    let (vp, epv) = (&vecadd.profile, &ep.profile);
    row(
        &mut t,
        "Tinit (ms)",
        [vp.t_init, epv.t_init],
        [paper_vecadd.t_init, paper_ep.t_init],
    );
    row(
        &mut t,
        "Tdata_in (ms)",
        [vp.t_data_in, epv.t_data_in],
        [paper_vecadd.t_data_in, paper_ep.t_data_in],
    );
    row(
        &mut t,
        "Tcomp (ms)",
        [vp.t_comp, epv.t_comp],
        [paper_vecadd.t_comp, paper_ep.t_comp],
    );
    row(
        &mut t,
        "Tdata_out (ms)",
        [vp.t_data_out, epv.t_data_out],
        [paper_vecadd.t_data_out, paper_ep.t_data_out],
    );
    row(
        &mut t,
        "Tctx_switch (ms)",
        [vp.t_ctx_switch, epv.t_ctx_switch],
        [paper_vecadd.t_ctx_switch, paper_ep.t_ctx_switch],
    );
    let text = format!(
        "TABLE II — INITIAL BENCHMARK PROFILES AND PARAMETERS\n\
         (simulated on {}, scale 1/{scale_down})\n\n{}",
        scenario.device.name,
        t.render()
    );
    Artifact {
        name: "table2",
        text,
        csv: t.to_csv(),
    }
}

/// Table III: experimental vs theoretical speedup at 8 processes.
///
/// The theoretical column feeds the *simulated* Table II profile into the
/// paper's Eq. (5), exactly as the paper feeds its measured profile.
pub fn table3(scenario: &Scenario, scale_down: u32) -> Artifact {
    let n = scenario.node.cores;
    let mut t = TextTable::new(vec![
        "",
        "VectorAdd (sim)",
        "VectorAdd (paper)",
        "EP (sim)",
        "EP (paper)",
    ]);

    let run = |id: BenchmarkId| -> (f64, f64, f64, MeasuredProfile) {
        let prof = profile::measure(scenario, id, scale_down);
        let point = turnaround::at_n(scenario, id, n, scale_down);
        let model = SpeedupModel::new(prof.profile);
        let experimental = point.speedup();
        let theoretical = model.speedup(n as u32);
        let deviation = model.deviation(n as u32, experimental);
        (experimental, theoretical, deviation, prof)
    };
    let (va_exp, va_theo, va_dev, _) = run(BenchmarkId::VecAdd);
    let (ep_exp, ep_theo, ep_dev, _) = run(BenchmarkId::Ep);

    t.row(vec![
        "Experimental Speedup".to_string(),
        x(va_exp),
        "2.300".to_string(),
        x(ep_exp),
        "7.394".to_string(),
    ]);
    t.row(vec![
        "Theoretical Speedup".to_string(),
        x(va_theo),
        "2.721".to_string(),
        x(ep_theo),
        "8.341".to_string(),
    ]);
    t.row(vec![
        "Theoretical Deviation".to_string(),
        pct(va_dev),
        "18.306%".to_string(),
        pct(ep_dev),
        "12.810%".to_string(),
    ]);
    let text = format!(
        "TABLE III — SPEEDUP COMPARISONS BETWEEN THE EXPERIMENT AND THE MODEL\n\
         (launched with {n} processes, scale 1/{scale_down})\n\n{}\n\
         Note: the paper's printed theoretical 2.721 for VectorAdd is not\n\
         derivable from its own Table II inputs via Eq. (5) (they give 3.62);\n\
         see EXPERIMENTS.md §Table III.\n",
        t.render()
    );
    Artifact {
        name: "table3",
        text,
        csv: t.to_csv(),
    }
}

/// Table IV: the application-benchmark catalogue.
pub fn table4() -> Artifact {
    let mut t = TextTable::new(vec!["Benchmark", "Problem Size", "Grid Size", "Class"]);
    for id in BenchmarkId::applications() {
        let d = Benchmark::describe(id);
        t.row(vec![
            d.name.to_string(),
            d.problem_size.to_string(),
            d.grid_size.to_string(),
            d.class.to_string(),
        ]);
    }
    let text = format!(
        "TABLE IV — DETAILS OF APPLICATION BENCHMARKS\n\n{}",
        t.render()
    );
    Artifact {
        name: "table4",
        text,
        csv: t.to_csv(),
    }
}

fn turnaround_artifact(
    scenario: &Scenario,
    ids: &[BenchmarkId],
    scale_down: u32,
    name: &'static str,
    title: &str,
) -> Artifact {
    let mut text = format!("{title}\n\n");
    let mut csv = String::from("benchmark,nprocs,no_virtualization_ms,virtualization_ms,speedup\n");
    for &id in ids {
        let cfg = TurnaroundConfig {
            benchmark: id,
            max_procs: scenario.node.cores,
            scale_down,
        };
        let series = turnaround::sweep(scenario, &cfg);
        let mut t = TextTable::new(vec![
            "processes",
            "no virtualization (ms)",
            "virtualization (ms)",
            "speedup",
        ]);
        for p in &series.points {
            t.row(vec![
                p.nprocs.to_string(),
                ms(p.no_vt_ms),
                ms(p.vt_ms),
                x(p.speedup()),
            ]);
            csv.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3}\n",
                series.benchmark,
                p.nprocs,
                p.no_vt_ms,
                p.vt_ms,
                p.speedup()
            ));
        }
        text.push_str(&format!("{}:\n{}\n", series.benchmark, t.render()));
    }
    Artifact { name, text, csv }
}

/// Fig. 9: turnaround vs process count for the I/O-intensive (VectorAdd)
/// and compute-intensive (EP) microbenchmarks, with the analytical model's
/// Eq. (1)/Eq. (4) predictions (fed by the measured profile) overlaid.
pub fn fig9(scenario: &Scenario, scale_down: u32) -> Artifact {
    let mut text = format!(
        "FIGURE 9 — TURNAROUND TIME COMPARISON, I/O-INTENSIVE AND \
         COMPUTE-INTENSIVE MICROBENCHMARKS (scale 1/{scale_down})\n\n"
    );
    let mut csv =
        String::from("benchmark,nprocs,no_vt_ms,vt_ms,model_no_vt_ms,model_vt_ms,speedup\n");
    for id in [BenchmarkId::VecAdd, BenchmarkId::Ep] {
        let prof = profile::measure(scenario, id, scale_down);
        let model = SpeedupModel::new(prof.profile);
        let cfg = TurnaroundConfig {
            benchmark: id,
            max_procs: scenario.node.cores,
            scale_down,
        };
        let series = turnaround::sweep(scenario, &cfg);
        let mut t = TextTable::new(vec![
            "processes",
            "no virtualization (ms)",
            "virtualization (ms)",
            "Eq.(1) model (ms)",
            "Eq.(4) model (ms)",
            "speedup",
        ]);
        for p in &series.points {
            let n = p.nprocs as u32;
            t.row(vec![
                p.nprocs.to_string(),
                ms(p.no_vt_ms),
                ms(p.vt_ms),
                ms(model.total_no_vt(n)),
                ms(model.total_vt(n)),
                x(p.speedup()),
            ]);
            csv.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                series.benchmark,
                p.nprocs,
                p.no_vt_ms,
                p.vt_ms,
                model.total_no_vt(n),
                model.total_vt(n),
                p.speedup()
            ));
        }
        text.push_str(&format!("{}:\n{}\n", series.benchmark, t.render()));
    }
    Artifact {
        name: "fig9",
        text,
        csv,
    }
}

/// Fig. 10: virtualization overhead vs data size.
pub fn fig10(scenario: &Scenario, sizes_mb: &[u64]) -> Artifact {
    let pts = overhead::sweep(scenario, sizes_mb);
    let mut t = TextTable::new(vec![
        "data size (MB)",
        "turnaround (ms)",
        "base layer / GPU (ms)",
        "overhead",
    ]);
    let mut csv = String::from("data_mb,turnaround_ms,base_layer_ms,overhead_frac\n");
    for p in &pts {
        t.row(vec![
            format!("{:.0}", p.data_mb),
            ms(p.turnaround_ms),
            ms(p.base_layer_ms),
            pct(p.overhead_frac),
        ]);
        csv.push_str(&format!(
            "{:.0},{:.3},{:.3},{:.4}\n",
            p.data_mb, p.turnaround_ms, p.base_layer_ms, p.overhead_frac
        ));
    }
    let max_ov = pts.iter().map(|p| p.overhead_frac).fold(0.0, f64::max);
    let text = format!(
        "FIGURE 10 — VIRTUALIZATION OVERHEADS (1 process, VectorAdd-shaped)\n\n{}\n\
         Max overhead over sweep: {} (paper: <25% at 400 MB)\n",
        t.render(),
        pct(max_ov)
    );
    Artifact {
        name: "fig10",
        text,
        csv,
    }
}

/// Figs. 11–15: per-application turnaround sweeps (all five, or one).
pub fn fig11_15(scenario: &Scenario, scale_down: u32, only: Option<BenchmarkId>) -> Artifact {
    let ids: Vec<BenchmarkId> = match only {
        Some(id) => vec![id],
        None => BenchmarkId::applications().to_vec(),
    };
    turnaround_artifact(
        scenario,
        &ids,
        scale_down,
        "fig11_15",
        &format!(
            "FIGURES 11–15 — APPLICATION BENCHMARK TURNAROUND TIMES \
             (scale 1/{scale_down})"
        ),
    )
}

/// Fig. 16: speedups of all five applications at 8 processes.
pub fn fig16(scenario: &Scenario, scale_down: u32) -> Artifact {
    let n = scenario.node.cores;
    let mut t = TextTable::new(vec!["Benchmark", "Class", "Speedup @8 procs"]);
    let mut csv = String::from("benchmark,class,speedup\n");
    let mut speedups = Vec::new();
    for id in BenchmarkId::applications() {
        let d = Benchmark::describe(id);
        let p = turnaround::at_n(scenario, id, n, scale_down);
        let s = p.speedup();
        speedups.push((d.name, s));
        t.row(vec![d.name.to_string(), d.class.to_string(), x(s)]);
        csv.push_str(&format!("{},{},{:.3}\n", d.name, d.class, s));
    }
    let text = format!(
        "FIGURE 16 — SPEEDUPS WITH GPU VIRTUALIZATION, 8 PROCESSES\n\n{}\n\
         Paper reports speedups between 1.4 and 4.1, with MG and CG the\n\
         largest winners (small grids → concurrent kernel execution).\n",
        t.render()
    );
    Artifact {
        name: "fig16",
        text,
        csv,
    }
}

/// Parse `--quick` / `--scale N` CLI flags shared by all repro binaries.
/// Returns the scale-down divisor (1 = paper-sized).
pub fn scale_from_args() -> u32 {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        return 64;
    }
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            return v;
        }
    }
    1
}

/// True when boolean flag `name` (e.g. `--analyze`) is on the command line.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_catalogue() {
        let a = table4();
        assert!(a.text.contains("2Kx2K Matrix"));
        assert!(a.text.contains("S(NA=1400, Nit=15)"));
        assert!(a.csv.lines().count() == 6); // header + 5 apps
    }

    #[test]
    fn quick_fig9_has_both_series() {
        let sc = Scenario::default();
        let mut sc = sc;
        sc.node.cores = 3; // shrink the sweep for the test
        let a = fig9(&sc, 256);
        assert!(a.text.contains("VectorAdd"));
        assert!(a.text.contains("EP"));
        // csv: header + 2 benchmarks × 3 points
        assert_eq!(a.csv.lines().count(), 7);
    }

    #[test]
    fn scale_parsing_defaults_to_one() {
        assert_eq!(scale_from_args(), 1);
    }
}

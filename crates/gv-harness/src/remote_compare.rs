//! Local virtualization vs remote GPU access (extension quantifying the
//! paper's §II argument against remote-GPU middleware).
//!
//! Three ways to give N processes a GPU:
//! 1. conventional local sharing (per-process contexts);
//! 2. the paper's GVM (local virtualization);
//! 3. an rCUDA/gVirtuS-style remote daemon over an interconnect.
//!
//! The paper dismisses (3) qualitatively — "communication overheads in
//! accessing GPUs from remote compute nodes" — this experiment puts numbers
//! on it for both interconnect generations.

use gv_cuda::CudaDevice;
use gv_gpu::GpuDevice;
use gv_ipc::net::{LinkConfig, NetworkLink};
use gv_ipc::Node;
use gv_kernels::{Benchmark, BenchmarkId};
use gv_sim::Simulation;
use gv_virt::remote::remote_turnaround;
use serde::Serialize;

use crate::scenario::{ExecutionMode, Scenario};

/// One comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct RemoteComparePoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Process/client count.
    pub nprocs: usize,
    /// Conventional local sharing, ms.
    pub direct_ms: f64,
    /// GVM local virtualization, ms.
    pub gvm_ms: f64,
    /// Remote daemon over DDR InfiniBand, ms.
    pub remote_ib_ms: f64,
    /// Remote daemon over gigabit Ethernet, ms.
    pub remote_eth_ms: f64,
}

fn remote_ms(scenario: &Scenario, id: BenchmarkId, n: usize, scale: u32, link: LinkConfig) -> f64 {
    let task = if scale <= 1 {
        Benchmark::paper_task(id, &scenario.device)
    } else {
        Benchmark::scaled_task(id, &scenario.device, scale)
    };
    let mut sim = Simulation::new();
    let device = GpuDevice::install(&mut sim, scenario.device.clone());
    let cuda = CudaDevice::new(device);
    let gpu_node = Node::new(scenario.node.clone());
    let runs = remote_turnaround(&cuda, &mut sim, &gpu_node, NetworkLink::new(link), &task, n);
    sim.run().expect("remote run completes");
    let runs = runs.lock();
    assert_eq!(runs.len(), n, "every remote client must report");
    let start = runs.iter().map(|r| r.start).min().expect("non-empty");
    let end = runs.iter().map(|r| r.end).max().expect("non-empty");
    end.duration_since(start).as_millis_f64()
}

/// Compare all three schemes for one benchmark at `n` processes.
pub fn compare(scenario: &Scenario, id: BenchmarkId, n: usize, scale: u32) -> RemoteComparePoint {
    let task = if scale <= 1 {
        Benchmark::paper_task(id, &scenario.device)
    } else {
        Benchmark::scaled_task(id, &scenario.device, scale)
    };
    let direct = scenario.run_uniform(ExecutionMode::Direct, &task, n);
    let gvm = scenario.run_uniform(ExecutionMode::Virtualized, &task, n);
    RemoteComparePoint {
        benchmark: Benchmark::describe(id).name.to_string(),
        nprocs: n,
        direct_ms: direct.turnaround_ms,
        gvm_ms: gvm.turnaround_ms,
        remote_ib_ms: remote_ms(scenario, id, n, scale, LinkConfig::infiniband_ddr()),
        remote_eth_ms: remote_ms(scenario, id, n, scale, LinkConfig::gigabit_ethernet()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For an I/O-heavy task, the GVM (node-local shared memory) must beat
    /// both remote links, and Ethernet must be the worst option.
    #[test]
    fn io_task_ranks_gvm_before_remote() {
        let sc = Scenario::default();
        let p = compare(&sc, BenchmarkId::VecAdd, 2, 32);
        assert!(
            p.gvm_ms < p.remote_ib_ms,
            "GVM {:.1} ms should beat remote IB {:.1} ms",
            p.gvm_ms,
            p.remote_ib_ms
        );
        assert!(
            p.remote_ib_ms < p.remote_eth_ms,
            "IB {:.1} ms should beat Ethernet {:.1} ms",
            p.remote_ib_ms,
            p.remote_eth_ms
        );
    }

    /// For a compute-bound task the wire barely matters: remote-IB lands
    /// within a few percent of the GVM (both eliminate context switching).
    #[test]
    fn compute_task_is_insensitive_to_the_wire() {
        let sc = Scenario::default();
        let p = compare(&sc, BenchmarkId::Ep, 4, 64);
        let gap = (p.remote_ib_ms - p.gvm_ms) / p.gvm_ms;
        assert!(
            gap.abs() < 0.10,
            "EP remote-IB should be within 10% of GVM: gvm {:.1}, remote {:.1}",
            p.gvm_ms,
            p.remote_ib_ms
        );
        // And both beat conventional sharing handily.
        assert!(p.gvm_ms < p.direct_ms && p.remote_ib_ms < p.direct_ms);
    }
}

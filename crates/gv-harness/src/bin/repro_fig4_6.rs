//! Regenerate the paper's execution diagrams (Figs. 4–6) as measured
//! ASCII Gantt charts: conventional sharing serializes context episodes
//! (Fig. 4); virtualized compute-intensive tasks overlap kernels (Fig. 5);
//! virtualized I/O-intensive tasks pipeline transfers (Fig. 6).

use gv_harness::repro;
use gv_harness::scenario::{ExecutionMode, Scenario};
use gv_kernels::{Benchmark, BenchmarkId};

fn main() {
    let scale = repro::scale_from_args().max(8); // diagrams read best scaled
    let sc = Scenario::traced();
    let n = 3;

    let show = |title: &str, id: BenchmarkId, mode: ExecutionMode| -> String {
        let task = Benchmark::scaled_task(id, &sc.device, scale);
        let r = sc.run_uniform(mode, &task, n);
        // Also persist a Chrome-trace JSON per diagram (open in Perfetto).
        if let Some(tracer) = &r.tracer {
            let fname = format!(
                "results/trace_{:?}_{}.json",
                id,
                match mode {
                    ExecutionMode::Direct => "direct",
                    ExecutionMode::Virtualized => "gvm",
                }
            );
            let _ = std::fs::create_dir_all("results");
            let _ = std::fs::write(&fname, tracer.to_chrome_trace());
        }
        let tl = r.timeline.as_ref().expect("traced scenario");
        format!(
            "{title}\n({} processes, {}, turnaround {:.1} ms)\n\n{}\n\
             kernels overlap: {} | copy overlaps foreign kernel: {} | bidirectional DMA: {}\n",
            n,
            mode,
            r.turnaround_ms,
            tl.render_gantt(96),
            tl.kernels_overlap(),
            tl.copy_overlaps_foreign_kernel(),
            tl.bidirectional_overlap(),
        )
    };

    let mut text = String::new();
    text.push_str(&show(
        "FIGURE 4 — CONVENTIONAL SHARING (EP): context-switch serialization",
        BenchmarkId::Ep,
        ExecutionMode::Direct,
    ));
    text.push('\n');
    text.push_str(&show(
        "FIGURE 5 — VIRTUALIZED COMPUTE-INTENSIVE (EP): concurrent kernels",
        BenchmarkId::Ep,
        ExecutionMode::Virtualized,
    ));
    text.push('\n');
    text.push_str(&show(
        "FIGURE 6 — VIRTUALIZED I/O-INTENSIVE (VectorAdd): pipelined transfers",
        BenchmarkId::VecAdd,
        ExecutionMode::Virtualized,
    ));
    println!("{text}");
    gv_harness::report::save("fig4_6", &text, None, None);
}

//! Regenerate paper Table IV (application benchmark catalogue).
use gv_harness::repro;

fn main() {
    let a = repro::table4();
    println!("{}", a.text);
    a.save();
}

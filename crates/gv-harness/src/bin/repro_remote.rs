//! Local virtualization vs remote-GPU middleware (extension, paper §II).
use gv_harness::report::{ms, TextTable};
use gv_harness::scenario::Scenario;
use gv_harness::{remote_compare, repro};
use gv_kernels::BenchmarkId;

fn main() {
    let scale = repro::scale_from_args();
    let sc = Scenario::default();
    let mut t = TextTable::new(vec![
        "Benchmark",
        "n",
        "direct (ms)",
        "GVM (ms)",
        "remote IB (ms)",
        "remote GbE (ms)",
    ]);
    for id in [BenchmarkId::VecAdd, BenchmarkId::Ep] {
        for n in [1usize, 4, 8] {
            let p = remote_compare::compare(&sc, id, n, scale);
            t.row(vec![
                p.benchmark.clone(),
                n.to_string(),
                ms(p.direct_ms),
                ms(p.gvm_ms),
                ms(p.remote_ib_ms),
                ms(p.remote_eth_ms),
            ]);
        }
    }
    let text = format!(
        "REMOTE-GPU COMPARISON (extension; scale 1/{scale})\n\n{}\n\
         The paper's §II argument, quantified: remote middleware eliminates\n\
         context switching like the GVM does, so compute-bound workloads are\n\
         wire-insensitive — but I/O-bound workloads pay the interconnect on\n\
         every byte, where the GVM's node-local shared memory does not.\n",
        t.render()
    );
    println!("{text}");
    gv_harness::report::save("remote_compare", &text, Some(&t.to_csv()), None);
}

//! Ablation study: contribution of each mechanism (beyond the paper).
use gv_harness::ablation::{self, Ablation};
use gv_harness::report::{ms, x, TextTable};
use gv_harness::repro;
use gv_harness::scenario::Scenario;
use gv_kernels::BenchmarkId;

fn main() {
    let scale = repro::scale_from_args();
    let sc = Scenario::default();
    let n = sc.node.cores;
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Variant",
        "T_vt (ms)",
        "Speedup vs direct",
    ]);
    for id in [BenchmarkId::VecAdd, BenchmarkId::Ep, BenchmarkId::Cg] {
        for p in ablation::sweep(&sc, id, n, scale) {
            table.row(vec![
                p.benchmark.clone(),
                p.ablation.to_string(),
                ms(p.vt_ms),
                x(p.speedup),
            ]);
        }
    }
    let text = format!(
        "ABLATIONS — MECHANISM CONTRIBUTIONS AT {n} PROCESSES (scale 1/{scale})\n\n{}\n\
         Variants: {} / {} / {} / {}\n",
        table.render(),
        Ablation::Full,
        Ablation::NoConcurrentKernels,
        Ablation::UnifiedCopyEngine,
        Ablation::SerialFlush,
    );
    println!("{text}");
    gv_harness::report::save("ablations", &text, Some(&table.to_csv()), None);
}

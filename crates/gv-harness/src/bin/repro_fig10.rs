//! Regenerate paper Fig. 10 (virtualization overhead vs data size).
use gv_harness::overhead;
use gv_harness::repro;
use gv_harness::scenario::Scenario;

fn main() {
    let scale = repro::scale_from_args();
    let sizes: Vec<u64> = overhead::paper_sizes()
        .into_iter()
        .map(|s| (s / scale as u64).max(1))
        .collect();
    let a = repro::fig10(&Scenario::default(), &sizes);
    println!("{}", a.text);
    a.save();
}

//! Regenerate paper Table III (experimental vs theoretical speedups).
use gv_harness::repro;
use gv_harness::scenario::Scenario;

fn main() {
    let scale = repro::scale_from_args();
    let a = repro::table3(&Scenario::default(), scale);
    println!("{}", a.text);
    a.save();
}

//! Sweep the cluster placement policies (binpack, spread, gang, drf)
//! over {8, 16, 32} devices with a fixed 128-session multi-tenant
//! workload, into `results/cluster.{txt,csv}` and the machine-readable
//! `results/BENCH_cluster.json`.
//!
//! Flags: `--quick` / `--scale N` shrink costs; `--analyze` records every
//! point's trace, checks it with `gv-analyze` (including the cluster
//! co-residency linter), and fails (exit 1) on any diagnostic.
use std::process::ExitCode;

use gv_harness::scenario::Scenario;
use gv_harness::{cluster, repro};

fn main() -> ExitCode {
    let scale = repro::scale_from_args();
    let analyze = repro::has_flag("--analyze");
    let (points, clean) = cluster::matrix(&Scenario::default(), scale, analyze);
    let artifact = cluster::artifact(&points, scale);
    println!("{}", artifact.text);
    artifact.save();
    if std::fs::write("results/BENCH_cluster.json", cluster::bench_json(&points)).is_err() {
        eprintln!("warning: cannot write results/BENCH_cluster.json");
    }
    if !clean {
        eprintln!("gv-analyze diagnostics found in cluster traces — failing");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

//! Sweep the GVM scheduling policies (joint flush, FCFS, adaptive batch,
//! shortest-job-first) over policy × benchmark × process-count, plus the
//! staggered-arrival headline comparison, into `results/sched.{txt,csv}`.
//!
//! Flags: `--quick` / `--scale N` shrink costs; `--analyze` records every
//! policy run's trace, checks it with `gv-analyze`, and fails (exit 1) on
//! any diagnostic.
use std::process::ExitCode;

use gv_harness::scenario::Scenario;
use gv_harness::{repro, sched};

fn main() -> ExitCode {
    let scale = repro::scale_from_args();
    let analyze = repro::has_flag("--analyze");
    let (artifact, clean) = sched::sweep(&Scenario::default(), scale, analyze);
    println!("{}", artifact.text);
    artifact.save();
    if !clean {
        eprintln!("gv-analyze diagnostics found in policy traces — failing");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

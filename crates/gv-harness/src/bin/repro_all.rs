//! Regenerate every table and figure of the paper's evaluation, plus the
//! execution-diagram figures and the extension studies.
use gv_harness::scenario::Scenario;
use gv_harness::{overhead, repro};

fn main() {
    let scale = repro::scale_from_args();
    let sc = Scenario::default();
    let artifacts = vec![
        repro::table2(&sc, scale),
        repro::table3(&sc, scale),
        repro::table4(),
        repro::fig9(&sc, scale),
        repro::fig10(
            &sc,
            &overhead::paper_sizes()
                .into_iter()
                .map(|s| (s / scale as u64).max(1))
                .collect::<Vec<_>>(),
        ),
        repro::fig11_15(&sc, scale, None),
        repro::fig16(&sc, scale),
    ];
    for a in &artifacts {
        println!("{}\n", a.text);
        a.save();
    }
    println!("(artifacts saved under results/; run repro_fig4_6, repro_ablations");
    println!(" and repro_sensitivity for the execution diagrams and extensions)");
}

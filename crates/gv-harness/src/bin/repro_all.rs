//! Regenerate every table and figure of the paper's evaluation, plus the
//! execution-diagram figures and the extension studies.
//!
//! Flags: `--quick` / `--scale N` shrink costs; `--analyze` additionally
//! runs the `gv-analyze` checkers over representative traces and fails
//! (exit 1) on any diagnostic; `--dump-trace` (with `--analyze`) saves
//! each analyzed trace under `results/` for the `gv-analyze` binary.
use std::process::ExitCode;

use gv_harness::scenario::Scenario;
use gv_harness::{analysis, overhead, repro};

fn main() -> ExitCode {
    let scale = repro::scale_from_args();
    let sc = Scenario::default();
    let artifacts = vec![
        repro::table2(&sc, scale),
        repro::table3(&sc, scale),
        repro::table4(),
        repro::fig9(&sc, scale),
        repro::fig10(
            &sc,
            &overhead::paper_sizes()
                .into_iter()
                .map(|s| (s / scale as u64).max(1))
                .collect::<Vec<_>>(),
        ),
        repro::fig11_15(&sc, scale, None),
        repro::fig16(&sc, scale),
    ];
    for a in &artifacts {
        println!("{}\n", a.text);
        a.save();
    }
    println!("(artifacts saved under results/; run repro_fig4_6, repro_ablations");
    println!(" and repro_sensitivity for the execution diagrams and extensions)");

    if repro::has_flag("--analyze") {
        let scenarios = analysis::run_all(scale);
        let (text, clean) = analysis::render(&scenarios);
        println!("\n{text}");
        gv_harness::report::save("analyze", &text, None, None);
        if repro::has_flag("--dump-trace") {
            analysis::dump_traces(&scenarios);
        }
        if !clean {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

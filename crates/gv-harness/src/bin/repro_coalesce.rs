//! Sweep the cross-rank coalescing flush against the per-rank ablation
//! (payload size × 8 processes, launch-dense workload, mean per-request
//! overhead over direct execution) into `results/coalesce.{txt,csv}` and
//! the machine-readable `results/BENCH_coalesce.json`.
//!
//! Flags: `--quick` / `--scale N` shrink payloads; `--analyze` records
//! every point's trace, checks it with `gv-analyze` (including the
//! coalesce checker's manifest-partition and fan-out rules), and fails
//! (exit 1) on any diagnostic.
use std::process::ExitCode;

use gv_harness::scenario::Scenario;
use gv_harness::{coalesce, repro};

fn main() -> ExitCode {
    let scale = repro::scale_from_args();
    let analyze = repro::has_flag("--analyze");
    let (artifact, json, clean) = coalesce::sweep(&Scenario::default(), scale, analyze);
    println!("{}", artifact.text);
    artifact.save();
    if std::fs::write("results/BENCH_coalesce.json", &json).is_err() {
        eprintln!("warning: cannot write results/BENCH_coalesce.json");
    }
    if !clean {
        eprintln!("gv-analyze diagnostics found in coalesce traces — failing");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

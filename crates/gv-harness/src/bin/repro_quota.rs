//! Measure device-memory quota admission vs VRAM oversubscription with
//! demand-swap over a 1x-8x aggregate-demand sweep into
//! `results/quota.{txt,csv}` and the machine-readable
//! `results/BENCH_quota.json`.
//!
//! Flags: `--quick` / `--scale N` shrink the overcommitted device;
//! `--analyze` records every wave's trace and fails (exit 1) if any
//! `gv-analyze` checker — including the quota/swap checker — reports a
//! diagnostic.

use gv_harness::scenario::Scenario;
use gv_harness::{quota, repro};

fn main() {
    let scale = repro::scale_from_args();
    let analyze = repro::has_flag("--analyze");
    let (points, clean) = quota::sweep(&Scenario::default(), scale, analyze);
    let artifact = quota::artifact(&points, scale);
    println!("{}", artifact.text);
    artifact.save();
    if std::fs::write("results/BENCH_quota.json", quota::bench_json(&points)).is_err() {
        eprintln!("warning: cannot write results/BENCH_quota.json");
    }
    if analyze {
        if clean {
            println!("gv-analyze: every swept trace is clean (quota checker green)");
        } else {
            eprintln!("gv-analyze: diagnostics on at least one swept trace");
            std::process::exit(1);
        }
    }
}

//! Regenerate paper Figs. 11–15 (application turnaround sweeps).
//! Optionally pass a benchmark name (mm|mg|blackscholes|cg|electrostatics).
use gv_harness::repro;
use gv_harness::scenario::Scenario;
use gv_kernels::BenchmarkId;

fn main() {
    let scale = repro::scale_from_args();
    let only = std::env::args()
        .skip(1)
        .find_map(|a| BenchmarkId::parse(&a));
    let a = repro::fig11_15(&Scenario::default(), scale, only);
    println!("{}", a.text);
    a.save();
}

//! Sweep the chunked staging/copy pipeline (chunk count × payload size ×
//! group size, serial staging as baseline) and the steady-state
//! iteration-overlap comparison (adaptive prefetch vs the first-round-only
//! ablation) into `results/pipeline.{txt,csv}` and the machine-readable
//! `results/BENCH_pipeline.json` + `results/BENCH_pipeline_steady.json`.
//!
//! Flags: `--quick` / `--scale N` shrink payloads; `--analyze` records
//! every point's trace, checks it with `gv-analyze` (including the chunk
//! tiling and pool-lease checkers), and fails (exit 1) on any diagnostic.
use std::process::ExitCode;

use gv_harness::scenario::Scenario;
use gv_harness::{pipeline, repro};

fn main() -> ExitCode {
    let scale = repro::scale_from_args();
    let analyze = repro::has_flag("--analyze");
    let (artifact, json, steady_json, clean) =
        pipeline::sweep(&Scenario::default(), scale, analyze);
    println!("{}", artifact.text);
    artifact.save();
    if std::fs::write("results/BENCH_pipeline.json", &json).is_err() {
        eprintln!("warning: cannot write results/BENCH_pipeline.json");
    }
    if std::fs::write("results/BENCH_pipeline_steady.json", &steady_json).is_err() {
        eprintln!("warning: cannot write results/BENCH_pipeline_steady.json");
    }
    if !clean {
        eprintln!("gv-analyze diagnostics found in pipeline traces — failing");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

//! Measure the fault-tolerant GVM's device-allocation cache over three
//! scheduling scenarios (lockstep, staggered wave, staggered wave with a
//! crashed rank) into `results/ft.{txt,csv}` and the machine-readable
//! `results/BENCH_ft.json`.
//!
//! Flags: `--quick` / `--scale N` shrink payloads.

use gv_harness::scenario::Scenario;
use gv_harness::{ft, repro};

fn main() {
    let scale = repro::scale_from_args();
    let points = ft::scenarios(&Scenario::default(), scale);
    let artifact = ft::artifact(&points, scale);
    println!("{}", artifact.text);
    artifact.save();
    if std::fs::write("results/BENCH_ft.json", ft::bench_json(&points)).is_err() {
        eprintln!("warning: cannot write results/BENCH_ft.json");
    }
}

//! Regenerate paper Fig. 16 (application speedups at 8 processes).
use gv_harness::repro;
use gv_harness::scenario::Scenario;

fn main() {
    let scale = repro::scale_from_args();
    let a = repro::fig16(&Scenario::default(), scale);
    println!("{}", a.text);
    a.save();
}

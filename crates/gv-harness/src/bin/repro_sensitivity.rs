//! Device/width sensitivity study (extension beyond the paper).
use gv_harness::report::{x, TextTable};
use gv_harness::scenario::Scenario;
use gv_harness::{repro, sensitivity};
use gv_kernels::BenchmarkId;

fn main() {
    // Floor at 1/4 scale: eight paper-sized VectorAdd working sets
    // (8 × 600 MB) exceed the GTX 480 preset's 1.5 GB of device memory —
    // the sweep must fit the smallest card it visits.
    let scale = repro::scale_from_args().max(4);
    let sc = Scenario::default();

    let mut t1 = TextTable::new(vec!["Device", "Benchmark", "Speedup @8"]);
    for p in sensitivity::device_sweep(
        &sc,
        &[BenchmarkId::VecAdd, BenchmarkId::Ep, BenchmarkId::Cg],
        8,
        scale,
    ) {
        t1.row(vec![
            p.device.to_string(),
            p.benchmark.clone(),
            x(p.speedup),
        ]);
    }

    let mut t2 = TextTable::new(vec!["Benchmark", "n", "Speedup"]);
    for id in [BenchmarkId::Ep, BenchmarkId::VecAdd] {
        for p in sensitivity::width_sweep(&sc, id, &[1, 2, 4, 6, 8], scale) {
            t2.row(vec![
                p.benchmark.clone(),
                p.nprocs.to_string(),
                x(p.speedup),
            ]);
        }
    }

    let text = format!(
        "SENSITIVITY — DEVICE PRESETS AND NODE WIDTHS (scale 1/{scale})\n\n\
         Across Fermi-generation devices (8 processes):\n{}\n\
         Across node widths (paper C2070):\n{}\n\
         Reading: the virtualization gain tracks asymmetry — more cores per\n\
         GPU and more idle SMs per kernel both raise it; device clock and\n\
         SM-count differences within the Fermi family barely move it.\n",
        t1.render(),
        t2.render()
    );
    println!("{text}");
    gv_harness::report::save("sensitivity", &text, Some(&t1.to_csv()), None);
}

//! Schedule-exploration driver: model-check the scenario catalog under
//! many interleavings and gate on any checker diagnostic.
//!
//! ```text
//! repro_explore [--scenario a,b,...] [--budget N] [--pb N] [--no-por]
//!               [--mode dfs|random] [--seed N] [--expect-bug]
//! repro_explore --replay <file.gvsched>
//! ```
//!
//! Default pass: DFS-explore every catalog scenario (`vecadd2`, `vecadd3`,
//! `vecadd2-faulty`, plus `bug-lost-wakeup` with the `seeded-bug` feature)
//! under the budget, writing `results/explore.txt` and
//! `results/BENCH_explore.json`. Any counterexample is shrunk, written to
//! `results/counterexample-<scenario>.gvsched`, and fails the run (exit 1)
//! — unless `--expect-bug` is given, in which case the run fails (exit 1)
//! when NO counterexample is found and additionally verifies the shrunk
//! schedule replays to the same diagnostic.
//!
//! `--replay` re-executes a `.gvsched` file and exits 0 iff its recorded
//! expectation (or cleanliness) is reproduced.

use std::process::ExitCode;

use gv_analyze::explore::{explore, find_scenario, scenarios, ExploreConfig, Mode, Schedule};
use gv_harness::report;
use gv_sim::SimDuration;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() -> ExitCode {
    if has_flag("-h") || has_flag("--help") {
        eprintln!("usage: repro_explore [--scenario a,b,...] [--budget N] [--pb N] [--no-por]");
        eprintln!("                     [--mode dfs|random] [--seed N] [--expect-bug]");
        eprintln!("       repro_explore --replay <file.gvsched>");
        return ExitCode::from(2);
    }

    if let Some(path) = arg_value("--replay") {
        return replay_file(&path);
    }

    let mut cfg = ExploreConfig::default();
    if let Some(b) = arg_value("--budget").and_then(|v| v.parse().ok()) {
        cfg.budget = b;
    }
    if let Some(pb) = arg_value("--pb").and_then(|v| v.parse().ok()) {
        cfg.preemption_bound = pb;
    }
    if let Some(seed) = arg_value("--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = seed;
    }
    if has_flag("--no-por") {
        cfg.por = false;
    }
    match arg_value("--mode").as_deref() {
        Some("random") => cfg.mode = Mode::Random,
        Some("dfs") | None => cfg.mode = Mode::Dfs,
        Some(other) => {
            eprintln!("unknown --mode '{other}' (dfs|random)");
            return ExitCode::from(2);
        }
    }
    let expect_bug = has_flag("--expect-bug");

    let selected: Vec<String> = match arg_value("--scenario") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => scenarios().iter().map(|s| s.name.to_string()).collect(),
    };

    let mut text = String::new();
    let mut json_rows: Vec<String> = Vec::new();
    let mut found_bug = false;
    let mut failed = false;
    text.push_str(&format!(
        "schedule exploration: mode={:?} budget={} pb={} por={}\n\n",
        cfg.mode, cfg.budget, cfg.preemption_bound, cfg.por
    ));
    for name in &selected {
        let Some(scenario) = find_scenario(name) else {
            eprintln!("unknown scenario '{name}' (have: {:?})", scenario_names());
            return ExitCode::from(2);
        };
        let outcome = explore(&scenario, &cfg);
        let verdict = match &outcome.counterexample {
            None => "clean".to_string(),
            Some(c) => format!("FAIL[{}]", c.checker),
        };
        text.push_str(&format!(
            "{:<18} {:>4} schedules, {:>3} distinct behaviors, {:>3} pruned: {}\n",
            scenario.name, outcome.schedules_run, outcome.distinct, outcome.pruned, verdict
        ));
        json_rows.push(format!(
            "    {{\"scenario\": \"{}\", \"schedules\": {}, \"distinct\": {}, \"pruned\": {}, \"counterexample\": {}}}",
            scenario.name,
            outcome.schedules_run,
            outcome.distinct,
            outcome.pruned,
            outcome
                .counterexample
                .as_ref()
                .map_or("null".to_string(), |c| format!("\"{}\"", c.checker))
        ));
        if let Some(cex) = outcome.counterexample {
            found_bug = true;
            let sched = cex.schedule();
            let path = format!("results/counterexample-{}.gvsched", scenario.name);
            let _ = std::fs::create_dir_all("results");
            let _ = std::fs::write(&path, sched.encode());
            text.push_str(&format!(
                "  counterexample (choices {:?}) written to {path}\n",
                cex.choices
            ));
            for d in &cex.diagnostics {
                text.push_str(&format!("  {d}\n"));
            }
            // The shrunk schedule must replay to the same diagnostic.
            match sched.replay(SimDuration::from_secs(10)) {
                Ok(r) if r.expected_hit == Some(true) => {
                    text.push_str("  replay reproduces the diagnostic\n");
                }
                _ => {
                    text.push_str("  REPLAY FAILED to reproduce the diagnostic\n");
                    failed = true;
                }
            }
            if !expect_bug {
                failed = true;
            }
        }
    }
    if expect_bug && !found_bug {
        text.push_str("\nexpected a counterexample but every schedule was clean\n");
        failed = true;
    }

    let json = format!(
        "{{\n  \"bench\": \"schedule_exploration\",\n  \"mode\": \"{:?}\",\n  \"budget\": {},\n  \"preemption_bound\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cfg.mode,
        cfg.budget,
        cfg.preemption_bound,
        json_rows.join(",\n")
    );
    print!("{text}");
    report::save("explore", &text, None, None);
    if std::fs::write("results/BENCH_explore.json", &json).is_err() {
        eprintln!("warning: cannot write results/BENCH_explore.json");
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn scenario_names() -> Vec<&'static str> {
    scenarios().iter().map(|s| s.name).collect()
}

fn replay_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return ExitCode::from(2);
        }
    };
    let sched = match Schedule::decode(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match sched.replay(SimDuration::from_secs(10)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &result.diagnostics {
        println!("{d}");
    }
    let ok = match result.expected_hit {
        Some(hit) => hit,
        None => result.diagnostics.is_empty(),
    };
    if ok {
        println!(
            "{path}: replay of '{}' matched its recorded outcome",
            sched.scenario
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "{path}: replay of '{}' did NOT match its recorded outcome",
            sched.scenario
        );
        ExitCode::from(1)
    }
}

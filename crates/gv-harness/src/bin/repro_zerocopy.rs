//! Sweep the zero-copy descriptor-passing transport against the staged
//! ablation (payload size × 8 processes, mean per-request overhead over
//! direct execution) into `results/zerocopy.{txt,csv}` and the
//! machine-readable `results/BENCH_zerocopy.json`.
//!
//! Flags: `--quick` / `--scale N` shrink payloads; `--analyze` records
//! every point's trace, checks it with `gv-analyze` (including the
//! descriptor-currency and write-after-SND staging rules), and fails
//! (exit 1) on any diagnostic or if zero-copy fails to beat the ablation.
use std::process::ExitCode;

use gv_harness::scenario::Scenario;
use gv_harness::{repro, zerocopy};

fn main() -> ExitCode {
    let scale = repro::scale_from_args();
    let analyze = repro::has_flag("--analyze");
    let (artifact, json, clean) = zerocopy::sweep(&Scenario::default(), scale, analyze);
    println!("{}", artifact.text);
    artifact.save();
    if std::fs::write("results/BENCH_zerocopy.json", &json).is_err() {
        eprintln!("warning: cannot write results/BENCH_zerocopy.json");
    }
    if !clean {
        eprintln!("gv-analyze diagnostics found in zerocopy traces — failing");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

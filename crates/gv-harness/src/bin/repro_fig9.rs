//! Regenerate paper Fig. 9 (microbenchmark turnaround sweeps).
use gv_harness::repro;
use gv_harness::scenario::Scenario;

fn main() {
    let scale = repro::scale_from_args();
    let a = repro::fig9(&Scenario::default(), scale);
    println!("{}", a.text);
    a.save();
}

//! Virtualization-overhead microbenchmark — regenerates Fig. 10.
//!
//! One process runs a VectorAdd-shaped task of varying data size through
//! the GVM. Following the paper's methodology, we compare the process
//! turnaround time with the time spent in the *base layer* — the GVM's
//! staging copies plus the GPU operations — so the reported overhead is the
//! API layer's contribution: the client-side shared-memory copies and the
//! request/response messaging.

use gv_gpu::estimate_kernel_time;
use gv_kernels::vecadd;
use serde::Serialize;

use crate::scenario::{ExecutionMode, Scenario};

/// One Fig. 10 data point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OverheadPoint {
    /// Total staged data (input) size in MB.
    pub data_mb: f64,
    /// Process turnaround through the GVM, ms.
    pub turnaround_ms: f64,
    /// Base-layer time (GVM staging copies + GPU transfers + kernel), ms.
    pub base_layer_ms: f64,
    /// Overhead fraction `(turnaround − base) / turnaround`.
    pub overhead_frac: f64,
}

/// Run the overhead microbenchmark for the given input sizes (MB of H2D
/// data; the paper sweeps up to 400 MB).
pub fn sweep(scenario: &Scenario, sizes_mb: &[u64]) -> Vec<OverheadPoint> {
    let cfg = &scenario.device;
    sizes_mb
        .iter()
        .map(|&mb| {
            // VectorAdd layout: input = 2/3 arrays, output = 1/3.
            let n = mb * 1_000_000 / 8; // elements such that bytes_in = mb MB
            let task = vecadd::scaled_task(cfg, n);
            let r = scenario.run_uniform(ExecutionMode::Virtualized, &task, 1);
            let gvm = r.gvm.as_ref().expect("virtualized run has GVM stats");

            // Base layer: GVM staging copies + device transfers + kernel.
            let gpu_ms = cfg.copy_time(task.bytes_in, true, true).as_millis_f64()
                + estimate_kernel_time(cfg, &task.kernels[0].desc).as_millis_f64()
                + cfg.copy_time(task.bytes_out, false, true).as_millis_f64();
            let base_layer_ms = gvm.copy_time.as_millis_f64() + gpu_ms;
            let turnaround_ms = r.turnaround_ms;
            OverheadPoint {
                data_mb: mb as f64,
                turnaround_ms,
                base_layer_ms,
                overhead_frac: (turnaround_ms - base_layer_ms) / turnaround_ms,
            }
        })
        .collect()
}

/// The paper's sweep sizes (MB of staged input data).
pub fn paper_sizes() -> Vec<u64> {
    vec![25, 50, 100, 150, 200, 250, 300, 350, 400]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_size_but_stays_bounded() {
        let sc = Scenario::default();
        let pts = sweep(&sc, &[25, 100, 400]);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.turnaround_ms > p.base_layer_ms, "{p:?}");
            assert!(p.overhead_frac > 0.0 && p.overhead_frac < 0.5, "{p:?}");
        }
        // Absolute overhead (ms) grows with data size…
        let abs: Vec<f64> = pts
            .iter()
            .map(|p| p.turnaround_ms - p.base_layer_ms)
            .collect();
        assert!(abs[2] > abs[1] && abs[1] > abs[0]);
        // …and the paper's headline bound holds at 400 MB.
        assert!(
            pts[2].overhead_frac < 0.25,
            "overhead at 400 MB = {:.1}% (paper: <25%)",
            pts[2].overhead_frac * 100.0
        );
    }
}

//! POSIX-like named shared memory with a copy-cost model.
//!
//! The paper's GVM gives every user process its own "virtual shared memory"
//! segment (POSIX `shm_open` + `mmap`) for exchanging GPU data with the
//! virtualization layer. [`ShmRegistry`] provides named creation/opening;
//! reads and writes charge the caller host-memcpy time from the node
//! configuration, and optionally move real bytes for functional runs.

use std::collections::HashMap;
use std::sync::Arc;

use gv_sim::Ctx;
use parking_lot::Mutex;

use crate::node::NodeConfig;

/// Errors from shared-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// `create` on an existing name.
    AlreadyExists(String),
    /// `open` on an unknown name.
    NotFound(String),
    /// Access beyond the segment size.
    OutOfBounds {
        /// Name of the segment the access targeted.
        segment: String,
        /// Byte offset the access started at.
        offset: u64,
        /// First byte past the access.
        end: u64,
        /// Segment size.
        size: u64,
    },
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::AlreadyExists(n) => write!(f, "shm '{n}' already exists"),
            ShmError::NotFound(n) => write!(f, "shm '{n}' not found"),
            ShmError::OutOfBounds {
                segment,
                offset,
                end,
                size,
            } => {
                write!(
                    f,
                    "shm '{segment}' access out of bounds: offset {offset}, end {end} > size {size}"
                )
            }
        }
    }
}

/// External storage a segment can be created over ([`ShmRegistry::create_backed`]).
///
/// The zero-copy transport exports a pinned staging-pool lease *as* a
/// shared-memory segment: client writes land directly in the lease region
/// the GVM issues H2D copies from, so `SND` carries only a descriptor.
/// `gv-ipc` stays agnostic of what the backing is — it only needs stores
/// and loads by offset.
#[allow(clippy::len_without_is_empty)]
pub trait ShmBacking: Send + Sync {
    /// Backing capacity in bytes (must cover the segment size).
    fn len(&self) -> u64;
    /// Does the backing carry real bytes? Timing-only backings make the
    /// segment behave like an untouched one (reads are zeroes).
    fn is_functional(&self) -> bool;
    /// Store `data` at `offset` (functional backings only).
    fn store(&self, offset: u64, data: &[u8]);
    /// Fill `out` from `offset` (functional backings only).
    fn load(&self, offset: u64, out: &mut [u8]);
}

impl std::error::Error for ShmError {}

struct Segment {
    size: u64,
    /// Lazily materialized contents (functional runs only). Unused when
    /// `backing` is set.
    data: Option<Vec<u8>>,
    /// External storage the segment was exported over (zero-copy leases).
    backing: Option<Arc<dyn ShmBacking>>,
}

/// Armed deterministic corruption faults for one named segment.
///
/// Indices count *timed writes over the segment's lifetime* (0-based), so a
/// schedule armed before the segment exists fires deterministically once
/// traffic starts. Each armed fault is consumed when it fires.
#[derive(Debug, Default)]
pub struct ShmFaults {
    writes: u64,
    corrupt_at: Vec<u64>,
}

impl ShmFaults {
    /// `(seq, corrupt)` decision for the next timed write.
    fn next_write(&mut self) -> (u64, bool) {
        let seq = self.writes;
        self.writes += 1;
        let corrupt = match self.corrupt_at.iter().position(|&s| s == seq) {
            Some(i) => {
                self.corrupt_at.swap_remove(i);
                true
            }
            None => false,
        };
        (seq, corrupt)
    }
}

/// A handle to one named shared-memory segment.
#[derive(Clone)]
pub struct SharedMem {
    name: String,
    seg: Arc<Mutex<Segment>>,
    node: Arc<NodeConfig>,
    faults: Arc<Mutex<ShmFaults>>,
}

impl std::fmt::Debug for SharedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMem")
            .field("name", &self.name)
            .field("size", &self.seg.lock().size)
            .finish()
    }
}

impl SharedMem {
    /// Segment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record this access for happens-before analysis (no-op unless the
    /// tracer's analysis recording is on — `clock_stamp` returns `None`).
    fn record_access(&self, ctx: &mut Ctx, offset: u64, len: u64, is_write: bool) {
        if let Some(clock) = ctx.clock_stamp() {
            ctx.tracer()
                .record_analysis(gv_sim::AnalysisRecord::ShmAccess {
                    time: ctx.now(),
                    pid: ctx.pid(),
                    process: ctx.name(),
                    segment: self.name.clone(),
                    offset: offset as usize,
                    len: len as usize,
                    is_write,
                    clock,
                });
        }
    }

    /// Segment size in bytes.
    pub fn size(&self) -> u64 {
        self.seg.lock().size
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), ShmError> {
        let size = self.seg.lock().size;
        let end = offset + len;
        if end > size {
            Err(ShmError::OutOfBounds {
                segment: self.name.clone(),
                offset,
                end,
                size,
            })
        } else {
            Ok(())
        }
    }

    /// Charge the caller for copying `bytes` through this segment without
    /// moving real data (timing-only experiments).
    pub fn touch(&self, ctx: &mut Ctx, bytes: u64) -> Result<(), ShmError> {
        self.check(0, bytes)?;
        ctx.hold(self.node.memcpy_time(bytes));
        self.record_access(ctx, 0, bytes, true);
        Ok(())
    }

    /// Write `data` at `offset`, charging memcpy time. If corruption is
    /// armed for this write, every stored byte is XORed with `0xFF` after
    /// the copy (modelling a torn/garbled transfer) and a `fault`-category
    /// instant is recorded on the tracer.
    pub fn write(&self, ctx: &mut Ctx, offset: u64, data: &[u8]) -> Result<(), ShmError> {
        self.check(offset, data.len() as u64)?;
        ctx.hold(self.node.memcpy_time(data.len() as u64));
        self.record_access(ctx, offset, data.len() as u64, true);
        let (seq, corrupt) = self.faults.lock().next_write();
        let mut seg = self.seg.lock();
        if let Some(backing) = seg.backing.clone() {
            drop(seg);
            if backing.is_functional() {
                backing.store(offset, data);
                if corrupt {
                    let mut span = data.to_vec();
                    for b in &mut span {
                        *b ^= 0xFF;
                    }
                    backing.store(offset, &span);
                }
            }
            if corrupt {
                ctx.tracer()
                    .fault(ctx.now(), format!("shm-corrupt:{}#{seq}", self.name));
            }
            return Ok(());
        }
        let size = seg.size as usize;
        let store = seg.data.get_or_insert_with(|| vec![0u8; size]);
        store[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        if corrupt {
            for b in &mut store[offset as usize..offset as usize + data.len()] {
                *b ^= 0xFF;
            }
            drop(seg);
            ctx.tracer()
                .fault(ctx.now(), format!("shm-corrupt:{}#{seq}", self.name));
        }
        Ok(())
    }

    /// Arm a corruption fault at this segment's `nth` timed write (0-based).
    pub fn arm_corrupt(&self, nth: u64) {
        self.faults.lock().corrupt_at.push(nth);
    }

    /// Read `len` bytes at `offset`, charging memcpy time. Untouched
    /// regions read as zeroes.
    pub fn read(&self, ctx: &mut Ctx, offset: u64, len: u64) -> Result<Vec<u8>, ShmError> {
        self.check(offset, len)?;
        ctx.hold(self.node.memcpy_time(len));
        self.record_access(ctx, offset, len, false);
        self.snapshot(offset, len)
    }

    /// Untimed load shared by `read`/`peek`: backing if present, else the
    /// lazily materialized private store.
    fn snapshot(&self, offset: u64, len: u64) -> Result<Vec<u8>, ShmError> {
        let mut seg = self.seg.lock();
        if let Some(backing) = seg.backing.clone() {
            drop(seg);
            let mut out = vec![0u8; len as usize];
            if backing.is_functional() {
                backing.load(offset, &mut out);
            }
            return Ok(out);
        }
        let size = seg.size as usize;
        let store = seg.data.get_or_insert_with(|| vec![0u8; size]);
        Ok(store[offset as usize..(offset + len) as usize].to_vec())
    }

    /// Zero-cost snapshot of the raw contents (verification plumbing, not a
    /// timed operation).
    pub fn peek(&self, offset: u64, len: u64) -> Result<Vec<u8>, ShmError> {
        self.check(offset, len)?;
        self.snapshot(offset, len)
    }

    /// Zero-cost raw write (seeding test fixtures).
    pub fn poke(&self, offset: u64, data: &[u8]) -> Result<(), ShmError> {
        self.check(offset, data.len() as u64)?;
        let mut seg = self.seg.lock();
        if let Some(backing) = seg.backing.clone() {
            drop(seg);
            if backing.is_functional() {
                backing.store(offset, data);
            }
            return Ok(());
        }
        let size = seg.size as usize;
        let store = seg.data.get_or_insert_with(|| vec![0u8; size]);
        store[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// The node-wide shared-memory namespace (`/dev/shm` analogue).
#[derive(Clone)]
pub struct ShmRegistry {
    node: Arc<NodeConfig>,
    segments: Arc<Mutex<HashMap<String, Arc<Mutex<Segment>>>>>,
    /// Fault schedules by segment name, independent of segment lifetime so
    /// a plan can be armed before the target segment is created.
    faults: Arc<Mutex<HashMap<String, Arc<Mutex<ShmFaults>>>>>,
}

impl ShmRegistry {
    /// An empty namespace using `node`'s cost model.
    pub fn new(node: &NodeConfig) -> Self {
        ShmRegistry {
            node: Arc::new(node.clone()),
            segments: Arc::new(Mutex::new(HashMap::new())),
            faults: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The (shared, lazily created) fault schedule for segment `name`.
    pub fn fault_entry(&self, name: &str) -> Arc<Mutex<ShmFaults>> {
        Arc::clone(self.faults.lock().entry(name.to_string()).or_default())
    }

    /// Arm a corruption fault at the `nth` timed write of segment `name`
    /// (armable before the segment exists).
    pub fn arm_corrupt(&self, name: &str, nth: u64) {
        self.fault_entry(name).lock().corrupt_at.push(nth);
    }

    /// `shm_open(O_CREAT|O_EXCL)`: create a named segment.
    pub fn create(&self, name: &str, size: u64) -> Result<SharedMem, ShmError> {
        let mut segs = self.segments.lock();
        if segs.contains_key(name) {
            return Err(ShmError::AlreadyExists(name.to_string()));
        }
        let seg = Arc::new(Mutex::new(Segment {
            size,
            data: None,
            backing: None,
        }));
        segs.insert(name.to_string(), Arc::clone(&seg));
        drop(segs);
        Ok(SharedMem {
            name: name.to_string(),
            seg,
            node: Arc::clone(&self.node),
            faults: self.fault_entry(name),
        })
    }

    /// `shm_open(O_CREAT|O_EXCL)` over external storage: create a named
    /// segment whose bytes live in `backing` (a zero-copy staging lease).
    /// Writes and reads charge the same memcpy model as a private segment
    /// but move bytes directly in the backing, so a copy out of the segment
    /// on the other side is no longer needed.
    pub fn create_backed(
        &self,
        name: &str,
        size: u64,
        backing: Arc<dyn ShmBacking>,
    ) -> Result<SharedMem, ShmError> {
        assert!(
            backing.len() >= size,
            "shm '{name}' backing of {} bytes cannot cover segment of {size} bytes",
            backing.len()
        );
        let mut segs = self.segments.lock();
        if segs.contains_key(name) {
            return Err(ShmError::AlreadyExists(name.to_string()));
        }
        let seg = Arc::new(Mutex::new(Segment {
            size,
            data: None,
            backing: Some(backing),
        }));
        segs.insert(name.to_string(), Arc::clone(&seg));
        drop(segs);
        Ok(SharedMem {
            name: name.to_string(),
            seg,
            node: Arc::clone(&self.node),
            faults: self.fault_entry(name),
        })
    }

    /// `shm_open(0)`: open an existing named segment.
    pub fn open(&self, name: &str) -> Result<SharedMem, ShmError> {
        let seg = {
            let segs = self.segments.lock();
            Arc::clone(
                segs.get(name)
                    .ok_or_else(|| ShmError::NotFound(name.to_string()))?,
            )
        };
        Ok(SharedMem {
            name: name.to_string(),
            seg,
            node: Arc::clone(&self.node),
            faults: self.fault_entry(name),
        })
    }

    /// `shm_unlink`: remove a name (existing handles stay usable).
    pub fn unlink(&self, name: &str) -> Result<(), ShmError> {
        self.segments
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ShmError::NotFound(name.to_string()))
    }

    /// Number of live names.
    pub fn len(&self) -> usize {
        self.segments.lock().len()
    }

    /// Is the namespace empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use gv_sim::Simulation;

    fn registry() -> ShmRegistry {
        ShmRegistry::new(&NodeConfig::test_tiny())
    }

    #[test]
    fn create_open_roundtrip() {
        let reg = registry();
        let a = reg.create("/gvm-p0", 1024).unwrap();
        let b = reg.open("/gvm-p0").unwrap();
        a.poke(0, &[1, 2, 3]).unwrap();
        assert_eq!(b.peek(0, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let reg = registry();
        reg.create("/x", 64).unwrap();
        assert_eq!(
            reg.create("/x", 64).unwrap_err(),
            ShmError::AlreadyExists("/x".into())
        );
    }

    #[test]
    fn open_missing_rejected() {
        let reg = registry();
        assert_eq!(reg.open("/y").unwrap_err(), ShmError::NotFound("/y".into()));
    }

    #[test]
    fn unlink_removes_name_but_not_mapping() {
        let reg = registry();
        let seg = reg.create("/z", 64).unwrap();
        reg.unlink("/z").unwrap();
        assert!(reg.open("/z").is_err());
        seg.poke(0, &[9]).unwrap(); // handle still alive
        assert_eq!(seg.peek(0, 1).unwrap(), vec![9]);
    }

    #[test]
    fn timed_write_read_charges_memcpy() {
        let mut sim = Simulation::new();
        let reg = registry();
        let seg = reg.create("/t", 2_000_000).unwrap();
        sim.spawn("p", move |ctx| {
            // 1 MB at 1 GB/s = 1 ms (+1 µs latency), twice.
            let data = vec![7u8; 1_000_000];
            seg.write(ctx, 0, &data).unwrap();
            let back = seg.read(ctx, 0, 1_000_000).unwrap();
            assert_eq!(back, data);
            let t = ctx.now().as_millis_f64();
            assert!((t - 2.002).abs() < 1e-6, "t = {t}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn armed_corruption_flips_exactly_that_write() {
        let mut sim = Simulation::new();
        sim.tracer().set_enabled(true);
        let tracer = sim.tracer().clone();
        let reg = registry();
        // Armed through the registry before the segment exists.
        reg.arm_corrupt("/cor", 1);
        let seg = reg.create("/cor", 16).unwrap();
        sim.spawn("p", move |ctx| {
            seg.write(ctx, 0, &[1, 2, 3]).unwrap();
            assert_eq!(seg.peek(0, 3).unwrap(), vec![1, 2, 3]);
            seg.write(ctx, 0, &[1, 2, 3]).unwrap();
            assert_eq!(seg.peek(0, 3).unwrap(), vec![0xFE, 0xFD, 0xFC]);
            seg.write(ctx, 0, &[1, 2, 3]).unwrap();
            assert_eq!(seg.peek(0, 3).unwrap(), vec![1, 2, 3]);
        });
        sim.run().unwrap();
        let faults = tracer.fault_events();
        assert_eq!(faults.len(), 1);
        // The label carries the segment name so multi-segment fault
        // schedules stay attributable.
        assert_eq!(faults[0].label, "shm-corrupt:/cor#1");
        assert!(faults[0].label.contains("/cor"));
    }

    #[test]
    fn out_of_bounds_names_segment_and_offset() {
        let mut sim = Simulation::new();
        let reg = registry();
        let seg = reg.create("/b", 16).unwrap();
        sim.spawn("p", move |ctx| {
            let err = seg.write(ctx, 10, &[0u8; 10]).unwrap_err();
            assert_eq!(
                err,
                ShmError::OutOfBounds {
                    segment: "/b".into(),
                    offset: 10,
                    end: 20,
                    size: 16,
                }
            );
            let msg = err.to_string();
            assert!(msg.contains("'/b'"), "missing segment name: {msg}");
            assert!(msg.contains("offset 10"), "missing offset: {msg}");
            assert!(matches!(
                seg.touch(ctx, 17),
                Err(ShmError::OutOfBounds { .. })
            ));
        });
        sim.run().unwrap();
    }

    struct VecBacking(Mutex<Vec<u8>>);

    impl ShmBacking for VecBacking {
        fn len(&self) -> u64 {
            self.0.lock().len() as u64
        }
        fn is_functional(&self) -> bool {
            true
        }
        fn store(&self, offset: u64, data: &[u8]) {
            let mut v = self.0.lock();
            v[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        }
        fn load(&self, offset: u64, out: &mut [u8]) {
            let v = self.0.lock();
            out.copy_from_slice(&v[offset as usize..offset as usize + out.len()]);
        }
    }

    #[test]
    fn backed_segment_moves_bytes_in_external_storage() {
        let mut sim = Simulation::new();
        let reg = registry();
        let backing = Arc::new(VecBacking(Mutex::new(vec![0u8; 32])));
        let seg = reg
            .create_backed("/lease", 16, Arc::clone(&backing) as Arc<dyn ShmBacking>)
            .unwrap();
        let probe = backing.clone();
        sim.spawn("p", move |ctx| {
            seg.write(ctx, 2, &[7, 8, 9]).unwrap();
            // The bytes landed in the backing itself — no private copy.
            assert_eq!(&probe.0.lock()[2..5], &[7, 8, 9]);
            assert_eq!(seg.read(ctx, 2, 3).unwrap(), vec![7, 8, 9]);
            assert_eq!(seg.peek(2, 3).unwrap(), vec![7, 8, 9]);
            seg.poke(0, &[1]).unwrap();
            assert_eq!(probe.0.lock()[0], 1);
            // Bounds are the segment's, not the (larger) backing's.
            assert!(matches!(
                seg.write(ctx, 14, &[0u8; 4]),
                Err(ShmError::OutOfBounds { .. })
            ));
        });
        sim.run().unwrap();
    }

    #[test]
    fn backed_segment_corruption_fires_in_backing() {
        let mut sim = Simulation::new();
        sim.tracer().set_enabled(true);
        let tracer = sim.tracer().clone();
        let reg = registry();
        reg.arm_corrupt("/bl", 0);
        let backing = Arc::new(VecBacking(Mutex::new(vec![0u8; 8])));
        let seg = reg
            .create_backed("/bl", 8, Arc::clone(&backing) as Arc<dyn ShmBacking>)
            .unwrap();
        sim.spawn("p", move |ctx| {
            seg.write(ctx, 0, &[1, 2]).unwrap();
            assert_eq!(seg.peek(0, 2).unwrap(), vec![0xFE, 0xFD]);
        });
        sim.run().unwrap();
        let faults = tracer.fault_events();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].label, "shm-corrupt:/bl#0");
    }
}

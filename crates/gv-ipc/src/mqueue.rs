//! POSIX-like named message queues.
//!
//! The GVM uses two queues — requests in, responses out — to synchronize
//! with user processes ("by using streaming queues, resource contention
//! problems are prevented"). [`MqRegistry`] provides named creation and
//! opening; every send and receive charges the configured one-way latency,
//! and receives block (in simulated time) until a message arrives.

use std::collections::HashMap;
use std::sync::Arc;

use gv_sim::{Ctx, SimChannel};
use parking_lot::Mutex;

use crate::node::NodeConfig;

/// Errors from message-queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqError {
    /// `create` on an existing name.
    AlreadyExists(String),
    /// `open` on an unknown name.
    NotFound(String),
    /// Send on a closed queue.
    Closed,
}

impl std::fmt::Display for MqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MqError::AlreadyExists(n) => write!(f, "mq '{n}' already exists"),
            MqError::NotFound(n) => write!(f, "mq '{n}' not found"),
            MqError::Closed => write!(f, "mq is closed"),
        }
    }
}

impl std::error::Error for MqError {}

/// A handle to one named message queue carrying `T`.
pub struct MessageQueue<T> {
    name: String,
    chan: SimChannel<T>,
    node: Arc<NodeConfig>,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        MessageQueue {
            name: self.name.clone(),
            chan: self.chan.clone(),
            node: Arc::clone(&self.node),
        }
    }
}

impl<T> MessageQueue<T> {
    /// Queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `mq_send`: blocking send (bounded queues block when full),
    /// charging one-way latency.
    pub fn send(&self, ctx: &mut Ctx, msg: T) -> Result<(), MqError> {
        ctx.hold(self.node.mq_latency);
        self.chan.send(ctx, msg).map_err(|_| MqError::Closed)
    }

    /// `mq_receive`: blocking receive, charging one-way latency.
    /// `None` once the queue is closed and drained.
    pub fn recv(&self, ctx: &mut Ctx) -> Option<T> {
        let msg = self.chan.recv(ctx)?;
        ctx.hold(self.node.mq_latency);
        Some(msg)
    }

    /// Non-blocking receive (no latency charged on miss).
    pub fn try_recv(&self, ctx: &mut Ctx) -> Option<T> {
        let msg = self.chan.try_recv(ctx)?;
        ctx.hold(self.node.mq_latency);
        Some(msg)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.chan.is_empty()
    }

    /// Close the queue: further sends fail, receivers drain then see `None`.
    pub fn close(&self, ctx: &Ctx) {
        self.chan.close(ctx);
    }
}

/// A node-wide namespace of message queues carrying `T`.
pub struct MqRegistry<T> {
    node: Arc<NodeConfig>,
    queues: Arc<Mutex<HashMap<String, SimChannel<T>>>>,
}

impl<T> Clone for MqRegistry<T> {
    fn clone(&self) -> Self {
        MqRegistry {
            node: Arc::clone(&self.node),
            queues: Arc::clone(&self.queues),
        }
    }
}

impl<T> MqRegistry<T> {
    /// An empty namespace using `node`'s latency model.
    pub fn new(node: &NodeConfig) -> Self {
        MqRegistry {
            node: Arc::new(node.clone()),
            queues: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// `mq_open(O_CREAT|O_EXCL)` with optional depth bound.
    pub fn create(&self, name: &str, capacity: Option<usize>) -> Result<MessageQueue<T>, MqError> {
        let mut qs = self.queues.lock();
        if qs.contains_key(name) {
            return Err(MqError::AlreadyExists(name.to_string()));
        }
        let chan = match capacity {
            Some(c) => SimChannel::bounded(c),
            None => SimChannel::unbounded(),
        };
        qs.insert(name.to_string(), chan.clone());
        Ok(MessageQueue {
            name: name.to_string(),
            chan,
            node: Arc::clone(&self.node),
        })
    }

    /// `mq_open(0)`: open an existing queue.
    pub fn open(&self, name: &str) -> Result<MessageQueue<T>, MqError> {
        let qs = self.queues.lock();
        let chan = qs
            .get(name)
            .ok_or_else(|| MqError::NotFound(name.to_string()))?;
        Ok(MessageQueue {
            name: name.to_string(),
            chan: chan.clone(),
            node: Arc::clone(&self.node),
        })
    }

    /// `mq_unlink`.
    pub fn unlink(&self, name: &str) -> Result<(), MqError> {
        self.queues
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| MqError::NotFound(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use gv_sim::{SimDuration, Simulation};

    #[test]
    fn send_recv_charges_latency_each_way() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/req", None).unwrap();
        let q2 = reg.open("/req").unwrap();
        sim.spawn("sender", move |ctx| {
            q.send(ctx, 42).unwrap();
            // one-way latency = 1 µs
            assert_eq!(ctx.now().as_nanos(), 1_000);
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(q2.recv(ctx), Some(42));
            // send latency + recv latency
            assert_eq!(ctx.now().as_nanos(), 2_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_blocks_until_send() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<&'static str> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/resp", None).unwrap();
        let tx = q.clone();
        sim.spawn("gvm", move |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            tx.send(ctx, "ACK").unwrap();
        });
        sim.spawn("proc", move |ctx| {
            assert_eq!(q.recv(ctx), Some("ACK"));
            assert!(ctx.now().as_millis_f64() >= 5.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn namespace_semantics() {
        let reg: MqRegistry<u8> = MqRegistry::new(&NodeConfig::test_tiny());
        reg.create("/a", Some(4)).unwrap();
        assert!(matches!(
            reg.create("/a", None),
            Err(MqError::AlreadyExists(_))
        ));
        assert!(reg.open("/a").is_ok());
        reg.unlink("/a").unwrap();
        assert!(matches!(reg.open("/a"), Err(MqError::NotFound(_))));
    }

    #[test]
    fn closed_queue_rejects_sends() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u8> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/c", None).unwrap();
        sim.spawn("p", move |ctx| {
            q.close(ctx);
            assert_eq!(q.send(ctx, 1), Err(MqError::Closed));
            assert_eq!(q.recv(ctx), None);
        });
        sim.run().unwrap();
    }
}

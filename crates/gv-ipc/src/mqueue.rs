//! POSIX-like named message queues.
//!
//! The GVM uses two queues — requests in, responses out — to synchronize
//! with user processes ("by using streaming queues, resource contention
//! problems are prevented"). [`MqRegistry`] provides named creation and
//! opening; every send and receive charges the configured one-way latency,
//! and receives block (in simulated time) until a message arrives.

use std::collections::HashMap;
use std::sync::Arc;

use gv_sim::{Ctx, RecvTimeout, SimChannel, SimDuration};
use parking_lot::Mutex;

use crate::node::NodeConfig;

/// Armed deterministic faults for one named queue.
///
/// Fault indices count *sends over the queue's lifetime* (0-based), so a
/// schedule armed before the queue even exists fires deterministically once
/// traffic starts. Each armed fault is consumed when it fires; a fired
/// fault records a `fault`-category instant on the simulation tracer.
#[derive(Debug, Default)]
pub struct MqFaults {
    sends: u64,
    drop_at: Vec<u64>,
    dup_at: Vec<u64>,
    delay_at: Vec<(u64, SimDuration)>,
}

impl MqFaults {
    /// `(seq, drop, duplicate, delay)` decision for the next send.
    fn next_send(&mut self) -> (u64, bool, bool, Option<SimDuration>) {
        let seq = self.sends;
        self.sends += 1;
        let drop = match self.drop_at.iter().position(|&s| s == seq) {
            Some(i) => {
                self.drop_at.swap_remove(i);
                true
            }
            None => false,
        };
        let dup = match self.dup_at.iter().position(|&s| s == seq) {
            Some(i) => {
                self.dup_at.swap_remove(i);
                true
            }
            None => false,
        };
        let delay = match self.delay_at.iter().position(|&(s, _)| s == seq) {
            Some(i) => Some(self.delay_at.swap_remove(i).1),
            None => None,
        };
        (seq, drop, dup, delay)
    }
}

/// Errors from message-queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqError {
    /// `create` on an existing name.
    AlreadyExists(String),
    /// `open` on an unknown name.
    NotFound(String),
    /// Send on a closed queue.
    Closed,
}

impl std::fmt::Display for MqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MqError::AlreadyExists(n) => write!(f, "mq '{n}' already exists"),
            MqError::NotFound(n) => write!(f, "mq '{n}' not found"),
            MqError::Closed => write!(f, "mq is closed"),
        }
    }
}

impl std::error::Error for MqError {}

/// A handle to one named message queue carrying `T`.
pub struct MessageQueue<T> {
    name: String,
    chan: SimChannel<T>,
    node: Arc<NodeConfig>,
    faults: Arc<Mutex<MqFaults>>,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        MessageQueue {
            name: self.name.clone(),
            chan: self.chan.clone(),
            node: Arc::clone(&self.node),
            faults: Arc::clone(&self.faults),
        }
    }
}

impl<T> MessageQueue<T> {
    /// Queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `mq_send`: blocking send (bounded queues block when full),
    /// charging one-way latency. Armed faults on this queue fire here:
    /// a dropped message silently vanishes after the latency charge, a
    /// delayed message charges the extra delay to the sender, a duplicated
    /// message is enqueued twice.
    pub fn send(&self, ctx: &mut Ctx, msg: T) -> Result<(), MqError>
    where
        T: Clone,
    {
        ctx.hold(self.node.mq_latency);
        let (seq, drop, dup, delay) = self.faults.lock().next_send();
        if drop {
            ctx.tracer()
                .fault(ctx.now(), format!("mq-drop:{}#{seq}", self.name));
            return Ok(());
        }
        if let Some(extra) = delay {
            ctx.tracer()
                .fault(ctx.now(), format!("mq-delay:{}#{seq}", self.name));
            ctx.hold(extra);
        }
        if dup {
            ctx.tracer()
                .fault(ctx.now(), format!("mq-dup:{}#{seq}", self.name));
            self.chan
                .send(ctx, msg.clone())
                .map_err(|_| MqError::Closed)?;
        }
        self.chan.send(ctx, msg).map_err(|_| MqError::Closed)
    }

    /// Send without charging the per-message one-way latency (the caller
    /// already paid it once for a whole batch via
    /// [`charge_latency`](Self::charge_latency)). Armed faults still fire
    /// exactly as for [`send`](Self::send) — batching changes the latency
    /// accounting, not the fault schedule.
    ///
    /// This is the zero-copy flush path: one mq round-trip is charged per
    /// scheduler flush instead of per covered rank.
    pub fn send_prepaid(&self, ctx: &mut Ctx, msg: T) -> Result<(), MqError>
    where
        T: Clone,
    {
        let (seq, drop, dup, delay) = self.faults.lock().next_send();
        if drop {
            ctx.tracer()
                .fault(ctx.now(), format!("mq-drop:{}#{seq}", self.name));
            return Ok(());
        }
        if let Some(extra) = delay {
            ctx.tracer()
                .fault(ctx.now(), format!("mq-delay:{}#{seq}", self.name));
            ctx.hold(extra);
        }
        if dup {
            ctx.tracer()
                .fault(ctx.now(), format!("mq-dup:{}#{seq}", self.name));
            self.chan
                .send(ctx, msg.clone())
                .map_err(|_| MqError::Closed)?;
        }
        self.chan.send(ctx, msg).map_err(|_| MqError::Closed)
    }

    /// Charge one one-way mq latency without moving a message — the batch
    /// prepayment matching [`send_prepaid`](Self::send_prepaid).
    pub fn charge_latency(&self, ctx: &mut Ctx) {
        ctx.hold(self.node.mq_latency);
    }

    /// `mq_receive`: blocking receive, charging one-way latency.
    /// `None` once the queue is closed and drained.
    pub fn recv(&self, ctx: &mut Ctx) -> Option<T> {
        let msg = self.chan.recv(ctx)?;
        ctx.hold(self.node.mq_latency);
        Some(msg)
    }

    /// Drain every currently queued message into `scratch` (cleared first),
    /// charging one-way latency per message exactly like repeated
    /// [`try_recv`](Self::try_recv) calls would. Reusing one scratch buffer
    /// across calls keeps the receive path allocation-free after warm-up;
    /// drained payloads are bitwise identical to the allocating path.
    pub fn drain_into(&self, ctx: &mut Ctx, scratch: &mut Vec<T>) {
        scratch.clear();
        while let Some(msg) = self.chan.try_recv(ctx) {
            ctx.hold(self.node.mq_latency);
            scratch.push(msg);
        }
    }

    /// Blocking receive bounded by `timeout` of simulated time, charging
    /// one-way latency when a message arrives.
    pub fn recv_timeout(&self, ctx: &mut Ctx, timeout: SimDuration) -> RecvTimeout<T> {
        match self.chan.recv_timeout(ctx, timeout) {
            RecvTimeout::Msg(msg) => {
                ctx.hold(self.node.mq_latency);
                RecvTimeout::Msg(msg)
            }
            other => other,
        }
    }

    /// Arm a message drop at this queue's `nth` lifetime send (0-based).
    pub fn arm_drop(&self, nth: u64) {
        self.faults.lock().drop_at.push(nth);
    }

    /// Arm a duplicated delivery at the `nth` lifetime send.
    pub fn arm_duplicate(&self, nth: u64) {
        self.faults.lock().dup_at.push(nth);
    }

    /// Arm an extra sender-side delay of `extra` at the `nth` lifetime send.
    pub fn arm_delay(&self, nth: u64, extra: SimDuration) {
        self.faults.lock().delay_at.push((nth, extra));
    }

    /// Non-blocking receive (no latency charged on miss).
    pub fn try_recv(&self, ctx: &mut Ctx) -> Option<T> {
        let msg = self.chan.try_recv(ctx)?;
        ctx.hold(self.node.mq_latency);
        Some(msg)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.chan.is_empty()
    }

    /// Close the queue: further sends fail, receivers drain then see `None`.
    pub fn close(&self, ctx: &Ctx) {
        self.chan.close(ctx);
    }
}

/// A node-wide namespace of message queues carrying `T`.
pub struct MqRegistry<T> {
    node: Arc<NodeConfig>,
    queues: Arc<Mutex<HashMap<String, SimChannel<T>>>>,
    /// Fault schedules by queue name, independent of queue lifetime so a
    /// plan can be armed before the target queue is created.
    faults: Arc<Mutex<HashMap<String, Arc<Mutex<MqFaults>>>>>,
}

impl<T> Clone for MqRegistry<T> {
    fn clone(&self) -> Self {
        MqRegistry {
            node: Arc::clone(&self.node),
            queues: Arc::clone(&self.queues),
            faults: Arc::clone(&self.faults),
        }
    }
}

impl<T> MqRegistry<T> {
    /// An empty namespace using `node`'s latency model.
    pub fn new(node: &NodeConfig) -> Self {
        MqRegistry {
            node: Arc::new(node.clone()),
            queues: Arc::new(Mutex::new(HashMap::new())),
            faults: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The (shared, lazily created) fault schedule for queue `name`.
    pub fn fault_entry(&self, name: &str) -> Arc<Mutex<MqFaults>> {
        Arc::clone(self.faults.lock().entry(name.to_string()).or_default())
    }

    /// Arm a message drop at the `nth` lifetime send of queue `name`.
    pub fn arm_drop(&self, name: &str, nth: u64) {
        self.fault_entry(name).lock().drop_at.push(nth);
    }

    /// Arm a duplicated delivery at the `nth` lifetime send of `name`.
    pub fn arm_duplicate(&self, name: &str, nth: u64) {
        self.fault_entry(name).lock().dup_at.push(nth);
    }

    /// Arm an extra sender-side delay at the `nth` lifetime send of `name`.
    pub fn arm_delay(&self, name: &str, nth: u64, extra: SimDuration) {
        self.fault_entry(name).lock().delay_at.push((nth, extra));
    }

    /// `mq_open(O_CREAT|O_EXCL)` with optional depth bound.
    pub fn create(&self, name: &str, capacity: Option<usize>) -> Result<MessageQueue<T>, MqError> {
        let mut qs = self.queues.lock();
        if qs.contains_key(name) {
            return Err(MqError::AlreadyExists(name.to_string()));
        }
        let chan = match capacity {
            Some(c) => SimChannel::bounded(c),
            None => SimChannel::unbounded(),
        };
        // Deadlock reports name the queue, not the anonymous channel.
        chan.set_label(name);
        qs.insert(name.to_string(), chan.clone());
        drop(qs);
        Ok(MessageQueue {
            name: name.to_string(),
            chan,
            node: Arc::clone(&self.node),
            faults: self.fault_entry(name),
        })
    }

    /// `mq_open(0)`: open an existing queue.
    pub fn open(&self, name: &str) -> Result<MessageQueue<T>, MqError> {
        let chan = {
            let qs = self.queues.lock();
            qs.get(name)
                .ok_or_else(|| MqError::NotFound(name.to_string()))?
                .clone()
        };
        Ok(MessageQueue {
            name: name.to_string(),
            chan,
            node: Arc::clone(&self.node),
            faults: self.fault_entry(name),
        })
    }

    /// `mq_unlink`.
    pub fn unlink(&self, name: &str) -> Result<(), MqError> {
        self.queues
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| MqError::NotFound(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use gv_sim::{SimDuration, Simulation};

    #[test]
    fn send_recv_charges_latency_each_way() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/req", None).unwrap();
        let q2 = reg.open("/req").unwrap();
        sim.spawn("sender", move |ctx| {
            q.send(ctx, 42).unwrap();
            // one-way latency = 1 µs
            assert_eq!(ctx.now().as_nanos(), 1_000);
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(q2.recv(ctx), Some(42));
            // send latency + recv latency
            assert_eq!(ctx.now().as_nanos(), 2_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_blocks_until_send() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<&'static str> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/resp", None).unwrap();
        let tx = q.clone();
        sim.spawn("gvm", move |ctx| {
            ctx.hold(SimDuration::from_millis(5));
            tx.send(ctx, "ACK").unwrap();
        });
        sim.spawn("proc", move |ctx| {
            assert_eq!(q.recv(ctx), Some("ACK"));
            assert!(ctx.now().as_millis_f64() >= 5.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn namespace_semantics() {
        let reg: MqRegistry<u8> = MqRegistry::new(&NodeConfig::test_tiny());
        reg.create("/a", Some(4)).unwrap();
        assert!(matches!(
            reg.create("/a", None),
            Err(MqError::AlreadyExists(_))
        ));
        assert!(reg.open("/a").is_ok());
        reg.unlink("/a").unwrap();
        assert!(matches!(reg.open("/a"), Err(MqError::NotFound(_))));
    }

    #[test]
    fn closed_queue_rejects_sends() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u8> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/c", None).unwrap();
        sim.spawn("p", move |ctx| {
            q.close(ctx);
            assert_eq!(q.send(ctx, 1), Err(MqError::Closed));
            assert_eq!(q.recv(ctx), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn armed_drop_swallows_exactly_that_send() {
        let mut sim = Simulation::new();
        sim.tracer().set_enabled(true);
        let tracer = sim.tracer().clone();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/drop", None).unwrap();
        let rx = reg.open("/drop").unwrap();
        q.arm_drop(1);
        sim.spawn("sender", move |ctx| {
            for v in 0..3 {
                q.send(ctx, v).unwrap();
            }
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), Some(0));
            // message 1 was dropped on the floor
            assert_eq!(rx.recv(ctx), Some(2));
        });
        sim.run().unwrap();
        let faults = tracer.fault_events();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].label, "mq-drop:/drop#1");
    }

    #[test]
    fn armed_duplicate_delivers_twice() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/dup", None).unwrap();
        let rx = reg.open("/dup").unwrap();
        q.arm_duplicate(0);
        sim.spawn("sender", move |ctx| {
            q.send(ctx, 7).unwrap();
            q.send(ctx, 8).unwrap();
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), Some(7));
            assert_eq!(rx.recv(ctx), Some(7));
            assert_eq!(rx.recv(ctx), Some(8));
        });
        sim.run().unwrap();
    }

    #[test]
    fn armed_delay_charges_extra_sender_time() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u8> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/slow", None).unwrap();
        q.arm_delay(0, SimDuration::from_millis(3));
        sim.spawn("sender", move |ctx| {
            q.send(ctx, 1).unwrap();
            // mq latency (1 µs) + armed 3 ms delay
            assert_eq!(ctx.now().as_nanos(), 3_001_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn registry_arms_faults_before_queue_exists() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        // Armed before create(): the schedule must survive queue creation.
        reg.arm_drop("/later", 0);
        let q = reg.create("/later", None).unwrap();
        let rx = reg.open("/later").unwrap();
        sim.spawn("sender", move |ctx| {
            q.send(ctx, 1).unwrap();
            q.send(ctx, 2).unwrap();
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), Some(2));
        });
        sim.run().unwrap();
    }

    #[test]
    fn prepaid_send_skips_latency_but_faults_still_fire() {
        let mut sim = Simulation::new();
        sim.tracer().set_enabled(true);
        let tracer = sim.tracer().clone();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/pp", None).unwrap();
        let rx = reg.open("/pp").unwrap();
        q.arm_drop(1);
        sim.spawn("sender", move |ctx| {
            // One latency charge covers the whole batch.
            q.charge_latency(ctx);
            assert_eq!(ctx.now().as_nanos(), 1_000);
            for v in 0..3 {
                q.send_prepaid(ctx, v).unwrap();
            }
            // No further latency charged by the prepaid sends.
            assert_eq!(ctx.now().as_nanos(), 1_000);
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), Some(0));
            // The armed drop consumed message 1 exactly as with `send`.
            assert_eq!(rx.recv(ctx), Some(2));
        });
        sim.run().unwrap();
        let faults = tracer.fault_events();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].label, "mq-drop:/pp#1");
    }

    #[test]
    fn drain_into_reuses_scratch_and_charges_per_message() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u8> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/dr", None).unwrap();
        let rx = reg.open("/dr").unwrap();
        sim.spawn("sender", move |ctx| {
            for v in 10..13 {
                q.send(ctx, v).unwrap();
            }
        });
        sim.spawn("receiver", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            let mut scratch = vec![99u8; 8]; // stale contents must be cleared
            let t0 = ctx.now();
            rx.drain_into(ctx, &mut scratch);
            assert_eq!(scratch, vec![10, 11, 12]);
            // One recv latency per drained message, like try_recv.
            assert_eq!(ctx.now().duration_since(t0).as_nanos(), 3_000);
            rx.drain_into(ctx, &mut scratch);
            assert!(scratch.is_empty());
        });
        sim.run().unwrap();
    }

    proptest::proptest! {
        /// Draining through the reused scratch buffer yields payloads
        /// bitwise identical to the per-message allocating path
        /// (`try_recv` into a fresh `Vec`), in the same order and with the
        /// same latency accounting.
        #[test]
        fn drain_into_matches_allocating_path(
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..32),
                0..16,
            ),
        ) {
            let reference = std::sync::Arc::new(Mutex::new(Vec::new()));
            let drained = std::sync::Arc::new(Mutex::new(Vec::new()));
            let times = std::sync::Arc::new(Mutex::new((0u64, 0u64)));

            let mut sim = Simulation::new();
            let reg: MqRegistry<Vec<u8>> = MqRegistry::new(&NodeConfig::test_tiny());
            let qa = reg.create("/alloc", None).unwrap();
            let ra = reg.open("/alloc").unwrap();
            let qb = reg.create("/scratch", None).unwrap();
            let rb = reg.open("/scratch").unwrap();
            let (pa, pb) = (payloads.clone(), payloads.clone());
            sim.spawn("sender", move |ctx| {
                for p in &pa {
                    qa.send(ctx, p.clone()).unwrap();
                }
                for p in &pb {
                    qb.send(ctx, p.clone()).unwrap();
                }
            });
            let (r1, r2, tm) = (reference.clone(), drained.clone(), times.clone());
            sim.spawn("receiver", move |ctx| {
                ctx.hold(SimDuration::from_millis(1));
                let t0 = ctx.now();
                let mut alloc = Vec::new(); // the allocating path
                while let Some(msg) = ra.try_recv(ctx) {
                    alloc.push(msg);
                }
                let t1 = ctx.now();
                let mut scratch = Vec::with_capacity(4);
                rb.drain_into(ctx, &mut scratch);
                let t2 = ctx.now();
                *r1.lock() = alloc;
                *r2.lock() = scratch;
                *tm.lock() = (
                    t1.duration_since(t0).as_nanos(),
                    t2.duration_since(t1).as_nanos(),
                );
            });
            sim.run().unwrap();
            proptest::prop_assert_eq!(&*reference.lock(), &payloads);
            proptest::prop_assert_eq!(&*drained.lock(), &*reference.lock());
            let (ta, tb) = *times.lock();
            proptest::prop_assert_eq!(ta, tb);
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let mut sim = Simulation::new();
        let reg: MqRegistry<u32> = MqRegistry::new(&NodeConfig::test_tiny());
        let q = reg.create("/t", None).unwrap();
        let rx = reg.open("/t").unwrap();
        sim.spawn("sender", move |ctx| {
            ctx.hold(SimDuration::from_millis(10));
            q.send(ctx, 5).unwrap();
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(
                rx.recv_timeout(ctx, SimDuration::from_millis(2)),
                RecvTimeout::TimedOut
            );
            assert!(ctx.now().as_millis_f64() >= 2.0);
            assert_eq!(
                rx.recv_timeout(ctx, SimDuration::from_millis(20)),
                RecvTimeout::Msg(5)
            );
        });
        sim.run().unwrap();
    }
}

//! # gv-ipc — the simulated HPC compute node
//!
//! Substitutes for the paper's testbed node (dual Xeon X5560, 8 cores,
//! Linux): SPMD processes pinned to cores ([`node`]), POSIX-like named
//! shared memory with a memcpy cost model ([`shm`]), and POSIX-like message
//! queues with per-message latency ([`mqueue`]) — exactly the primitives the
//! GVM builds its virtual-shared-memory + request/response-queue transport
//! from (paper §V).
//!
//! ```
//! use gv_ipc::{NodeConfig, ShmRegistry};
//! use gv_sim::Simulation;
//!
//! let mut sim = Simulation::new();
//! let reg = ShmRegistry::new(&NodeConfig::dual_xeon_x5560());
//! let seg = reg.create("/demo", 1024).unwrap();
//! sim.spawn("writer", move |ctx| {
//!     seg.write(ctx, 0, b"hello").unwrap();           // charged memcpy time
//!     assert_eq!(seg.peek(0, 5).unwrap(), b"hello");  // free verification
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod mqueue;
pub mod net;
pub mod node;
pub mod shm;

pub use mqueue::{MessageQueue, MqError, MqFaults, MqRegistry};
pub use net::{LinkConfig, NetworkLink};
pub use node::{AffinityError, Node, NodeConfig};
pub use shm::{SharedMem, ShmBacking, ShmError, ShmFaults, ShmRegistry};

//! A point-to-point cluster interconnect link.
//!
//! Used by the remote-GPU baseline (paper §II, Duato et al. [11] / gVirtuS
//! [10]): client nodes without GPUs ship API calls and data to a GPU node
//! over TCP/IP or InfiniBand. The link is full-duplex — each direction is a
//! FIFO served at the configured bandwidth with a per-message latency.

use gv_sim::{Ctx, FifoServer, SimDuration};

/// Link timing parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way message latency.
    pub latency: SimDuration,
    /// Per-direction bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl LinkConfig {
    /// Gigabit Ethernet with TCP (the gVirtuS deployment): ~0.11 GB/s
    /// effective, ~60 µs latency.
    pub fn gigabit_ethernet() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(60),
            bandwidth_gbps: 0.11,
        }
    }

    /// DDR InfiniBand (the rCUDA deployment): ~1.4 GB/s effective,
    /// ~8 µs latency.
    pub fn infiniband_ddr() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(8),
            bandwidth_gbps: 1.4,
        }
    }

    /// Transfer duration for `bytes` bytes.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / (self.bandwidth_gbps * 1.0e9))
    }
}

/// A full-duplex link: independent FIFO channels per direction.
#[derive(Clone)]
pub struct NetworkLink {
    config: LinkConfig,
    forward: FifoServer,
    reverse: FifoServer,
}

impl NetworkLink {
    /// A link with the given timing.
    pub fn new(config: LinkConfig) -> Self {
        NetworkLink {
            config,
            forward: FifoServer::new("net-fwd", 1),
            reverse: FifoServer::new("net-rev", 1),
        }
    }

    /// Link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Ship `bytes` client → server (blocks the caller; concurrent sends
    /// serialize on the direction's channel).
    pub fn send_forward(&self, ctx: &mut Ctx, bytes: u64) {
        self.forward.serve(ctx, self.config.transfer_time(bytes));
    }

    /// Ship `bytes` server → client.
    pub fn send_reverse(&self, ctx: &mut Ctx, bytes: u64) {
        self.reverse.serve(ctx, self.config.transfer_time(bytes));
    }

    /// Total bytes-on-the-wire time accumulated in each direction.
    pub fn busy_ms(&self) -> (f64, f64) {
        (
            self.forward.busy_time().as_millis_f64(),
            self.reverse.busy_time().as_millis_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::Simulation;

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let link = LinkConfig::infiniband_ddr();
        // 1.4 GB at 1.4 GB/s = 1 s + 8 µs.
        let t = link.transfer_time(1_400_000_000);
        assert!((t.as_secs_f64() - 1.000008).abs() < 1e-6);
    }

    #[test]
    fn same_direction_transfers_serialize() {
        let mut sim = Simulation::new();
        let link = NetworkLink::new(LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth_gbps: 1.0,
        });
        for i in 0..2 {
            let link = link.clone();
            sim.spawn(&format!("tx{i}"), move |ctx| {
                link.send_forward(ctx, 10_000_000); // 10 ms each
            });
        }
        let s = sim.run().unwrap();
        assert!((s.end_time.as_millis_f64() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn directions_are_full_duplex() {
        let mut sim = Simulation::new();
        let link = NetworkLink::new(LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth_gbps: 1.0,
        });
        let l1 = link.clone();
        sim.spawn("fwd", move |ctx| l1.send_forward(ctx, 10_000_000));
        let l2 = link.clone();
        sim.spawn("rev", move |ctx| l2.send_reverse(ctx, 10_000_000));
        let s = sim.run().unwrap();
        assert!((s.end_time.as_millis_f64() - 10.0).abs() < 1e-6);
        let (f, r) = link.busy_ms();
        assert!((f - 10.0).abs() < 1e-6 && (r - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ethernet_slower_than_infiniband() {
        let e = LinkConfig::gigabit_ethernet();
        let ib = LinkConfig::infiniband_ddr();
        assert!(e.transfer_time(1 << 20) > ib.transfer_time(1 << 20));
    }
}

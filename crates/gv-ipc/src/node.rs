//! The compute node: CPU cores, process affinity, and host-side timing.
//!
//! The paper's testbed is a dual Xeon X5560 node (8 cores); SPMD experiments
//! pin one process per core, and the SPMD condition requires
//! `Ntask ≤ Nprocessor`. [`Node`] enforces that bookkeeping and provides the
//! host-side cost model (memcpy bandwidth) shared by the IPC primitives.

use std::sync::Arc;

use gv_sim::{Ctx, Pid, SimDuration, Simulation};
use parking_lot::Mutex;

/// Host-side timing parameters for a compute node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// CPU cores available for SPMD processes.
    pub cores: usize,
    /// Sustained host memcpy bandwidth in GB/s (shm reads/writes and
    /// staging copies into pinned buffers).
    pub memcpy_gbps: f64,
    /// Fixed latency of one shared-memory access (page-table / cache warm-up).
    pub shm_latency: SimDuration,
    /// One-way latency of a POSIX message-queue send or receive.
    pub mq_latency: SimDuration,
}

impl NodeConfig {
    /// The paper's testbed: dual Intel Xeon X5560 (8 cores total), 48 GB.
    pub fn dual_xeon_x5560() -> Self {
        NodeConfig {
            // Nehalem-era Xeon: ~12 GB/s sustained streaming memcpy
            // (triple-channel DDR3); calibrated against the paper's
            // Fig. 10 overhead ceiling (<25% at 400 MB).
            cores: 8,
            memcpy_gbps: 12.8,
            shm_latency: SimDuration::from_micros(2),
            mq_latency: SimDuration::from_micros(6),
        }
    }

    /// Tiny node for unit tests.
    pub fn test_tiny() -> Self {
        NodeConfig {
            cores: 2,
            memcpy_gbps: 1.0,
            shm_latency: SimDuration::from_micros(1),
            mq_latency: SimDuration::from_micros(1),
        }
    }

    /// Duration of a host memcpy of `bytes` bytes.
    pub fn memcpy_time(&self, bytes: u64) -> SimDuration {
        self.shm_latency + SimDuration::from_secs_f64(bytes as f64 / (self.memcpy_gbps * 1.0e9))
    }
}

struct NodeState {
    /// `core_assignment[core] = Some(pid)` once a process is pinned there.
    core_assignment: Vec<Option<Pid>>,
}

/// A simulated compute node.
#[derive(Clone)]
pub struct Node {
    config: Arc<NodeConfig>,
    state: Arc<Mutex<NodeState>>,
}

impl Node {
    /// Create a node with the given configuration.
    pub fn new(config: NodeConfig) -> Self {
        let cores = config.cores;
        Node {
            config: Arc::new(config),
            state: Arc::new(Mutex::new(NodeState {
                core_assignment: vec![None; cores],
            })),
        }
    }

    /// Node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Number of CPU cores.
    pub fn cores(&self) -> usize {
        self.config.cores
    }

    /// Spawn a process pinned to `core` (errors if the core is taken or out
    /// of range — the SPMD condition `Ntask ≤ Nprocessor`).
    pub fn spawn_pinned<F>(
        &self,
        sim: &mut Simulation,
        core: usize,
        name: &str,
        f: F,
    ) -> Result<Pid, AffinityError>
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        {
            let st = self.state.lock();
            if core >= st.core_assignment.len() {
                return Err(AffinityError::NoSuchCore {
                    core,
                    cores: st.core_assignment.len(),
                });
            }
            if st.core_assignment[core].is_some() {
                return Err(AffinityError::CoreBusy { core });
            }
        }
        let pid = sim.spawn(name, f);
        self.state.lock().core_assignment[core] = Some(pid);
        Ok(pid)
    }

    /// Spawn `n` SPMD processes, one per core, named `prefix-<rank>`;
    /// each closure receives its rank.
    pub fn spawn_spmd<F>(
        &self,
        sim: &mut Simulation,
        n: usize,
        prefix: &str,
        f: F,
    ) -> Result<Vec<Pid>, AffinityError>
    where
        F: Fn(usize, &mut Ctx) + Send + Sync + 'static,
    {
        if n > self.cores() {
            return Err(AffinityError::TooManyProcesses {
                requested: n,
                cores: self.cores(),
            });
        }
        let f = Arc::new(f);
        let mut pids = Vec::with_capacity(n);
        for rank in 0..n {
            let f = Arc::clone(&f);
            let pid = self.spawn_pinned(sim, rank, &format!("{prefix}-{rank}"), move |ctx| {
                f(rank, ctx)
            })?;
            pids.push(pid);
        }
        Ok(pids)
    }

    /// Cores currently occupied.
    pub fn cores_in_use(&self) -> usize {
        self.state
            .lock()
            .core_assignment
            .iter()
            .filter(|c| c.is_some())
            .count()
    }
}

/// CPU-affinity errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffinityError {
    /// Core index out of range.
    NoSuchCore {
        /// Requested core.
        core: usize,
        /// Cores on the node.
        cores: usize,
    },
    /// Core already pinned to another process.
    CoreBusy {
        /// Requested core.
        core: usize,
    },
    /// SPMD group larger than the node.
    TooManyProcesses {
        /// Processes requested.
        requested: usize,
        /// Cores on the node.
        cores: usize,
    },
}

impl std::fmt::Display for AffinityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AffinityError::NoSuchCore { core, cores } => {
                write!(f, "core {core} does not exist ({cores} cores)")
            }
            AffinityError::CoreBusy { core } => write!(f, "core {core} already pinned"),
            AffinityError::TooManyProcesses { requested, cores } => write!(
                f,
                "SPMD condition violated: {requested} processes > {cores} cores"
            ),
        }
    }
}

impl std::error::Error for AffinityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_group_pins_one_per_core() {
        let mut sim = Simulation::new();
        let node = Node::new(NodeConfig::test_tiny());
        let pids = node
            .spawn_spmd(&mut sim, 2, "p", |rank, ctx| {
                ctx.hold(SimDuration::from_millis(rank as u64 + 1));
            })
            .unwrap();
        assert_eq!(pids.len(), 2);
        assert_eq!(node.cores_in_use(), 2);
        let s = sim.run().unwrap();
        assert_eq!(s.end_time.as_millis_f64(), 2.0);
    }

    #[test]
    fn spmd_condition_enforced() {
        let mut sim = Simulation::new();
        let node = Node::new(NodeConfig::test_tiny());
        let err = node.spawn_spmd(&mut sim, 3, "p", |_, _| {}).unwrap_err();
        assert_eq!(
            err,
            AffinityError::TooManyProcesses {
                requested: 3,
                cores: 2
            }
        );
    }

    #[test]
    fn double_pin_rejected() {
        let mut sim = Simulation::new();
        let node = Node::new(NodeConfig::test_tiny());
        node.spawn_pinned(&mut sim, 0, "a", |_| {}).unwrap();
        let err = node.spawn_pinned(&mut sim, 0, "b", |_| {}).unwrap_err();
        assert_eq!(err, AffinityError::CoreBusy { core: 0 });
        sim.run().unwrap();
    }

    #[test]
    fn out_of_range_core_rejected() {
        let mut sim = Simulation::new();
        let node = Node::new(NodeConfig::test_tiny());
        let err = node.spawn_pinned(&mut sim, 7, "a", |_| {}).unwrap_err();
        assert!(matches!(err, AffinityError::NoSuchCore { core: 7, .. }));
        sim.run().unwrap();
    }

    #[test]
    fn memcpy_time_scales_with_bytes() {
        let cfg = NodeConfig::dual_xeon_x5560();
        let t = cfg.memcpy_time(12_800_000_000);
        // 12.8 GB at 12.8 GB/s ≈ 1 s (+2 µs latency).
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-4);
    }
}

//! Co-residency invariants over cluster placement records.
//!
//! The placement front-end declares each managed device's capacity vector
//! (`ClusterDevice`) and emits a `ClusterPlace` when a VGPU session becomes
//! resident and a `ClusterEvict` when it leaves. This checker replays those
//! records in trace order and reports every violation of the invariants the
//! placement planner is supposed to guarantee:
//!
//! * **Single residency** — a VGPU session is resident on at most one
//!   device at a time; a second `Place` without an intervening `Evict` is a
//!   double placement.
//! * **Gang integrity** — every placement sharing a gang id names the same
//!   device (all-or-nothing co-placement, one diagnostic per split gang).
//! * **Capacity** — the sum of resident memory demand never exceeds the
//!   device's declared `mem_bytes`, and the number of resident sessions
//!   never exceeds its `kernel_slots`.
//! * **Bookkeeping** — placements name declared devices, and evicts match
//!   a live residency.

use std::collections::HashMap;

use gv_sim::{AnalysisRecord, SimTime};

use crate::Diagnostic;

#[derive(Default)]
struct DeviceState {
    mem_cap: u64,
    slot_cap: u32,
    mem_used: u64,
    resident: u32,
}

/// Replay all cluster records and report every co-residency violation.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let diag = |diagnostics: &mut Vec<Diagnostic>, time: SimTime, message: String| {
        diagnostics.push(Diagnostic {
            checker: "cluster",
            time,
            message,
        });
    };

    let mut devices: HashMap<u32, DeviceState> = HashMap::new();
    // vgpu id → (device, mem demand charged there).
    let mut resident: HashMap<u64, (u32, u64)> = HashMap::new();
    // gang id → device of its first placement; switched to None once a
    // split is reported so each gang yields exactly one diagnostic.
    let mut gang_home: HashMap<u64, Option<u32>> = HashMap::new();

    for rec in records {
        match rec {
            AnalysisRecord::ClusterDevice {
                device,
                mem_bytes,
                kernel_slots,
            } => {
                let d = devices.entry(*device).or_default();
                d.mem_cap = *mem_bytes;
                d.slot_cap = *kernel_slots;
            }
            AnalysisRecord::ClusterPlace {
                time,
                vgpu,
                tenant: _,
                gang,
                device,
                wave,
                mem_bytes,
            } => {
                if let Some((held, _)) = resident.get(vgpu) {
                    diag(
                        &mut diagnostics,
                        *time,
                        format!(
                            "double placement: vgpu {vgpu} placed on device {device} \
                             (wave {wave}) while still resident on device {held}"
                        ),
                    );
                    continue;
                }
                if let Some(g) = gang {
                    match gang_home.entry(*g).or_insert(Some(*device)) {
                        Some(home) if *home != *device => {
                            diag(
                                &mut diagnostics,
                                *time,
                                format!(
                                    "split gang: gang {g} landed on device {device} \
                                     (wave {wave}) after device {home}"
                                ),
                            );
                            gang_home.insert(*g, None);
                        }
                        _ => {}
                    }
                }
                match devices.get_mut(device) {
                    None => diag(
                        &mut diagnostics,
                        *time,
                        format!("vgpu {vgpu} placed on undeclared device {device}"),
                    ),
                    Some(d) => {
                        d.mem_used += mem_bytes;
                        d.resident += 1;
                        if d.mem_used > d.mem_cap {
                            diag(
                                &mut diagnostics,
                                *time,
                                format!(
                                    "device {device} over memory capacity: {} of {} bytes \
                                     resident after placing vgpu {vgpu}",
                                    d.mem_used, d.mem_cap
                                ),
                            );
                        }
                        if d.resident > d.slot_cap {
                            diag(
                                &mut diagnostics,
                                *time,
                                format!(
                                    "device {device} over kernel-slot capacity: {} of {} \
                                     sessions resident after placing vgpu {vgpu}",
                                    d.resident, d.slot_cap
                                ),
                            );
                        }
                        resident.insert(*vgpu, (*device, *mem_bytes));
                    }
                }
            }
            AnalysisRecord::ClusterEvict { time, vgpu, device } => match resident.remove(vgpu) {
                None => diag(
                    &mut diagnostics,
                    *time,
                    format!("evict of vgpu {vgpu} from device {device} with no live placement"),
                ),
                Some((held, mem)) => {
                    if held != *device {
                        diag(
                            &mut diagnostics,
                            *time,
                            format!(
                                "evict of vgpu {vgpu} names device {device} but it is \
                                 resident on device {held}"
                            ),
                        );
                    }
                    if let Some(d) = devices.get_mut(&held) {
                        d.mem_used = d.mem_used.saturating_sub(mem);
                        d.resident = d.resident.saturating_sub(1);
                    }
                }
            },
            _ => {}
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(device: u32, mem: u64, slots: u32) -> AnalysisRecord {
        AnalysisRecord::ClusterDevice {
            device,
            mem_bytes: mem,
            kernel_slots: slots,
        }
    }

    fn place(t: u64, vgpu: u64, gang: Option<u64>, device: u32, mem: u64) -> AnalysisRecord {
        AnalysisRecord::ClusterPlace {
            time: SimTime::from_nanos(t),
            vgpu,
            tenant: vgpu % 2,
            gang,
            device,
            wave: 0,
            mem_bytes: mem,
        }
    }

    fn evict(t: u64, vgpu: u64, device: u32) -> AnalysisRecord {
        AnalysisRecord::ClusterEvict {
            time: SimTime::from_nanos(t),
            vgpu,
            device,
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let recs = vec![
            dev(0, 1000, 2),
            dev(1, 1000, 2),
            place(1, 0, None, 0, 600),
            place(2, 1, Some(7), 1, 400),
            place(3, 2, Some(7), 1, 400),
            evict(10, 0, 0),
            evict(11, 1, 1),
            evict(12, 2, 1),
            // Re-placement after evict is a migration, not a double
            // placement.
            place(20, 0, None, 1, 600),
            evict(30, 0, 1),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn double_placement_is_one_diagnostic() {
        let recs = vec![
            dev(0, 1000, 4),
            dev(1, 1000, 4),
            place(1, 5, None, 0, 100),
            place(2, 5, None, 1, 100),
            evict(9, 5, 0),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("double placement"));
    }

    #[test]
    fn split_gang_is_one_diagnostic() {
        let recs = vec![
            dev(0, 1000, 4),
            dev(1, 1000, 4),
            place(1, 0, Some(3), 0, 100),
            place(2, 1, Some(3), 1, 100),
            place(3, 2, Some(3), 1, 100),
            evict(7, 0, 0),
            evict(8, 1, 1),
            evict(9, 2, 1),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "split reported once per gang: {d:?}");
        assert!(d[0].message.contains("split gang"));
    }

    #[test]
    fn capacity_overshoot_is_flagged() {
        let mem = check(&[
            dev(0, 1000, 8),
            place(1, 0, None, 0, 600),
            place(2, 1, None, 0, 600),
        ]);
        assert_eq!(mem.len(), 1, "{mem:?}");
        assert!(mem[0].message.contains("over memory capacity"));

        let slots = check(&[
            dev(0, 1000, 1),
            place(1, 0, None, 0, 100),
            place(2, 1, None, 0, 100),
        ]);
        assert_eq!(slots.len(), 1, "{slots:?}");
        assert!(slots[0].message.contains("over kernel-slot capacity"));
    }

    #[test]
    fn stray_records_are_flagged() {
        let undeclared = check(&[place(1, 0, None, 9, 100)]);
        assert_eq!(undeclared.len(), 1);
        assert!(undeclared[0].message.contains("undeclared device"));

        let stray = check(&[dev(0, 100, 1), evict(1, 4, 0)]);
        assert_eq!(stray.len(), 1);
        assert!(stray[0].message.contains("no live placement"));

        let wrong = check(&[
            dev(0, 100, 1),
            dev(1, 100, 1),
            place(1, 4, None, 0, 10),
            evict(2, 4, 1),
        ]);
        assert_eq!(wrong.len(), 1);
        assert!(wrong[0].message.contains("resident on device 0"));
    }
}

//! Happens-before race detection over shared-memory access records.
//!
//! Every timed [`SharedMem`] access carries the accessor's vector clock,
//! ticked for the access (its *epoch*). Two accesses to overlapping byte
//! ranges of the same segment from different processes, at least one of
//! them a write, race unless a synchronization chain orders them — i.e.
//! unless one's epoch is visible in the other's clock
//! ([`gv_sim::happens_before`]). The detector is schedule-independent: it
//! flags the pair even when the replayed schedule happened to space the
//! accesses apart in time.
//!
//! [`SharedMem`]: gv_ipc::SharedMem

use std::collections::{HashMap, HashSet};

use gv_sim::{happens_before, AnalysisRecord, SimTime, VClock};

use crate::Diagnostic;

struct Access<'a> {
    time: SimTime,
    pid: usize,
    process: &'a str,
    offset: usize,
    len: usize,
    is_write: bool,
    clock: &'a VClock,
}

impl Access<'_> {
    fn overlaps(&self, other: &Access<'_>) -> bool {
        self.offset < other.offset + other.len && other.offset < self.offset + self.len
    }
}

/// Check every pair of overlapping cross-process accesses per segment.
/// Reports at most one diagnostic per (segment, process pair) so a racing
/// loop doesn't flood the report.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut by_segment: HashMap<&str, Vec<Access<'_>>> = HashMap::new();
    for rec in records {
        if let AnalysisRecord::ShmAccess {
            time,
            pid,
            process,
            segment,
            offset,
            len,
            is_write,
            clock,
        } = rec
        {
            by_segment.entry(segment).or_default().push(Access {
                time: *time,
                pid: pid.index(),
                process,
                offset: *offset,
                len: *len,
                is_write: *is_write,
                clock,
            });
        }
    }

    let mut diagnostics = Vec::new();
    let mut segments: Vec<_> = by_segment.iter().collect();
    segments.sort_by_key(|(name, _)| *name);
    for (segment, accesses) in segments {
        let mut reported: HashSet<(usize, usize)> = HashSet::new();
        for i in 0..accesses.len() {
            for j in i + 1..accesses.len() {
                let (a, b) = (&accesses[i], &accesses[j]);
                if a.pid == b.pid || !(a.is_write || b.is_write) || !a.overlaps(b) {
                    continue;
                }
                let pair = (a.pid.min(b.pid), a.pid.max(b.pid));
                if reported.contains(&pair) {
                    continue;
                }
                if happens_before(a.pid, a.clock, b.clock)
                    || happens_before(b.pid, b.clock, a.clock)
                {
                    continue;
                }
                reported.insert(pair);
                let kind = |w: bool| if w { "write" } else { "read" };
                diagnostics.push(Diagnostic {
                    checker: "race",
                    time: a.time.max(b.time),
                    message: format!(
                        "data race on {segment}: {} [{}, {}) by '{}' (pid {}) at {:.6}ms is \
                         concurrent with {} [{}, {}) by '{}' (pid {}) at {:.6}ms — no \
                         happens-before edge in either direction",
                        kind(a.is_write),
                        a.offset,
                        a.offset + a.len,
                        a.process,
                        a.pid,
                        a.time.as_millis_f64(),
                        kind(b.is_write),
                        b.offset,
                        b.offset + b.len,
                        b.process,
                        b.pid,
                        b.time.as_millis_f64(),
                    ),
                });
            }
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::Pid;

    fn access(
        pid: usize,
        segment: &str,
        offset: usize,
        len: usize,
        is_write: bool,
        clock: Vec<u64>,
    ) -> AnalysisRecord {
        AnalysisRecord::ShmAccess {
            time: SimTime::from_nanos(pid as u64),
            pid: Pid::from_index(pid),
            process: format!("p{pid}"),
            segment: segment.to_string(),
            offset,
            len,
            is_write,
            clock: VClock::from_components(clock),
        }
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let recs = vec![
            access(0, "/s", 0, 8, true, vec![1]),
            access(1, "/s", 4, 8, true, vec![0, 1]),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("data race on /s"), "{}", d[0].message);
    }

    #[test]
    fn synchronized_accesses_do_not_race() {
        // P0's epoch (component 0 = 1) is visible in P1's clock.
        let recs = vec![
            access(0, "/s", 0, 8, true, vec![1]),
            access(1, "/s", 0, 8, true, vec![1, 1]),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn read_read_never_races() {
        let recs = vec![
            access(0, "/s", 0, 8, false, vec![1]),
            access(1, "/s", 0, 8, false, vec![0, 1]),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let recs = vec![
            access(0, "/s", 0, 8, true, vec![1]),
            access(1, "/s", 8, 8, true, vec![0, 1]),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn different_segments_do_not_race() {
        let recs = vec![
            access(0, "/a", 0, 8, true, vec![1]),
            access(1, "/b", 0, 8, true, vec![0, 1]),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn racing_loop_reports_once_per_pair() {
        let mut recs = Vec::new();
        for k in 0..5 {
            recs.push(access(0, "/s", 0, 8, true, vec![1 + k]));
            recs.push(access(1, "/s", 0, 8, true, vec![0, 1 + k]));
        }
        assert_eq!(check(&recs).len(), 1);
    }
}

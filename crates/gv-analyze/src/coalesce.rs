//! Fused-DMA manifest invariants over the flush planner's records.
//!
//! When the coalescing planner merges adjacent same-direction staging
//! transfers of co-flushed ranks into one large DMA submission, the GVM
//! emits an [`AnalysisRecord::CoalesceOp`] manifest describing the fused
//! batch: member ranks in submission order, each member's byte span within
//! the batch, the pool buffer and lease generation backing it, and the
//! engine command id of its sub-op. This checker replays those manifests
//! against the rest of the trace and verifies:
//!
//! * **Exact partition** — the member spans tile the fused batch exactly:
//!   offsets ascend gaplessly from 0, lengths sum to the declared total,
//!   and every parallel vector has the same arity. A batch of fewer than
//!   two members should never have been fused at all.
//! * **Distinct ranks** — one sub-span per rank; the planner must never
//!   fold two transfers of the same rank into one manifest (per-stream
//!   ordering would be lost).
//! * **Command fan-out** — every member's command id has a matching
//!   `CopyBegin` on the manifest's device and direction engine (0 = H2D,
//!   1 = D2H): per-sub-op completion fan-out requires each member to keep
//!   its own engine command.
//! * **Generation currency** — when a member's pool buffer has a
//!   [`AnalysisRecord::DescGrant`] history, the generation stamped into
//!   the manifest must be the latest granted one (fusing a stale lease is
//!   the zero-copy use-after-recycle family).
//! * **Quota boundary** — in a quota-enforcing GVM (any
//!   [`AnalysisRecord::QuotaSet`] for the instance), every fused member
//!   must hold a positive charged balance at submission time: fusing an
//!   unadmitted rank's transfer crosses the quota admission boundary.
//! * **Swap boundary** — a GVM that has demand-swapped working sets
//!   ([`AnalysisRecord::SwapOut`]/[`AnalysisRecord::SwapIn`]) must not
//!   fuse at all; lease windows can move under swap, so the planner is
//!   required to disable itself there.

use std::collections::{HashMap, HashSet};

use gv_sim::{AnalysisRecord, SimTime};

use crate::Diagnostic;

fn diag(time: SimTime, message: String) -> Diagnostic {
    Diagnostic {
        checker: "coalesce",
        time,
        message,
    }
}

/// Replay `records` and report every fused-manifest violation.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Pass 1: engine command ids seen per (device, engine). `CopyBegin`
    // for a submitted batch can land after the manifest record, so the
    // lookup must span the whole trace before manifests are replayed.
    let mut copies: HashSet<(u32, u8, u64)> = HashSet::new();
    for rec in records {
        if let AnalysisRecord::CopyBegin {
            device,
            engine,
            label,
            ..
        } = rec
        {
            if let Some(id) = label
                .strip_prefix("cmd-")
                .and_then(|s| s.parse::<u64>().ok())
            {
                copies.insert((*device, *engine, id));
            }
        }
    }

    // Pass 2: replay in trace order, tracking the state a manifest is
    // checked against at its submission time.
    // (gvm, buf) → latest granted lease generation.
    let mut grants: HashMap<(String, u64), u64> = HashMap::new();
    // gvm → quota enforcement declared (any QuotaSet record).
    let mut quota_gvms: HashSet<String> = HashSet::new();
    // (gvm, rank) → running charged bytes per the last ledger record.
    let mut charged: HashMap<(String, u64), u64> = HashMap::new();
    // gvm → time of the first demand swap (out or in).
    let mut swapped: HashMap<String, SimTime> = HashMap::new();

    for rec in records {
        match rec {
            AnalysisRecord::DescGrant {
                gvm,
                buf,
                generation,
                ..
            } => {
                grants.insert((gvm.clone(), *buf), *generation);
            }
            AnalysisRecord::QuotaSet { gvm, .. } => {
                quota_gvms.insert(gvm.clone());
            }
            AnalysisRecord::QuotaCharge {
                gvm,
                rank,
                charged: total,
                ..
            }
            | AnalysisRecord::QuotaCredit {
                gvm,
                rank,
                charged: total,
                ..
            } => {
                charged.insert((gvm.clone(), *rank as u64), *total);
            }
            AnalysisRecord::SwapOut { time, gvm, .. }
            | AnalysisRecord::SwapIn { time, gvm, .. } => {
                swapped.entry(gvm.clone()).or_insert(*time);
            }
            AnalysisRecord::CoalesceOp {
                time,
                gvm,
                device,
                h2d,
                total,
                ranks,
                offsets,
                lens,
                bufs,
                gens,
                cmds,
            } => {
                check_manifest(
                    &mut out,
                    Manifest {
                        time: *time,
                        gvm,
                        device: *device,
                        h2d: *h2d,
                        total: *total,
                        ranks,
                        offsets,
                        lens,
                        bufs,
                        gens,
                        cmds,
                    },
                    &copies,
                    &grants,
                    &quota_gvms,
                    &charged,
                    &swapped,
                );
            }
            _ => {}
        }
    }
    out
}

/// Borrowed view of one `CoalesceOp` record's fields.
struct Manifest<'a> {
    time: SimTime,
    gvm: &'a str,
    device: u32,
    h2d: bool,
    total: u64,
    ranks: &'a [u64],
    offsets: &'a [u64],
    lens: &'a [u64],
    bufs: &'a [u64],
    gens: &'a [u64],
    cmds: &'a [u64],
}

fn check_manifest(
    out: &mut Vec<Diagnostic>,
    m: Manifest<'_>,
    copies: &HashSet<(u32, u8, u64)>,
    grants: &HashMap<(String, u64), u64>,
    quota_gvms: &HashSet<String>,
    charged: &HashMap<(String, u64), u64>,
    swapped: &HashMap<String, SimTime>,
) {
    let dir = if m.h2d { "H2D" } else { "D2H" };
    let n = m.ranks.len();
    if m.offsets.len() != n
        || m.lens.len() != n
        || m.bufs.len() != n
        || m.gens.len() != n
        || m.cmds.len() != n
    {
        out.push(diag(
            m.time,
            format!(
                "gvm '{}' {dir} manifest on device {} has mismatched arity: \
                 {} ranks vs {} offsets / {} lens / {} bufs / {} gens / {} cmds",
                m.gvm,
                m.device,
                n,
                m.offsets.len(),
                m.lens.len(),
                m.bufs.len(),
                m.gens.len(),
                m.cmds.len()
            ),
        ));
        return;
    }
    if n < 2 {
        out.push(diag(
            m.time,
            format!(
                "gvm '{}' {dir} manifest on device {} fuses only {n} member(s); \
                 a coalesced submission requires at least 2",
                m.gvm, m.device
            ),
        ));
    }

    // Exact partition: offsets ascend gaplessly from 0, lens sum to total.
    let mut expect = 0u64;
    for i in 0..n {
        if m.offsets[i] != expect {
            out.push(diag(
                m.time,
                format!(
                    "gvm '{}' {dir} manifest on device {}: member {i} (rank {}) \
                     starts at offset {} but the previous span ends at {} \
                     (overlap or gap in the fused batch)",
                    m.gvm, m.device, m.ranks[i], m.offsets[i], expect
                ),
            ));
        }
        expect = m.offsets[i].saturating_add(m.lens[i]);
        if m.lens[i] == 0 {
            out.push(diag(
                m.time,
                format!(
                    "gvm '{}' {dir} manifest on device {}: member {i} (rank {}) \
                     contributes 0 bytes",
                    m.gvm, m.device, m.ranks[i]
                ),
            ));
        }
    }
    let sum: u64 = m.lens.iter().sum();
    if sum != m.total {
        out.push(diag(
            m.time,
            format!(
                "gvm '{}' {dir} manifest on device {}: member lengths sum to {} \
                 but the batch declares {} total bytes",
                m.gvm, m.device, sum, m.total
            ),
        ));
    }

    // Distinct ranks.
    let mut seen = HashSet::new();
    for (i, rank) in m.ranks.iter().enumerate() {
        if !seen.insert(*rank) {
            out.push(diag(
                m.time,
                format!(
                    "gvm '{}' {dir} manifest on device {}: rank {rank} appears \
                     more than once (member {i}); per-rank transfer order \
                     cannot be preserved",
                    m.gvm, m.device
                ),
            ));
        }
    }

    // Command fan-out: every member keeps its own engine command.
    let engine = if m.h2d { 0u8 } else { 1u8 };
    for (i, cmd) in m.cmds.iter().enumerate() {
        if !copies.contains(&(m.device, engine, *cmd)) {
            out.push(diag(
                m.time,
                format!(
                    "gvm '{}' {dir} manifest on device {}: member {i} (rank {}) \
                     names command {cmd} but no CopyBegin 'cmd-{cmd}' exists on \
                     that device's engine {engine}",
                    m.gvm, m.device, m.ranks[i]
                ),
            ));
        }
    }

    // Generation currency against the grant history.
    for i in 0..n {
        if let Some(latest) = grants.get(&(m.gvm.to_string(), m.bufs[i])) {
            if *latest != m.gens[i] {
                out.push(diag(
                    m.time,
                    format!(
                        "gvm '{}' {dir} manifest on device {}: member {i} \
                         (rank {}) fuses pool buf {} at generation {} but the \
                         latest grant is generation {latest} (stale lease)",
                        m.gvm, m.device, m.ranks[i], m.bufs[i], m.gens[i]
                    ),
                ));
            }
        }
    }

    // Quota boundary: in a quota-enforcing GVM every member must be
    // admitted (positive charged balance) at submission time.
    if quota_gvms.contains(m.gvm) {
        for (i, rank) in m.ranks.iter().enumerate() {
            let bal = charged
                .get(&(m.gvm.to_string(), *rank))
                .copied()
                .unwrap_or(0);
            if bal == 0 {
                out.push(diag(
                    m.time,
                    format!(
                        "gvm '{}' {dir} manifest on device {}: member {i} \
                         (rank {rank}) has no charged device-memory balance at \
                         submission; fusing crossed the quota admission boundary",
                        m.gvm, m.device
                    ),
                ));
            }
        }
    }

    // Swap boundary: a swapping GVM must not fuse.
    if let Some(first) = swapped.get(m.gvm) {
        out.push(diag(
            m.time,
            format!(
                "gvm '{}' {dir} manifest on device {}: instance demand-swapped \
                 at t={:.6}ms and later fused transfers; coalescing must be \
                 disabled under swap",
                m.gvm,
                m.device,
                first.as_millis_f64()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// A well-formed two-member H2D manifest plus its two engine commands.
    fn valid_trace() -> Vec<AnalysisRecord> {
        vec![
            AnalysisRecord::CopyBegin {
                time: t(10),
                device: 0,
                engine: 0,
                label: "cmd-4".into(),
            },
            AnalysisRecord::CopyBegin {
                time: t(11),
                device: 0,
                engine: 0,
                label: "cmd-5".into(),
            },
            AnalysisRecord::CoalesceOp {
                time: t(9),
                gvm: "gvm".into(),
                device: 0,
                h2d: true,
                total: 12288,
                ranks: vec![0, 1],
                offsets: vec![0, 4096],
                lens: vec![4096, 8192],
                bufs: vec![3, 7],
                gens: vec![1, 1],
                cmds: vec![4, 5],
            },
        ]
    }

    fn with_op(mutate: impl FnOnce(&mut AnalysisRecord)) -> Vec<AnalysisRecord> {
        let mut recs = valid_trace();
        mutate(&mut recs[2]);
        recs
    }

    #[test]
    fn clean_manifest_passes() {
        assert!(check(&valid_trace()).is_empty());
    }

    #[test]
    fn gap_and_overlap_are_flagged() {
        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp { offsets, .. } = r {
                offsets[1] = 8192; // gap: previous span ends at 4096
            }
        });
        let diags = check(&recs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("overlap or gap"));

        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp { offsets, .. } = r {
                offsets[1] = 2048; // overlap
            }
        });
        assert!(check(&recs)[0].message.contains("overlap or gap"));
    }

    #[test]
    fn length_sum_must_match_total() {
        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp { total, .. } = r {
                *total = 999;
            }
        });
        let diags = check(&recs);
        assert!(
            diags.iter().any(|d| d.message.contains("sum to")),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_rank_is_flagged() {
        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp { ranks, .. } = r {
                ranks[1] = 0;
            }
        });
        let diags = check(&recs);
        assert!(
            diags.iter().any(|d| d.message.contains("more than once")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_engine_command_is_flagged() {
        // Wrong engine: manifest says H2D but cmd-5 only exists on engine 0;
        // flip the manifest to D2H so both lookups miss.
        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp { h2d, .. } = r {
                *h2d = false;
            }
        });
        let diags = check(&recs);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("no CopyBegin"));
    }

    #[test]
    fn single_member_manifest_is_flagged() {
        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp {
                total,
                ranks,
                offsets,
                lens,
                bufs,
                gens,
                cmds,
                ..
            } = r
            {
                *total = 4096;
                for v in [ranks, offsets, lens, bufs, gens, cmds] {
                    v.truncate(1);
                }
            }
        });
        let diags = check(&recs);
        assert!(
            diags.iter().any(|d| d.message.contains("at least 2")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_generation_is_flagged() {
        let mut recs = valid_trace();
        recs.insert(
            0,
            AnalysisRecord::DescGrant {
                time: t(1),
                gvm: "gvm".into(),
                rank: 1,
                segment: "/gvm-shm-1".into(),
                buf: 7,
                len: 8192,
                generation: 2, // manifest fuses buf 7 at generation 1
            },
        );
        let diags = check(&recs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("stale lease"));
    }

    #[test]
    fn unadmitted_member_under_quota_is_flagged() {
        let mut recs = valid_trace();
        // Quota-enforcing gvm: rank 0 charged, rank 1 never charged.
        recs.insert(
            0,
            AnalysisRecord::QuotaSet {
                time: t(0),
                gvm: "gvm".into(),
                rank: 0,
                quota: 1 << 20,
                demand: 4096,
            },
        );
        recs.insert(
            1,
            AnalysisRecord::QuotaCharge {
                time: t(1),
                gvm: "gvm".into(),
                rank: 0,
                bytes: 4096,
                charged: 4096,
            },
        );
        let diags = check(&recs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("quota admission boundary"));
        assert!(diags[0].message.contains("rank 1"));
    }

    #[test]
    fn fusing_in_a_swapping_gvm_is_flagged() {
        let mut recs = valid_trace();
        recs.insert(
            0,
            AnalysisRecord::SwapOut {
                time: t(2),
                gvm: "gvm".into(),
                device: 0,
                buf: 9,
                bytes: 8192,
            },
        );
        let diags = check(&recs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("disabled under swap"));
    }

    #[test]
    fn arity_mismatch_short_circuits() {
        let recs = with_op(|r| {
            if let AnalysisRecord::CoalesceOp { cmds, .. } = r {
                cmds.pop();
            }
        });
        let diags = check(&recs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("mismatched arity"));
    }

    #[test]
    fn foreign_gvm_state_does_not_leak() {
        // Grants/quota/swap on another instance must not affect this one.
        let mut recs = valid_trace();
        recs.insert(
            0,
            AnalysisRecord::SwapOut {
                time: t(2),
                gvm: "other".into(),
                device: 0,
                buf: 9,
                bytes: 8192,
            },
        );
        recs.insert(
            0,
            AnalysisRecord::QuotaSet {
                time: t(0),
                gvm: "other".into(),
                rank: 0,
                quota: 0,
                demand: 0,
            },
        );
        assert!(check(&recs).is_empty());
    }
}

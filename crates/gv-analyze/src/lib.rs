//! Trace-based static analysis for the GVM simulator.
//!
//! Deterministic runs produce [`AnalysisRecord`] streams (enable with
//! [`Tracer::set_analysis`]); this crate replays them through seven
//! checkers, none of which re-executes the simulation:
//!
//! * [`race`] — a vector-clock happens-before detector over shared-memory
//!   accesses: two overlapping accesses from different processes, at least
//!   one a write, with no synchronization chain between them, are a data
//!   race even if the schedule happened to order them safely.
//! * [`conformance`] — a linter replaying GVM request receipts against the
//!   REQ/SND/STR/STP/RCV/RLS protocol FSM: per-rank stage ordering,
//!   sequence-number monotonicity and retry idempotence, barrier-width
//!   consistency of joint flushes, and eviction semantics.
//! * [`device`] — device-invariant checking over GPU engine events: copy
//!   engines serve one transfer at a time, the concurrent-kernel window
//!   never exceeds the device cap, and allocations balance to zero.
//! * [`staging`] — buffer-lifecycle invariants over the `gv-mem` layer's
//!   records: chunk spans tile their payload exactly once, and a pooled
//!   staging buffer is never recycled while a copy referencing it is in
//!   flight (use-after-recycle).
//! * [`coalesce`] — fused-DMA manifest invariants over the flush planner's
//!   `CoalesceOp` records: each manifest partitions its batch exactly (no
//!   overlap, no gap), member ranks are distinct, each member's engine
//!   command exists on the named device/engine, lease generations were
//!   current at submission, and no fusing crossed a quota or swap boundary.
//! * [`cluster`] — co-residency invariants over the placement front-end's
//!   `ClusterPlace`/`ClusterEvict` records: a VGPU session is resident on
//!   at most one device at a time, gangs are never split across devices,
//!   and resident demand never exceeds a device's declared capacity.
//! * [`deadlock`] — whole-trace termination checking over the engine's
//!   `DeadlockWaiter`/`Deadlock`/`NotifyLost` records: reports the wait-for
//!   cycle behind a deadlock, and upgrades a deadlocked condition wait with
//!   an earlier dropped notification on the same resource to a lost-wakeup
//!   finding.
//! * [`liveness`] — every VGPU session admitted with a `REQ` must terminate
//!   (a matching `RLS` or eviction); checked only on traces whose `RunEnd`
//!   marker shows a completed run, so partial dumps stay silent.
//! * [`quota`] — device-memory quota and demand-swap accounting over the
//!   GVM's `QuotaSet`/`QuotaCharge`/`QuotaCredit` and `SwapOut`/`SwapIn`
//!   records: charged usage never exceeds a rank's declared quota, charges
//!   and credits balance to zero on completed runs, and every swapped-out
//!   working set is either restored exactly once or retired through the
//!   staging pool at shutdown.
//!
//! [`model`] adds a line-oriented dump format so traces can be written by a
//! run (`--analyze --dump-trace` in the harness) and re-checked offline by
//! the `gv-analyze` binary. [`explore`] drives the whole suite over *many*
//! schedules of one scenario via the gv-sim scheduling oracle, shrinking any
//! failure to a minimal replayable `.gvsched` counterexample.
//!
//! [`Tracer::set_analysis`]: gv_sim::trace::Tracer::set_analysis

pub mod cluster;
pub mod coalesce;
pub mod conformance;
pub mod deadlock;
pub mod device;
pub mod explore;
pub mod liveness;
pub mod model;
pub mod quota;
pub mod race;
pub mod staging;

use gv_sim::trace::Tracer;
use gv_sim::{AnalysisRecord, SimTime};

/// One finding from a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which checker produced it: `"race"`, `"conformance"`, `"device"`,
    /// `"staging"`, `"cluster"`, `"quota"`, `"deadlock"`, `"lost-wakeup"`,
    /// `"liveness"`.
    pub checker: &'static str,
    /// Simulated time of the offending event.
    pub time: SimTime,
    /// Human-readable description with rank/process/label detail.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] t={:.6}ms {}",
            self.checker,
            self.time.as_millis_f64(),
            self.message
        )
    }
}

/// The combined result of running every checker over one trace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in checker order then trace order.
    pub diagnostics: Vec<Diagnostic>,
    /// Shared-memory accesses examined by the race detector.
    pub shm_accesses: usize,
    /// Protocol receipts examined by the conformance linter.
    pub proto_messages: usize,
    /// Device engine/memory events examined by the invariant checker.
    pub device_events: usize,
    /// Staging-layer events (chunk spans, pool acquire/recycle) examined
    /// by the staging checker.
    pub staging_events: usize,
    /// Cluster placement events (device declarations, place/evict)
    /// examined by the co-residency checker.
    pub cluster_events: usize,
    /// Scheduling/termination events (deadlock waiters, dropped notifies,
    /// run-end markers) examined by the deadlock and liveness checkers.
    pub sched_events: usize,
    /// Quota/oversubscription events (quota declarations, charge/credit,
    /// swap-out/swap-in) examined by the quota checker.
    pub quota_events: usize,
    /// Fused-DMA manifests (`CoalesceOp`) examined by the coalesce checker.
    pub coalesce_events: usize,
}

impl Report {
    /// True when no checker found anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render every diagnostic, one per line (empty string when clean).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        out
    }

    /// One-line summary suitable for harness output.
    pub fn summary(&self) -> String {
        format!(
            "analyze: {} diagnostic(s) over {} shm / {} proto / {} device / {} staging / {} cluster / {} sched / {} quota / {} coalesce events",
            self.diagnostics.len(),
            self.shm_accesses,
            self.proto_messages,
            self.device_events,
            self.staging_events,
            self.cluster_events,
            self.sched_events,
            self.quota_events,
            self.coalesce_events
        )
    }
}

/// Run every checker over `records`.
pub fn analyze(records: &[AnalysisRecord]) -> Report {
    let mut report = Report::default();
    for rec in records {
        match rec {
            AnalysisRecord::ShmAccess { .. } => report.shm_accesses += 1,
            AnalysisRecord::Proto { .. }
            | AnalysisRecord::ProtoSched { .. }
            | AnalysisRecord::ProtoFlush { .. }
            | AnalysisRecord::ProtoEvict { .. } => report.proto_messages += 1,
            AnalysisRecord::DeviceRegistered { .. }
            | AnalysisRecord::CopyBegin { .. }
            | AnalysisRecord::CopyEnd { .. }
            | AnalysisRecord::KernelBegin { .. }
            | AnalysisRecord::KernelEnd { .. }
            | AnalysisRecord::Alloc { .. }
            | AnalysisRecord::Free { .. } => report.device_events += 1,
            AnalysisRecord::StageChunk { .. }
            | AnalysisRecord::StagePlan { .. }
            | AnalysisRecord::PoolAcquire { .. }
            | AnalysisRecord::PoolRecycle { .. }
            | AnalysisRecord::DescGrant { .. }
            | AnalysisRecord::DescUse { .. } => report.staging_events += 1,
            AnalysisRecord::CoalesceOp { .. } => {
                report.staging_events += 1;
                report.coalesce_events += 1;
            }
            AnalysisRecord::ClusterDevice { .. }
            | AnalysisRecord::ClusterPlace { .. }
            | AnalysisRecord::ClusterEvict { .. } => report.cluster_events += 1,
            AnalysisRecord::QuotaSet { .. }
            | AnalysisRecord::QuotaCharge { .. }
            | AnalysisRecord::QuotaCredit { .. }
            | AnalysisRecord::SwapOut { .. }
            | AnalysisRecord::SwapIn { .. } => report.quota_events += 1,
            AnalysisRecord::DeadlockWaiter { .. }
            | AnalysisRecord::Deadlock { .. }
            | AnalysisRecord::NotifyLost { .. }
            | AnalysisRecord::RunEnd { .. } => report.sched_events += 1,
        }
    }
    report.diagnostics.extend(race::check(records));
    report.diagnostics.extend(conformance::check(records));
    report.diagnostics.extend(device::check(records));
    report.diagnostics.extend(staging::check(records));
    report.diagnostics.extend(coalesce::check(records));
    report.diagnostics.extend(cluster::check(records));
    report.diagnostics.extend(quota::check(records));
    report.diagnostics.extend(deadlock::check(records));
    report.diagnostics.extend(liveness::check(records));
    report
}

/// Snapshot a live tracer's analysis records and run every checker.
pub fn analyze_tracer(tracer: &Tracer) -> Report {
    analyze(&tracer.analysis_snapshot())
}

//! Device-memory quota and demand-swap accounting over the GVM's records.
//!
//! A quota-enforcing GVM emits [`AnalysisRecord::QuotaSet`] at admission
//! (the resolved byte cap, 0 meaning unlimited, plus the session's declared
//! demand), [`AnalysisRecord::QuotaCharge`] / [`AnalysisRecord::QuotaCredit`]
//! around every device allocation it charges against a rank, and
//! [`AnalysisRecord::SwapOut`] / [`AnalysisRecord::SwapIn`] when an
//! idle-parked working set is demand-swapped into pooled host staging and
//! later restored. This checker replays those records and verifies:
//!
//! * **Quota bound** — a rank's charged total never exceeds its declared
//!   quota (when finite). The GVM must reject or defer, never silently
//!   exceed.
//! * **Ledger arithmetic** — every charge/credit record's running total
//!   equals the previous total plus/minus its delta, and a credit never
//!   exceeds what was charged.
//! * **Balance** — on a run the engine marked complete (`RunEnd` with
//!   `completed=1`), every rank's charged total has returned to zero.
//! * **Swap discipline** — no double swap-out of a live parked buffer, no
//!   swap-in without a matching outstanding swap-out (the use-after-swap-out
//!   family: restoring from a buffer that was never parked, already
//!   restored, or already retired), and swap-in size equals swap-out size.
//! * **Swap retirement** — on completed runs, every still-outstanding
//!   swapped buffer must have been retired back to the staging pool (its
//!   [`AnalysisRecord::PoolRecycle`] is the retirement marker emitted by
//!   the shutdown drain); anything else leaked pinned host memory.
//!
//! Traces without a `RunEnd` marker, or cut short by a horizon or fault,
//! skip the end-of-run sweeps: partial traces legitimately hold open
//! charges and parked swaps.

use std::collections::HashMap;

use gv_sim::{AnalysisRecord, SimTime};

use crate::Diagnostic;

fn diag(time: SimTime, message: String) -> Diagnostic {
    Diagnostic {
        checker: "quota",
        time,
        message,
    }
}

/// One outstanding swapped-out working set, keyed by pool buffer id.
struct Swapped {
    time: SimTime,
    gvm: String,
    device: u32,
    bytes: u64,
}

/// Replay `records` and report every quota/swap-accounting violation.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // (gvm, rank) → declared quota in bytes (0 = unlimited).
    let mut quotas: HashMap<(String, usize), u64> = HashMap::new();
    // (gvm, rank) → running charged total per the last record seen.
    let mut charged_now: HashMap<(String, usize), u64> = HashMap::new();
    // (gvm, rank) → time of the charge that opened the non-zero balance.
    let mut opened: HashMap<(String, usize), SimTime> = HashMap::new();
    // pool buf id → outstanding swap-out. Buf ids are tracer-global, so the
    // id alone keys the entry; `PoolRecycle` (no gvm field) retires it.
    let mut swapped: HashMap<u64, Swapped> = HashMap::new();

    for rec in records {
        match rec {
            AnalysisRecord::QuotaSet {
                time,
                gvm,
                rank,
                quota,
                demand,
            } => {
                quotas.insert((gvm.clone(), *rank), *quota);
                if *quota > 0 && *demand > *quota {
                    out.push(diag(
                        *time,
                        format!(
                            "rank {rank} of gvm '{gvm}' admitted with demand {demand} \
                             above its quota {quota}"
                        ),
                    ));
                }
            }
            AnalysisRecord::QuotaCharge {
                time,
                gvm,
                rank,
                bytes,
                charged,
            } => {
                let key = (gvm.clone(), *rank);
                let prev = charged_now.get(&key).copied().unwrap_or(0);
                if prev + *bytes != *charged {
                    out.push(diag(
                        *time,
                        format!(
                            "rank {rank} of gvm '{gvm}': charge of {bytes} bytes moved \
                             the ledger from {prev} to {charged} (expected {})",
                            prev + *bytes
                        ),
                    ));
                }
                if let Some(&quota) = quotas.get(&key) {
                    if quota > 0 && *charged > quota {
                        out.push(diag(
                            *time,
                            format!(
                                "rank {rank} of gvm '{gvm}': charged {charged} bytes \
                                 exceeds its quota {quota}"
                            ),
                        ));
                    }
                }
                charged_now.insert(key.clone(), *charged);
                if *charged > 0 {
                    opened.entry(key).or_insert(*time);
                }
            }
            AnalysisRecord::QuotaCredit {
                time,
                gvm,
                rank,
                bytes,
                charged,
            } => {
                let key = (gvm.clone(), *rank);
                let prev = charged_now.get(&key).copied().unwrap_or(0);
                if *bytes > prev {
                    out.push(diag(
                        *time,
                        format!(
                            "rank {rank} of gvm '{gvm}': credit of {bytes} bytes \
                             exceeds the {prev} charged"
                        ),
                    ));
                } else if prev - *bytes != *charged {
                    out.push(diag(
                        *time,
                        format!(
                            "rank {rank} of gvm '{gvm}': credit of {bytes} bytes moved \
                             the ledger from {prev} to {charged} (expected {})",
                            prev - *bytes
                        ),
                    ));
                }
                charged_now.insert(key.clone(), *charged);
                if *charged == 0 {
                    opened.remove(&key);
                }
            }
            AnalysisRecord::SwapOut {
                time,
                gvm,
                device,
                buf,
                bytes,
            } => {
                let prev = swapped.insert(
                    *buf,
                    Swapped {
                        time: *time,
                        gvm: gvm.clone(),
                        device: *device,
                        bytes: *bytes,
                    },
                );
                if let Some(p) = prev {
                    out.push(diag(
                        *time,
                        format!(
                            "gvm '{gvm}' swapped out buffer {buf} on device {device} \
                             while it is already parked (since t={:.6}ms)",
                            p.time.as_millis_f64()
                        ),
                    ));
                }
            }
            AnalysisRecord::SwapIn {
                time,
                gvm,
                device,
                buf,
                bytes,
            } => match swapped.remove(buf) {
                Some(s) => {
                    if s.bytes != *bytes {
                        out.push(diag(
                            *time,
                            format!(
                                "gvm '{gvm}' swapped in {bytes} bytes from buffer {buf} \
                                 but {} were swapped out",
                                s.bytes
                            ),
                        ));
                    }
                    if s.device != *device {
                        out.push(diag(
                            *time,
                            format!(
                                "gvm '{gvm}' swapped buffer {buf} in on device {device} \
                                 but out on device {}",
                                s.device
                            ),
                        ));
                    }
                }
                None => {
                    out.push(diag(
                        *time,
                        format!(
                            "use-after-swap-out: gvm '{gvm}' swapped in buffer {buf} on \
                             device {device} with no outstanding swap-out"
                        ),
                    ));
                }
            },
            // The shutdown drain retires a still-parked working set by
            // recycling its staging lease instead of restoring it.
            AnalysisRecord::PoolRecycle { buf, .. } => {
                swapped.remove(buf);
            }
            _ => {}
        }
    }

    // End-of-run sweeps only apply to runs the engine marked complete.
    let Some((end_time, completed)) = records.iter().rev().find_map(|r| match r {
        AnalysisRecord::RunEnd {
            time, completed, ..
        } => Some((*time, *completed)),
        _ => None,
    }) else {
        return out;
    };
    if !completed {
        return out;
    }

    let mut unbalanced: Vec<_> = charged_now
        .into_iter()
        .filter(|(_, charged)| *charged > 0)
        .collect();
    unbalanced.sort();
    for ((gvm, rank), charged) in unbalanced {
        let since = opened
            .get(&(gvm.clone(), rank))
            .copied()
            .unwrap_or(end_time);
        out.push(diag(
            end_time,
            format!(
                "run completed but rank {rank} of gvm '{gvm}' still has {charged} \
                 bytes charged (open since t={:.6}ms)",
                since.as_millis_f64()
            ),
        ));
    }
    let mut leaked: Vec<_> = swapped.into_iter().collect();
    leaked.sort_by_key(|(buf, _)| *buf);
    for (buf, s) in leaked {
        out.push(diag(
            end_time,
            format!(
                "run completed but buffer {buf} ({} bytes from gvm '{}' device {}) \
                 is still swapped out with no swap-in or pool retirement",
                s.bytes, s.gvm, s.device
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn qset(ns: u64, rank: usize, quota: u64, demand: u64) -> AnalysisRecord {
        AnalysisRecord::QuotaSet {
            time: t(ns),
            gvm: "gvm".to_string(),
            rank,
            quota,
            demand,
        }
    }

    fn charge(ns: u64, rank: usize, bytes: u64, charged: u64) -> AnalysisRecord {
        AnalysisRecord::QuotaCharge {
            time: t(ns),
            gvm: "gvm".to_string(),
            rank,
            bytes,
            charged,
        }
    }

    fn credit(ns: u64, rank: usize, bytes: u64, charged: u64) -> AnalysisRecord {
        AnalysisRecord::QuotaCredit {
            time: t(ns),
            gvm: "gvm".to_string(),
            rank,
            bytes,
            charged,
        }
    }

    fn sout(ns: u64, buf: u64, bytes: u64) -> AnalysisRecord {
        AnalysisRecord::SwapOut {
            time: t(ns),
            gvm: "gvm".to_string(),
            device: 0,
            buf,
            bytes,
        }
    }

    fn sin(ns: u64, buf: u64, bytes: u64) -> AnalysisRecord {
        AnalysisRecord::SwapIn {
            time: t(ns),
            gvm: "gvm".to_string(),
            device: 0,
            buf,
            bytes,
        }
    }

    fn run_end(completed: bool) -> AnalysisRecord {
        AnalysisRecord::RunEnd {
            time: t(1000),
            completed,
            deadlocked: false,
        }
    }

    #[test]
    fn clean_quota_and_swap_cycle_passes() {
        let recs = vec![
            qset(1, 0, 8192, 4096),
            charge(10, 0, 4096, 4096),
            sout(20, 5, 4096),
            credit(21, 0, 4096, 0),
            sin(30, 5, 4096),
            charge(31, 0, 4096, 4096),
            credit(40, 0, 4096, 0),
            run_end(true),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn over_quota_charge_is_flagged() {
        let recs = vec![qset(1, 0, 4096, 4096), charge(10, 0, 8192, 8192)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("exceeds its quota 4096"), "{d:?}");
    }

    #[test]
    fn admission_above_quota_is_flagged() {
        let recs = vec![qset(1, 0, 4096, 8192)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("demand 8192"), "{d:?}");
    }

    #[test]
    fn unlimited_quota_never_flags_charges() {
        let recs = vec![
            qset(1, 0, 0, 1 << 30),
            charge(10, 0, 1 << 30, 1 << 30),
            credit(20, 0, 1 << 30, 0),
            run_end(true),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn ledger_arithmetic_mismatch_is_flagged() {
        let recs = vec![charge(10, 0, 4096, 4096), charge(20, 0, 4096, 4096)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("expected 8192"), "{d:?}");
    }

    #[test]
    fn credit_exceeding_charged_is_flagged() {
        let recs = vec![charge(10, 0, 1024, 1024), credit(20, 0, 4096, 0)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("exceeds the 1024 charged"), "{d:?}");
    }

    #[test]
    fn unbalanced_charge_on_completed_run_is_flagged() {
        let recs = vec![charge(10, 0, 4096, 4096), run_end(true)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("still has 4096 bytes"), "{d:?}");
    }

    #[test]
    fn partial_trace_skips_end_sweeps() {
        let recs = vec![charge(10, 0, 4096, 4096), sout(20, 5, 4096)];
        assert!(check(&recs).is_empty());
        let recs = vec![charge(10, 0, 4096, 4096), sout(20, 5, 4096), run_end(false)];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn swap_in_without_swap_out_is_flagged() {
        let recs = vec![sin(10, 5, 4096)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("use-after-swap-out"), "{d:?}");
    }

    #[test]
    fn swap_in_after_pool_retirement_is_flagged() {
        let recs = vec![
            sout(10, 5, 4096),
            AnalysisRecord::PoolRecycle {
                time: t(20),
                buf: 5,
            },
            sin(30, 5, 4096),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("use-after-swap-out"), "{d:?}");
    }

    #[test]
    fn double_swap_out_is_flagged() {
        let recs = vec![sout(10, 5, 4096), sout(20, 5, 4096)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("already parked"), "{d:?}");
    }

    #[test]
    fn swap_size_mismatch_is_flagged() {
        let recs = vec![sout(10, 5, 4096), sin(20, 5, 2048)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("4096 were swapped out"), "{d:?}");
    }

    #[test]
    fn leaked_swap_on_completed_run_is_flagged() {
        let recs = vec![sout(10, 5, 4096), run_end(true)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("still swapped out"), "{d:?}");
    }

    #[test]
    fn pool_retirement_balances_a_leaked_swap() {
        let recs = vec![
            sout(10, 5, 4096),
            AnalysisRecord::PoolRecycle {
                time: t(20),
                buf: 5,
            },
            run_end(true),
        ];
        assert!(check(&recs).is_empty());
    }
}

//! Protocol-conformance linting over GVM request receipts.
//!
//! The GVM records one [`AnalysisRecord::Proto`] per request receipt
//! (before retry dedup), a [`AnalysisRecord::ProtoFlush`] per joint stream
//! flush, and a [`AnalysisRecord::ProtoEvict`] per eviction. This linter
//! replays them against the paper's execution cycle, as implemented by
//! `gv_virt::protocol`:
//!
//! ```text
//! REQ → ( SND → STR → [flush] → STP+ → RCV )+ → RLS
//! ```
//!
//! Checked per rank:
//! * **Stage ordering** — each newly-sequenced request must be legal in the
//!   rank's current state; a barriered rank (STR awaiting flush) may not
//!   advance until a flush covers it. Steady-state pipelining adds one
//!   twist: a client may *prefetch* the next round's SND while the current
//!   round still computes (stage running/polling). The linter tracks the
//!   prefetch and later accepts the matching STR straight from the
//!   retrieved stage — but only when a prefetch is actually pending, so
//!   non-steady traces keep the strict rule.
//! * **Sequence discipline** — new sequence numbers are strictly
//!   increasing (gaps are legal: a client may burn numbers on abandoned
//!   sends); a retry of an already-served number must repeat the same
//!   request kind; `seq == 0` marks a legacy unsequenced client and skips
//!   sequence checks.
//! * **Barrier width** — under the default joint-flush policy every flush
//!   must cover exactly the set of currently-barriered ranks (eviction
//!   re-arms the barrier at reduced width, so the pending set shrinks when
//!   stragglers are evicted). A [`AnalysisRecord::ProtoSched`] boot record
//!   with `partial = true` (FCFS, adaptive batch, shortest-job-first)
//!   relaxes the rule: a flush may cover any *non-empty subset* of the
//!   barriered ranks, but never a rank that is not barriered.
//! * **Eviction** — receipts from an evicted rank are legal (retrying
//!   clients are NAK'd, not conformance errors), but the rank may never
//!   re-enter the cycle.

use std::collections::{BTreeSet, HashMap};

use gv_sim::AnalysisRecord;
use gv_virt::protocol::RequestKind;

use crate::Diagnostic;

/// Lint state of one rank, mirroring the client's position in the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// No REQ seen yet.
    Init,
    /// REQ served; resources acquired.
    Acquired,
    /// SND served; input staged in pinned memory.
    Staged,
    /// STR received; waiting in the joint-flush barrier.
    Barriered,
    /// Flush covered this rank; streams submitted, awaiting STP poll.
    Running,
    /// At least one STP served this round.
    Polling,
    /// RCV served; results retrieved (may start another round or RLS).
    Retrieved,
    /// RLS served; cycle complete.
    Released,
    /// Evicted by the GVM; every later receipt is ignored.
    Evicted,
}

impl Stage {
    fn name(self) -> &'static str {
        match self {
            Stage::Init => "init",
            Stage::Acquired => "acquired",
            Stage::Staged => "staged",
            Stage::Barriered => "barriered",
            Stage::Running => "running",
            Stage::Polling => "polling",
            Stage::Retrieved => "retrieved",
            Stage::Released => "released",
            Stage::Evicted => "evicted",
        }
    }

    /// The state a request kind lands in when it is accepted — used to
    /// resynchronize after a violation so one bad message doesn't cascade.
    fn target_of(kind: RequestKind) -> Stage {
        match kind {
            RequestKind::Req => Stage::Acquired,
            RequestKind::Snd => Stage::Staged,
            RequestKind::Str => Stage::Barriered,
            RequestKind::Stp => Stage::Polling,
            RequestKind::Rcv => Stage::Retrieved,
            RequestKind::Rls => Stage::Released,
        }
    }
}

struct RankLint {
    stage: Stage,
    /// Highest sequence number accepted (0 = none yet).
    last_seq: u64,
    /// Kind served for each accepted sequence number (retry idempotence).
    served: HashMap<u64, &'static str>,
    /// A steady-state SND arrived mid-round (while running/polling); the
    /// next-round STR may then follow RCV directly.
    prefetched: bool,
}

impl Default for RankLint {
    fn default() -> Self {
        RankLint {
            stage: Stage::Init,
            last_seq: 0,
            served: HashMap::new(),
            prefetched: false,
        }
    }
}

/// Per-GVM lint state. Ranks are GVM-local (a cluster trace interleaves
/// several GVMs whose rank spaces all start at 0), so every piece of
/// protocol state is scoped by the GVM instance name.
#[derive(Default)]
struct GvmLint {
    ranks: HashMap<usize, RankLint>,
    /// Set by the GVM's boot-time policy announcement; absent (legacy
    /// traces) means the strict joint-flush width rule.
    partial_flushes: bool,
}

/// Replay all protocol records and report every conformance violation.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut gvms: HashMap<String, GvmLint> = HashMap::new();

    for rec in records {
        match rec {
            AnalysisRecord::ProtoSched { gvm, partial, .. } => {
                gvms.entry(gvm.clone()).or_default().partial_flushes = *partial;
            }
            AnalysisRecord::Proto {
                time,
                gvm,
                rank,
                kind,
                seq,
            } => {
                let ranks = &mut gvms.entry(gvm.clone()).or_default().ranks;
                let Some(kind) = RequestKind::from_label(kind) else {
                    diagnostics.push(Diagnostic {
                        checker: "conformance",
                        time: *time,
                        message: format!("rank {rank}: unknown request kind '{kind}' (seq {seq})"),
                    });
                    continue;
                };
                let lint = ranks.entry(*rank).or_default();
                if lint.stage == Stage::Evicted {
                    continue; // retries against a dead rank are legal
                }

                // Sequence discipline.
                if *seq != 0 {
                    if *seq <= lint.last_seq {
                        // A retry: must repeat the kind originally served.
                        if let Some(orig) = lint.served.get(seq) {
                            if *orig != kind.label() {
                                diagnostics.push(Diagnostic {
                                    checker: "conformance",
                                    time: *time,
                                    message: format!(
                                        "rank {rank}: retry of seq {seq} changed kind from \
                                         {orig} to {}",
                                        kind.label()
                                    ),
                                });
                            }
                        }
                        continue; // duplicates never advance the FSM
                    }
                    lint.served.insert(*seq, kind.label());
                    lint.last_seq = *seq;
                }

                // Steady-state prefetch: a SND while the rank still runs
                // or polls stages the *next* round early. It does not
                // advance the FSM — the round in flight is unaffected —
                // but arms the STR-after-RCV transition below.
                if kind == RequestKind::Snd && matches!(lint.stage, Stage::Running | Stage::Polling)
                {
                    lint.prefetched = true;
                    continue;
                }

                // Stage ordering.
                let legal = match (lint.stage, kind) {
                    (Stage::Init, RequestKind::Req)
                    | (Stage::Acquired, RequestKind::Snd)
                    | (Stage::Staged, RequestKind::Str)
                    | (Stage::Running | Stage::Polling, RequestKind::Stp)
                    | (Stage::Polling, RequestKind::Rcv)
                    | (Stage::Retrieved, RequestKind::Snd | RequestKind::Rls) => true,
                    // STR straight after RCV is legal only when this
                    // round's SND was prefetched mid-compute (consumed
                    // here, so a second such STR needs its own prefetch).
                    (Stage::Retrieved, RequestKind::Str) => std::mem::take(&mut lint.prefetched),
                    _ => false,
                };
                if !legal {
                    diagnostics.push(Diagnostic {
                        checker: "conformance",
                        time: *time,
                        message: format!(
                            "rank {rank}: {} (seq {seq}) is illegal in stage '{}'",
                            kind.label(),
                            lint.stage.name()
                        ),
                    });
                }
                lint.stage = Stage::target_of(kind);
            }
            AnalysisRecord::ProtoFlush {
                time,
                gvm,
                ranks: flushed,
            } => {
                let lint = gvms.entry(gvm.clone()).or_default();
                let (ranks, partial_flushes) = (&mut lint.ranks, lint.partial_flushes);
                let barriered: BTreeSet<usize> = ranks
                    .iter()
                    .filter(|(_, l)| l.stage == Stage::Barriered)
                    .map(|(&r, _)| r)
                    .collect();
                let flushed_set: BTreeSet<usize> = flushed.iter().copied().collect();
                let ok = if partial_flushes {
                    !flushed_set.is_empty() && flushed_set.is_subset(&barriered)
                } else {
                    flushed_set == barriered
                };
                if !ok {
                    diagnostics.push(Diagnostic {
                        checker: "conformance",
                        time: *time,
                        message: format!(
                            "flush width mismatch: flushed {flushed_set:?} but barriered \
                             set is {barriered:?}{}",
                            if partial_flushes {
                                " (partial policy: non-empty subset required)"
                            } else {
                                ""
                            }
                        ),
                    });
                }
                for r in &flushed_set {
                    if let Some(lint) = ranks.get_mut(r) {
                        if lint.stage == Stage::Barriered {
                            lint.stage = Stage::Running;
                        }
                    }
                }
            }
            AnalysisRecord::ProtoEvict { time, gvm, rank } => {
                let lint = gvms
                    .entry(gvm.clone())
                    .or_default()
                    .ranks
                    .entry(*rank)
                    .or_default();
                if lint.stage == Stage::Evicted {
                    diagnostics.push(Diagnostic {
                        checker: "conformance",
                        time: *time,
                        message: format!("rank {rank}: evicted twice"),
                    });
                }
                lint.stage = Stage::Evicted;
            }
            _ => {}
        }
    }

    // End-of-trace: every rank of every GVM must have completed (RLS) or
    // been evicted.
    let mut open_ranks: Vec<_> = gvms
        .iter()
        .flat_map(|(g, lint)| lint.ranks.iter().map(move |(r, l)| (g, r, l)))
        .collect();
    open_ranks.sort_by_key(|&(g, r, _)| (g.clone(), *r));
    for (gvm, rank, lint) in open_ranks {
        match lint.stage {
            Stage::Released | Stage::Evicted => {}
            other => diagnostics.push(Diagnostic {
                checker: "conformance",
                time: gv_sim::SimTime::ZERO,
                message: format!(
                    "{gvm}: rank {rank}: trace ended in stage '{}' (no RLS or eviction)",
                    other.name()
                ),
            }),
        }
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::SimTime;

    fn proto(t: u64, rank: usize, kind: &'static str, seq: u64) -> AnalysisRecord {
        AnalysisRecord::Proto {
            time: SimTime::from_nanos(t),
            gvm: "gvm".to_string(),
            rank,
            kind,
            seq,
        }
    }

    fn flush(t: u64, ranks: Vec<usize>) -> AnalysisRecord {
        AnalysisRecord::ProtoFlush {
            time: SimTime::from_nanos(t),
            gvm: "gvm".to_string(),
            ranks,
        }
    }

    fn full_cycle(rank: usize) -> Vec<AnalysisRecord> {
        vec![
            proto(1, rank, "REQ", 1),
            proto(2, rank, "SND", 2),
            proto(3, rank, "STR", 3),
            flush(4, vec![rank]),
            proto(5, rank, "STP", 4),
            proto(6, rank, "RCV", 5),
            proto(7, rank, "RLS", 6),
        ]
    }

    #[test]
    fn clean_cycle_passes() {
        assert!(check(&full_cycle(0)).is_empty());
    }

    #[test]
    fn snd_before_req_flagged() {
        let recs = vec![
            proto(1, 0, "SND", 1),
            proto(2, 0, "STR", 2),
            flush(3, vec![0]),
            proto(4, 0, "STP", 3),
            proto(5, 0, "RCV", 4),
            proto(6, 0, "RLS", 5),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0]
            .message
            .contains("SND (seq 1) is illegal in stage 'init'"));
    }

    #[test]
    fn duplicate_retry_is_legal() {
        let mut recs = full_cycle(0);
        recs.insert(3, proto(3, 0, "STR", 3)); // re-sent STR while barriered
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn retry_with_changed_kind_flagged() {
        let mut recs = full_cycle(0);
        recs.insert(3, proto(3, 0, "SND", 3)); // seq 3 was served as STR
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("retry of seq 3 changed kind"));
    }

    #[test]
    fn seq_gaps_are_legal() {
        let recs = vec![
            proto(1, 0, "REQ", 10),
            proto(2, 0, "SND", 20),
            proto(3, 0, "STR", 30),
            flush(4, vec![0]),
            proto(5, 0, "STP", 40),
            proto(6, 0, "RCV", 50),
            proto(7, 0, "RLS", 60),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn stp_before_flush_flagged() {
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 0, "SND", 2),
            proto(3, 0, "STR", 3),
            proto(4, 0, "STP", 4), // barrier not flushed yet
            flush(5, vec![0]),
            proto(6, 0, "RCV", 5),
            proto(7, 0, "RLS", 6),
        ];
        let d = check(&recs);
        assert!(!d.is_empty());
        assert!(d[0]
            .message
            .contains("STP (seq 4) is illegal in stage 'barriered'"));
    }

    #[test]
    fn flush_width_mismatch_flagged() {
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 1, "REQ", 1),
            proto(3, 0, "SND", 2),
            proto(4, 1, "SND", 2),
            proto(5, 0, "STR", 3),
            // Rank 1 never sent STR, yet the flush claims both.
            flush(6, vec![0, 1]),
            proto(7, 0, "STP", 4),
            proto(8, 0, "RCV", 5),
            proto(9, 0, "RLS", 6),
            proto(10, 1, "STR", 3),
            flush(11, vec![1]),
            proto(12, 1, "STP", 4),
            proto(13, 1, "RCV", 5),
            proto(14, 1, "RLS", 6),
        ];
        let d = check(&recs);
        assert!(
            d.iter().any(|d| d.message.contains("flush width mismatch")),
            "{d:?}"
        );
    }

    fn sched(partial: bool) -> AnalysisRecord {
        AnalysisRecord::ProtoSched {
            time: SimTime::ZERO,
            gvm: "gvm".to_string(),
            policy: if partial { "fcfs" } else { "joint" }.to_string(),
            partial,
        }
    }

    #[test]
    fn partial_policy_accepts_subset_flush() {
        // Two ranks barriered, flushed one at a time (FCFS/SJF shape):
        // strict mode would flag both flushes, partial mode accepts them.
        let recs = vec![
            sched(true),
            proto(1, 0, "REQ", 1),
            proto(2, 1, "REQ", 1),
            proto(3, 0, "SND", 2),
            proto(4, 1, "SND", 2),
            proto(5, 0, "STR", 3),
            proto(6, 1, "STR", 3),
            flush(7, vec![1]),
            flush(8, vec![0]),
            proto(9, 0, "STP", 4),
            proto(10, 1, "STP", 4),
            proto(11, 0, "RCV", 5),
            proto(12, 1, "RCV", 5),
            proto(13, 0, "RLS", 6),
            proto(14, 1, "RLS", 6),
        ];
        assert!(check(&recs).is_empty(), "{:?}", check(&recs));
    }

    #[test]
    fn partial_policy_still_rejects_unbarriered_flush() {
        let recs = vec![
            sched(true),
            proto(1, 0, "REQ", 1),
            proto(2, 1, "REQ", 1),
            proto(3, 0, "SND", 2),
            proto(4, 1, "SND", 2),
            proto(5, 0, "STR", 3),
            // Rank 1 never sent STR, yet the flush claims it.
            flush(6, vec![0, 1]),
            proto(7, 0, "STP", 4),
            proto(8, 0, "RCV", 5),
            proto(9, 0, "RLS", 6),
            proto(10, 1, "STR", 3),
            flush(11, vec![1]),
            proto(12, 1, "STP", 4),
            proto(13, 1, "RCV", 5),
            proto(14, 1, "RLS", 6),
        ];
        let d = check(&recs);
        assert!(
            d.iter().any(|d| d.message.contains("flush width mismatch")),
            "{d:?}"
        );
    }

    #[test]
    fn partial_policy_rejects_empty_flush() {
        let mut recs = vec![sched(true)];
        recs.extend(full_cycle(0));
        recs.insert(1, flush(1, vec![])); // flush with nothing barriered
        let d = check(&recs);
        assert!(
            d.iter().any(|d| d.message.contains("non-empty subset")),
            "{d:?}"
        );
    }

    #[test]
    fn joint_announcement_keeps_strict_rule() {
        // Same subset-flush shape as the partial test, but the trace says
        // joint: both one-rank flushes violate the strict width rule.
        let recs = vec![
            sched(false),
            proto(1, 0, "REQ", 1),
            proto(2, 1, "REQ", 1),
            proto(3, 0, "SND", 2),
            proto(4, 1, "SND", 2),
            proto(5, 0, "STR", 3),
            proto(6, 1, "STR", 3),
            flush(7, vec![1]),
            flush(8, vec![0]),
        ];
        let d = check(&recs);
        assert!(
            d.iter().any(|d| d.message.contains("flush width mismatch")),
            "{d:?}"
        );
    }

    #[test]
    fn eviction_reduces_barrier_width() {
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 1, "REQ", 1),
            proto(3, 0, "SND", 2),
            proto(4, 1, "SND", 2),
            proto(5, 0, "STR", 3),
            AnalysisRecord::ProtoEvict {
                time: SimTime::from_nanos(6),
                gvm: "gvm".to_string(),
                rank: 1,
            },
            flush(7, vec![0]),
            proto(8, 0, "STP", 4),
            proto(9, 0, "RCV", 5),
            proto(10, 0, "RLS", 6),
            proto(11, 1, "STR", 3), // straggler retries after eviction: legal
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn multi_round_cycle_passes() {
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 0, "SND", 2),
            proto(3, 0, "STR", 3),
            flush(4, vec![0]),
            proto(5, 0, "STP", 4),
            proto(6, 0, "STP", 5),
            proto(7, 0, "RCV", 6),
            proto(8, 0, "SND", 7), // round 2
            proto(9, 0, "STR", 8),
            flush(10, vec![0]),
            proto(11, 0, "STP", 9),
            proto(12, 0, "RCV", 10),
            proto(13, 0, "RLS", 11),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn steady_prefetch_cycle_passes() {
        // Round 2's SND arrives while round 1 still polls; the round-2 STR
        // then follows RCV directly. The linter must accept the whole run.
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 0, "SND", 2),
            proto(3, 0, "STR", 3),
            flush(4, vec![0]),
            proto(5, 0, "STP", 4),
            proto(6, 0, "SND", 5), // prefetch of round 2, mid-poll
            proto(7, 0, "STP", 6),
            proto(8, 0, "RCV", 7),
            proto(9, 0, "STR", 8), // round 2: STR straight from retrieved
            flush(10, vec![0]),
            proto(11, 0, "STP", 9),
            proto(12, 0, "RCV", 10),
            proto(13, 0, "RLS", 11),
        ];
        assert!(check(&recs).is_empty(), "{:?}", check(&recs));
    }

    #[test]
    fn str_from_retrieved_without_prefetch_flagged() {
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 0, "SND", 2),
            proto(3, 0, "STR", 3),
            flush(4, vec![0]),
            proto(5, 0, "STP", 4),
            proto(6, 0, "RCV", 5),
            proto(7, 0, "STR", 6), // no SND was prefetched: illegal
            flush(8, vec![0]),
            proto(9, 0, "STP", 7),
            proto(10, 0, "RCV", 8),
            proto(11, 0, "RLS", 9),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0]
            .message
            .contains("STR (seq 6) is illegal in stage 'retrieved'"));
    }

    #[test]
    fn prefetch_is_consumed_by_its_str() {
        // One prefetch cannot justify two STR-from-retrieved rounds.
        let recs = vec![
            proto(1, 0, "REQ", 1),
            proto(2, 0, "SND", 2),
            proto(3, 0, "STR", 3),
            flush(4, vec![0]),
            proto(5, 0, "STP", 4),
            proto(6, 0, "SND", 5), // prefetch (round 2)
            proto(7, 0, "RCV", 6),
            proto(8, 0, "STR", 7), // consumes the prefetch
            flush(9, vec![0]),
            proto(10, 0, "STP", 8),
            proto(11, 0, "RCV", 9),
            proto(12, 0, "STR", 10), // round 3 without a prefetch: illegal
            flush(13, vec![0]),
            proto(14, 0, "STP", 11),
            proto(15, 0, "RCV", 12),
            proto(16, 0, "RLS", 13),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("seq 10"));
    }

    fn proto_on(gvm: &str, t: u64, rank: usize, kind: &'static str, seq: u64) -> AnalysisRecord {
        AnalysisRecord::Proto {
            time: SimTime::from_nanos(t),
            gvm: gvm.to_string(),
            rank,
            kind,
            seq,
        }
    }

    fn flush_on(gvm: &str, t: u64, ranks: Vec<usize>) -> AnalysisRecord {
        AnalysisRecord::ProtoFlush {
            time: SimTime::from_nanos(t),
            gvm: gvm.to_string(),
            ranks,
        }
    }

    #[test]
    fn interleaved_gvms_keep_separate_rank_state() {
        // Two GVMs, each with its own rank 0, interleaved in time. Under
        // one shared lint space the second REQ and both one-rank flushes
        // would be violations; per-GVM scoping accepts the whole trace.
        let recs = vec![
            proto_on("a", 1, 0, "REQ", 1),
            proto_on("b", 2, 0, "REQ", 1),
            proto_on("a", 3, 0, "SND", 2),
            proto_on("b", 4, 0, "SND", 2),
            proto_on("a", 5, 0, "STR", 3),
            proto_on("b", 6, 0, "STR", 3),
            flush_on("a", 7, vec![0]),
            flush_on("b", 8, vec![0]),
            proto_on("a", 9, 0, "STP", 4),
            proto_on("b", 10, 0, "STP", 4),
            proto_on("a", 11, 0, "RCV", 5),
            proto_on("b", 12, 0, "RCV", 5),
            proto_on("a", 13, 0, "RLS", 6),
            proto_on("b", 14, 0, "RLS", 6),
        ];
        assert!(check(&recs).is_empty(), "{:?}", check(&recs));
    }

    #[test]
    fn flush_never_crosses_gvms() {
        // GVM `a` flushes a rank that is barriered only in GVM `b`.
        let recs = vec![
            proto_on("a", 1, 0, "REQ", 1),
            proto_on("a", 2, 0, "SND", 2),
            proto_on("a", 3, 0, "STR", 3),
            proto_on("b", 4, 1, "REQ", 1),
            proto_on("b", 5, 1, "SND", 2),
            proto_on("b", 6, 1, "STR", 3),
            flush_on("a", 7, vec![0, 1]), // rank 1 belongs to `b`
            flush_on("b", 8, vec![1]),
            proto_on("a", 9, 0, "STP", 4),
            proto_on("b", 10, 1, "STP", 4),
            proto_on("a", 11, 0, "RCV", 5),
            proto_on("b", 12, 1, "RCV", 5),
            proto_on("a", 13, 0, "RLS", 6),
            proto_on("b", 14, 1, "RLS", 6),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("flush width mismatch"));
    }

    #[test]
    fn unreleased_rank_flagged() {
        let recs = vec![proto(1, 0, "REQ", 1), proto(2, 0, "SND", 2)];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("trace ended in stage 'staged'"));
    }
}

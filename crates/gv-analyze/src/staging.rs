//! Buffer-lifecycle invariants over the `gv-mem` staging layer's records.
//!
//! The staging layer (pinned pool + chunked transfer planner) emits three
//! record kinds: [`AnalysisRecord::PoolAcquire`] /
//! [`AnalysisRecord::PoolRecycle`] bracket a buffer's lease, and
//! [`AnalysisRecord::StageChunk`] describes each span of a (possibly
//! chunked) payload transfer, carrying the pool buffer backing it and the
//! engine command label when an async copy was issued for the span.
//!
//! Invariants checked:
//!
//! * **Tiling** — the spans of one transfer group (`xfer` id) cover
//!   `[0, payload)` exactly once: no gap, no overlap, consistent payload.
//! * **Plan conformance** — when a transfer carries an
//!   [`AnalysisRecord::StagePlan`] (the adaptive chooser's committed chunk
//!   count), the group must emit exactly `k` spans, `k` must respect the
//!   configured cap, the planned and staged payloads must agree, and a
//!   plan must not be left with no staged spans at all.
//! * **Use-after-recycle** — a pool buffer is never recycled while an
//!   engine copy referencing it (a `StageChunk` label without a matching
//!   [`AnalysisRecord::CopyEnd`]) is still in flight.
//! * **Lease discipline** — no double-acquire of a live buffer, no recycle
//!   of a buffer that is not live, and no span staged into a pool buffer
//!   outside its lease.
//! * **Descriptor currency** — a zero-copy `SND` the GVM *accepted*
//!   ([`AnalysisRecord::DescUse`] with `ok`) must present the buffer and
//!   generation of that rank's latest [`AnalysisRecord::DescGrant`], and
//!   the granted lease must not have been recycled or retired since:
//!   accepting a stale descriptor aliases another rank's buffer.
//! * **Write-after-`SND`** — once a rank's zero-copy `SND` is received,
//!   its leased segment is the H2D source; a client shm write landing in
//!   a granted segment between that rank's `SND` and `RCV` (or `RLS` /
//!   eviction) races the device read, even if this schedule dodged it.
//!
//! Copy-engine exclusivity for the chunked copies themselves is already
//! enforced by [`crate::device`] over the same trace.

use std::collections::HashMap;

use gv_sim::{AnalysisRecord, SimTime};

use crate::Diagnostic;

fn diag(time: SimTime, message: String) -> Diagnostic {
    Diagnostic {
        checker: "staging",
        time,
        message,
    }
}

/// One transfer group accumulated from its spans.
struct XferGroup {
    time: SimTime,
    rank: usize,
    h2d: bool,
    payload: u64,
    /// (offset, len) spans in arrival order.
    spans: Vec<(u64, u64)>,
}

/// One planner commitment for a transfer group.
struct Plan {
    time: SimTime,
    rank: usize,
    payload: u64,
    k: u32,
}

/// A rank's latest zero-copy staging grant.
struct Grant {
    buf: u64,
    generation: u64,
    /// False once the granted lease was recycled or retired.
    live: bool,
}

/// Replay `records` and report every staging-invariant violation.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // buf id → size-class capacity, for currently-leased pool buffers.
    let mut live: HashMap<u64, u64> = HashMap::new();
    // (device ordinal, engine command label) → pool buf id, for
    // submitted-but-unfinished copies that read or write a pooled staging
    // buffer. Command labels are per-device counters, so the device is
    // part of the key.
    let mut in_flight: HashMap<(u32, String), u64> = HashMap::new();
    let mut groups: HashMap<u64, XferGroup> = HashMap::new();
    let mut plans: HashMap<u64, Plan> = HashMap::new();
    // (gvm, rank) → that rank's latest zero-copy grant.
    let mut grants: HashMap<(String, usize), Grant> = HashMap::new();
    // granted segment name → (gvm, rank) it was leased to.
    let mut seg_owner: HashMap<String, (String, usize)> = HashMap::new();
    // (gvm, rank) → inside the SND..RCV window where the leased segment
    // is the device's H2D source.
    let mut in_window: HashMap<(String, usize), bool> = HashMap::new();

    for rec in records {
        match rec {
            AnalysisRecord::PoolAcquire {
                time, buf, bytes, ..
            } => {
                let prev = live.insert(*buf, *bytes);
                if prev.is_some() {
                    out.push(diag(
                        *time,
                        format!("pool buffer {buf} acquired while already leased"),
                    ));
                }
            }
            AnalysisRecord::PoolRecycle { time, buf } => {
                // The recycle (or retirement) bumps the lease generation:
                // every descriptor minted under it is now stale.
                for g in grants.values_mut() {
                    if g.buf == *buf {
                        g.live = false;
                    }
                }
                if live.remove(buf).is_none() {
                    out.push(diag(
                        *time,
                        format!("pool buffer {buf} recycled without a live lease"),
                    ));
                }
                for ((_, label), b) in &in_flight {
                    if b == buf {
                        out.push(diag(
                            *time,
                            format!(
                                "use-after-recycle: pool buffer {buf} recycled while copy \
                                 '{label}' referencing it is still in flight"
                            ),
                        ));
                    }
                }
            }
            AnalysisRecord::StageChunk {
                time,
                device,
                rank,
                xfer,
                h2d,
                offset,
                len,
                payload,
                buf,
                label,
            } => {
                if *buf != 0 && !live.contains_key(buf) {
                    out.push(diag(
                        *time,
                        format!("rank {rank} staged span into pool buffer {buf} outside its lease"),
                    ));
                }
                if *buf != 0 && !label.is_empty() {
                    in_flight.insert((*device, label.clone()), *buf);
                }
                let g = groups.entry(*xfer).or_insert_with(|| XferGroup {
                    time: *time,
                    rank: *rank,
                    h2d: *h2d,
                    payload: *payload,
                    spans: Vec::new(),
                });
                if g.payload != *payload || g.rank != *rank || g.h2d != *h2d {
                    out.push(diag(
                        *time,
                        format!(
                            "transfer {xfer}: span disagrees with its group \
                             (rank {}/{rank}, payload {}/{payload})",
                            g.rank, g.payload
                        ),
                    ));
                }
                g.spans.push((*offset, *len));
            }
            AnalysisRecord::StagePlan {
                time,
                rank,
                xfer,
                payload,
                k,
                cap,
                ..
            } => {
                if *k == 0 || *k > *cap {
                    out.push(diag(
                        *time,
                        format!(
                            "transfer {xfer} (rank {rank}): planned k={k} outside \
                             [1, cap={cap}]"
                        ),
                    ));
                }
                let prev = plans.insert(
                    *xfer,
                    Plan {
                        time: *time,
                        rank: *rank,
                        payload: *payload,
                        k: *k,
                    },
                );
                if prev.is_some() {
                    out.push(diag(
                        *time,
                        format!("transfer {xfer} (rank {rank}): planned twice"),
                    ));
                }
            }
            AnalysisRecord::CopyEnd { device, label, .. } => {
                in_flight.remove(&(*device, label.clone()));
            }
            AnalysisRecord::DescGrant {
                gvm,
                rank,
                segment,
                buf,
                generation,
                ..
            } => {
                seg_owner.insert(segment.clone(), (gvm.clone(), *rank));
                grants.insert(
                    (gvm.clone(), *rank),
                    Grant {
                        buf: *buf,
                        generation: *generation,
                        live: true,
                    },
                );
            }
            AnalysisRecord::DescUse {
                time,
                gvm,
                rank,
                buf,
                generation,
                ok,
                // Only *accepted* uses are checked: a NAK'd stale
                // descriptor is the GVM's validation working as designed.
            } if *ok => {
                let current = grants
                    .get(&(gvm.clone(), *rank))
                    .is_some_and(|g| g.live && g.buf == *buf && g.generation == *generation);
                if !current {
                    out.push(diag(
                        *time,
                        format!(
                            "stale descriptor accepted: rank {rank} presented \
                             (buf {buf}, generation {generation}) with no live \
                             matching grant"
                        ),
                    ));
                }
            }
            AnalysisRecord::Proto {
                gvm, rank, kind, ..
            } => match *kind {
                "SND" => {
                    in_window.insert((gvm.clone(), *rank), true);
                }
                "RCV" | "RLS" => {
                    in_window.insert((gvm.clone(), *rank), false);
                }
                _ => {}
            },
            AnalysisRecord::ProtoEvict { gvm, rank, .. } => {
                in_window.insert((gvm.clone(), *rank), false);
            }
            AnalysisRecord::ShmAccess {
                time,
                process,
                segment,
                offset,
                len,
                is_write,
                ..
            } if *is_write => {
                if let Some(owner) = seg_owner.get(segment) {
                    if in_window.get(owner).copied().unwrap_or(false) {
                        out.push(diag(
                            *time,
                            format!(
                                "write-after-SND: process '{process}' wrote {len} \
                                 bytes at offset {offset} of leased segment \
                                 {segment} while rank {}'s input transfer may \
                                 still be reading it",
                                owner.1
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    // End-of-trace sweep: every transfer group must tile its payload.
    let mut ordered: Vec<(&u64, &XferGroup)> = groups.iter().collect();
    ordered.sort_by_key(|(id, _)| **id);
    for (xfer, g) in ordered {
        let dir = if g.h2d { "in" } else { "out" };
        let mut spans = g.spans.clone();
        spans.sort_unstable();
        let mut cursor = 0u64;
        let mut broken = false;
        for &(off, len) in &spans {
            if off != cursor {
                let kind = if off < cursor { "overlap" } else { "gap" };
                out.push(diag(
                    g.time,
                    format!(
                        "transfer {xfer} (rank {}, {dir}): {kind} at byte {} \
                         (span starts at {off})",
                        g.rank,
                        cursor.min(off)
                    ),
                ));
                broken = true;
                break;
            }
            cursor += len;
        }
        if !broken && cursor != g.payload {
            out.push(diag(
                g.time,
                format!(
                    "transfer {xfer} (rank {}, {dir}): spans cover {cursor} of \
                     {} payload bytes",
                    g.rank, g.payload
                ),
            ));
        }
        // Plan conformance: a planned transfer must stage exactly k spans
        // of the planned payload.
        if let Some(p) = plans.get(xfer) {
            if g.spans.len() as u64 != u64::from(p.k) {
                out.push(diag(
                    g.time,
                    format!(
                        "transfer {xfer} (rank {}, {dir}): planned k={} but {} spans \
                         staged",
                        g.rank,
                        p.k,
                        g.spans.len()
                    ),
                ));
            }
            if p.payload != g.payload {
                out.push(diag(
                    g.time,
                    format!(
                        "transfer {xfer} (rank {}, {dir}): planned payload {} but \
                         {} staged",
                        g.rank, p.payload, g.payload
                    ),
                ));
            }
        }
    }
    // Plans whose transfer never staged a single span.
    let mut orphaned: Vec<(&u64, &Plan)> = plans
        .iter()
        .filter(|(xfer, _)| !groups.contains_key(xfer))
        .collect();
    orphaned.sort_by_key(|(id, _)| **id);
    for (xfer, p) in orphaned {
        out.push(diag(
            p.time,
            format!(
                "transfer {xfer} (rank {}): planned (k={}) but no span was ever staged",
                p.rank, p.k
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn acq(ns: u64, buf: u64, bytes: u64) -> AnalysisRecord {
        AnalysisRecord::PoolAcquire {
            time: t(ns),
            buf,
            bytes,
            hit: false,
        }
    }

    fn rec(ns: u64, buf: u64) -> AnalysisRecord {
        AnalysisRecord::PoolRecycle { time: t(ns), buf }
    }

    #[allow(clippy::too_many_arguments)]
    fn chunk(
        ns: u64,
        xfer: u64,
        off: u64,
        len: u64,
        payload: u64,
        buf: u64,
        label: &str,
    ) -> AnalysisRecord {
        AnalysisRecord::StageChunk {
            time: t(ns),
            device: 0,
            rank: 0,
            xfer,
            h2d: true,
            offset: off,
            len,
            payload,
            buf,
            label: label.to_string(),
        }
    }

    fn copye(ns: u64, label: &str) -> AnalysisRecord {
        AnalysisRecord::CopyEnd {
            time: t(ns),
            device: 0,
            engine: 0,
            label: label.to_string(),
        }
    }

    #[test]
    fn clean_chunked_transfer_passes() {
        let recs = vec![
            acq(10, 1, 8192),
            chunk(20, 7, 0, 4096, 8192, 1, "cmd-1"),
            chunk(30, 7, 4096, 4096, 8192, 1, "cmd-2"),
            copye(40, "cmd-1"),
            copye(50, "cmd-2"),
            rec(60, 1),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn gap_in_spans_detected() {
        let recs = vec![
            acq(10, 1, 8192),
            chunk(20, 7, 0, 4096, 8192, 1, ""),
            // bytes 4096..8192 never staged
        ];
        let ds = check(&recs);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert!(ds[0].message.contains("4096 of 8192"));
    }

    #[test]
    fn overlapping_spans_detected() {
        let recs = vec![
            acq(10, 1, 8192),
            chunk(20, 7, 0, 4096, 8192, 1, ""),
            chunk(30, 7, 2048, 4096, 8192, 1, ""),
        ];
        let ds = check(&recs);
        assert!(ds.iter().any(|d| d.message.contains("overlap")), "{ds:?}");
    }

    #[test]
    fn use_after_recycle_detected() {
        let recs = vec![
            acq(10, 3, 4096),
            chunk(20, 7, 0, 4096, 4096, 3, "cmd-9"),
            rec(30, 3), // recycled before cmd-9 completed
            copye(40, "cmd-9"),
        ];
        let ds = check(&recs);
        assert!(
            ds.iter().any(|d| d.message.contains("use-after-recycle")),
            "{ds:?}"
        );
    }

    #[test]
    fn recycle_after_copy_end_is_clean() {
        let recs = vec![
            acq(10, 3, 4096),
            chunk(20, 7, 0, 4096, 4096, 3, "cmd-9"),
            copye(30, "cmd-9"),
            rec(40, 3),
        ];
        assert!(check(&recs).is_empty());
    }

    fn plan(ns: u64, xfer: u64, payload: u64, k: u32, cap: u32) -> AnalysisRecord {
        AnalysisRecord::StagePlan {
            time: t(ns),
            rank: 0,
            xfer,
            payload,
            k,
            cap,
            adaptive: true,
        }
    }

    #[test]
    fn planned_transfer_with_matching_spans_passes() {
        let recs = vec![
            acq(10, 1, 8192),
            plan(15, 7, 8192, 2, 4),
            chunk(20, 7, 0, 4096, 8192, 1, "cmd-1"),
            chunk(30, 7, 4096, 4096, 8192, 1, "cmd-2"),
            copye(40, "cmd-1"),
            copye(50, "cmd-2"),
            rec(60, 1),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn plan_span_count_mismatch_detected() {
        let recs = vec![
            plan(15, 7, 8192, 3, 4),
            chunk(20, 7, 0, 4096, 8192, 0, ""),
            chunk(30, 7, 4096, 4096, 8192, 0, ""),
        ];
        let ds = check(&recs);
        assert!(
            ds.iter()
                .any(|d| d.message.contains("planned k=3 but 2 spans")),
            "{ds:?}"
        );
    }

    #[test]
    fn plan_exceeding_cap_detected() {
        let recs = vec![plan(15, 7, 8192, 9, 4), chunk(20, 7, 0, 8192, 8192, 0, "")];
        let ds = check(&recs);
        assert!(
            ds.iter().any(|d| d.message.contains("outside [1, cap=4]")),
            "{ds:?}"
        );
    }

    #[test]
    fn plan_payload_mismatch_and_orphan_detected() {
        let recs = vec![
            plan(15, 7, 4096, 1, 4),
            chunk(20, 7, 0, 8192, 8192, 0, ""),
            plan(25, 8, 8192, 2, 4), // never staged
        ];
        let ds = check(&recs);
        assert!(
            ds.iter()
                .any(|d| d.message.contains("planned payload 4096 but 8192")),
            "{ds:?}"
        );
        assert!(
            ds.iter()
                .any(|d| d.message.contains("no span was ever staged")),
            "{ds:?}"
        );
    }

    #[test]
    fn duplicate_plan_detected() {
        let recs = vec![
            plan(15, 7, 8192, 1, 4),
            plan(16, 7, 8192, 2, 4),
            chunk(20, 7, 0, 8192, 8192, 0, ""),
        ];
        let ds = check(&recs);
        assert!(
            ds.iter().any(|d| d.message.contains("planned twice")),
            "{ds:?}"
        );
    }

    fn grant(ns: u64, rank: usize, segment: &str, buf: u64, generation: u64) -> AnalysisRecord {
        AnalysisRecord::DescGrant {
            time: t(ns),
            gvm: "gvm".to_string(),
            rank,
            segment: segment.to_string(),
            buf,
            generation,
            len: 4096,
        }
    }

    fn duse(ns: u64, rank: usize, buf: u64, generation: u64, ok: bool) -> AnalysisRecord {
        AnalysisRecord::DescUse {
            time: t(ns),
            gvm: "gvm".to_string(),
            rank,
            buf,
            generation,
            ok,
        }
    }

    fn proto(ns: u64, rank: usize, kind: &'static str) -> AnalysisRecord {
        AnalysisRecord::Proto {
            time: t(ns),
            gvm: "gvm".to_string(),
            rank,
            kind,
            seq: ns,
        }
    }

    fn shm_write(ns: u64, segment: &str, offset: usize, len: usize) -> AnalysisRecord {
        AnalysisRecord::ShmAccess {
            time: t(ns),
            pid: gv_sim::Pid::from_index(1),
            process: "spmd-0".to_string(),
            segment: segment.to_string(),
            offset,
            len,
            is_write: true,
            clock: gv_sim::VClock::from_components(vec![1]),
        }
    }

    #[test]
    fn current_descriptor_use_is_clean() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 1),
            duse(20, 0, 1, 1, true),
            rec(30, 1),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn stale_descriptor_acceptance_detected_exactly_once() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 1),
            rec(20, 1), // lease recycled: generation 1 descriptors are dead
            acq(25, 1, 4096),
            duse(30, 0, 1, 1, true), // GVM accepted the stale descriptor
            rec(40, 1),
        ];
        let ds = check(&recs);
        let stale: Vec<_> = ds
            .iter()
            .filter(|d| d.message.contains("stale descriptor accepted"))
            .collect();
        assert_eq!(stale.len(), 1, "{ds:?}");
        assert!(stale[0].message.contains("rank 0"), "{ds:?}");
    }

    #[test]
    fn rejected_stale_descriptor_is_clean() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 1),
            rec(20, 1),
            duse(30, 0, 1, 1, false), // NAK'd: validation worked
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn wrong_generation_acceptance_detected() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 2),
            duse(20, 0, 1, 1, true), // older generation than the grant
            rec(30, 1),
        ];
        let ds = check(&recs);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert!(ds[0].message.contains("stale descriptor accepted"));
    }

    #[test]
    fn write_after_snd_detected_exactly_once() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 1),
            shm_write(20, "/gvm-shm-0", 0, 4096), // client stages input: fine
            proto(25, 0, "SND"),
            shm_write(30, "/gvm-shm-0", 0, 64), // racing the device's H2D read
            proto(40, 0, "RCV"),
            rec(50, 1),
        ];
        let ds = check(&recs);
        let races: Vec<_> = ds
            .iter()
            .filter(|d| d.message.contains("write-after-SND"))
            .collect();
        assert_eq!(races.len(), 1, "{ds:?}");
        assert!(races[0].message.contains("/gvm-shm-0"), "{ds:?}");
    }

    #[test]
    fn writes_outside_the_snd_window_are_clean() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 1),
            shm_write(20, "/gvm-shm-0", 0, 4096), // before SND
            proto(25, 0, "SND"),
            proto(35, 0, "RCV"),
            shm_write(40, "/gvm-shm-0", 0, 64), // after RCV
            shm_write(45, "/other-seg", 0, 64), // un-granted segment
            rec(50, 1),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn eviction_closes_the_snd_window() {
        let recs = vec![
            acq(10, 1, 4096),
            grant(15, 0, "/gvm-shm-0", 1, 1),
            proto(25, 0, "SND"),
            AnalysisRecord::ProtoEvict {
                time: t(30),
                gvm: "gvm".to_string(),
                rank: 0,
            },
            shm_write(35, "/gvm-shm-0", 0, 64),
            rec(40, 1),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn lease_discipline_violations_detected() {
        let recs = vec![
            acq(10, 1, 4096),
            acq(20, 1, 4096),                   // double acquire
            rec(30, 2),                         // recycle of unleased buf
            chunk(40, 7, 0, 4096, 4096, 9, ""), // staged outside any lease
        ];
        let ds = check(&recs);
        assert!(ds.iter().any(|d| d.message.contains("already leased")));
        assert!(ds
            .iter()
            .any(|d| d.message.contains("without a live lease")));
        assert!(ds.iter().any(|d| d.message.contains("outside its lease")));
    }
}

//! Session-termination liveness over completed runs.
//!
//! A schedule that merely *finishes* can still be wrong: a VGPU session the
//! GVM admitted with a `REQ` but never released holds its shared-memory
//! segment and device bookkeeping forever. This checker verifies that on a
//! run the engine marked complete (a `RunEnd` record with `completed=1`):
//!
//! * every `(gvm, rank)` that sent a `REQ` is closed by an `RLS` receipt or
//!   an eviction (`ProtoEvict`), and
//! * every cluster placement (`ClusterPlace`) is balanced by a
//!   `ClusterEvict`.
//!
//! Traces without a `RunEnd` marker — older dumps, or runs cut short by a
//! horizon or fault — are skipped entirely: partial traces legitimately
//! contain open sessions and must not produce noise.

use std::collections::HashMap;

use gv_sim::{AnalysisRecord, SimTime};

use crate::Diagnostic;

/// Check that every admitted session terminated, on completed runs only.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();

    let Some((end_time, completed)) = records.iter().rev().find_map(|r| match r {
        AnalysisRecord::RunEnd {
            time, completed, ..
        } => Some((*time, *completed)),
        _ => None,
    }) else {
        return diagnostics;
    };
    if !completed {
        return diagnostics;
    }

    // (gvm, rank) → time of the REQ that opened the still-open session.
    let mut open: HashMap<(String, usize), SimTime> = HashMap::new();
    // vgpu id → time of its still-live placement.
    let mut placed: HashMap<u64, SimTime> = HashMap::new();

    for rec in records {
        match rec {
            AnalysisRecord::Proto {
                time,
                gvm,
                rank,
                kind,
                ..
            } => match *kind {
                "REQ" => {
                    open.entry((gvm.clone(), *rank)).or_insert(*time);
                }
                "RLS" => {
                    open.remove(&(gvm.clone(), *rank));
                }
                _ => {}
            },
            AnalysisRecord::ProtoEvict { gvm, rank, .. } => {
                open.remove(&(gvm.clone(), *rank));
            }
            AnalysisRecord::ClusterPlace { time, vgpu, .. } => {
                placed.insert(*vgpu, *time);
            }
            AnalysisRecord::ClusterEvict { vgpu, .. } => {
                placed.remove(vgpu);
            }
            _ => {}
        }
    }

    let mut leaked: Vec<_> = open.into_iter().collect();
    leaked.sort();
    for ((gvm, rank), opened) in leaked {
        diagnostics.push(Diagnostic {
            checker: "liveness",
            time: end_time,
            message: format!(
                "run completed but rank {rank} of gvm '{gvm}' never terminated its \
                 session (REQ at t={:.6}ms with no RLS or eviction)",
                opened.as_millis_f64()
            ),
        });
    }
    let mut stuck: Vec<_> = placed.into_iter().collect();
    stuck.sort();
    for (vgpu, at) in stuck {
        diagnostics.push(Diagnostic {
            checker: "liveness",
            time: end_time,
            message: format!(
                "run completed but vgpu {vgpu} is still resident (placed at \
                 t={:.6}ms with no evict)",
                at.as_millis_f64()
            ),
        });
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto(t: u64, rank: usize, kind: &'static str) -> AnalysisRecord {
        AnalysisRecord::Proto {
            time: SimTime::from_nanos(t),
            gvm: "gvm".to_string(),
            rank,
            kind,
            seq: 1,
        }
    }

    fn run_end(completed: bool) -> AnalysisRecord {
        AnalysisRecord::RunEnd {
            time: SimTime::from_nanos(1000),
            completed,
            deadlocked: !completed,
        }
    }

    #[test]
    fn closed_sessions_pass() {
        let recs = vec![
            proto(1, 0, "REQ"),
            proto(2, 1, "REQ"),
            proto(10, 0, "RLS"),
            AnalysisRecord::ProtoEvict {
                time: SimTime::from_nanos(11),
                gvm: "gvm".to_string(),
                rank: 1,
            },
            run_end(true),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn leaked_session_on_completed_run_is_flagged() {
        let recs = vec![proto(1, 0, "REQ"), run_end(true)];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].checker, "liveness");
        assert!(d[0].message.contains("rank 0"));
    }

    #[test]
    fn partial_trace_without_run_end_is_skipped() {
        let recs = vec![proto(1, 0, "REQ")];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn incomplete_run_is_skipped() {
        // A deadlocked run is the deadlock checker's problem; open sessions
        // there are a symptom, not a second finding.
        let recs = vec![proto(1, 0, "REQ"), run_end(false)];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn unbalanced_placement_is_flagged() {
        let recs = vec![
            AnalysisRecord::ClusterPlace {
                time: SimTime::from_nanos(5),
                vgpu: 7,
                tenant: 0,
                gang: None,
                device: 0,
                wave: 0,
                mem_bytes: 64,
            },
            run_end(true),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("vgpu 7"));
    }
}

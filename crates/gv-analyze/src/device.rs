//! Device-invariant checking over GPU engine and memory events.
//!
//! The device scheduler emits begin/end records for every DMA transfer and
//! kernel, plus alloc/free records from the driver layer. This checker
//! verifies the hardware model's invariants held over the whole trace:
//!
//! * **Copy-engine exclusivity** — each (device, engine) pair serves one
//!   transfer at a time (engine 0 = H2D, engine 1 = dedicated D2H; devices
//!   with a unified copy engine fold everything onto engine 0).
//! * **Kernel window** — the number of concurrently-resident kernels never
//!   exceeds the device's `max_concurrent_kernels` cap.
//! * **Span pairing** — every begin has a matching end and the trace ends
//!   with nothing in flight.
//! * **Allocation balance** — every allocation id is freed exactly once
//!   and the trace ends with zero live bytes per device.

use std::collections::HashMap;

use gv_sim::{AnalysisRecord, SimTime};

use crate::Diagnostic;

#[derive(Default)]
struct DeviceLint {
    max_kernels: Option<u32>,
    /// Active transfer label per engine index.
    engines: HashMap<u8, Vec<(String, SimTime)>>,
    /// Active kernel labels.
    kernels: Vec<(String, SimTime)>,
    /// Live allocation id → bytes.
    live: HashMap<u64, u64>,
}

/// Replay all device records and report every invariant violation.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut devices: HashMap<u32, DeviceLint> = HashMap::new();
    let diag = |diagnostics: &mut Vec<Diagnostic>, time: SimTime, message: String| {
        diagnostics.push(Diagnostic {
            checker: "device",
            time,
            message,
        });
    };

    for rec in records {
        match rec {
            AnalysisRecord::DeviceRegistered {
                device,
                max_concurrent_kernels,
            } => {
                devices.entry(*device).or_default().max_kernels = Some(*max_concurrent_kernels);
            }
            AnalysisRecord::CopyBegin {
                time,
                device,
                engine,
                label,
            } => {
                let active = devices
                    .entry(*device)
                    .or_default()
                    .engines
                    .entry(*engine)
                    .or_default();
                if let Some((other, since)) = active.first() {
                    diag(
                        &mut diagnostics,
                        *time,
                        format!(
                            "device {device} engine {engine}: transfer '{label}' started while \
                             '{other}' (running since {:.6}ms) still occupies the engine",
                            since.as_millis_f64()
                        ),
                    );
                }
                active.push((label.clone(), *time));
            }
            AnalysisRecord::CopyEnd {
                time,
                device,
                engine,
                label,
            } => {
                let active = devices
                    .entry(*device)
                    .or_default()
                    .engines
                    .entry(*engine)
                    .or_default();
                match active.iter().position(|(l, _)| l == label) {
                    Some(i) => {
                        active.remove(i);
                    }
                    None => diag(
                        &mut diagnostics,
                        *time,
                        format!(
                            "device {device} engine {engine}: completion of '{label}' without a \
                             matching start"
                        ),
                    ),
                }
            }
            AnalysisRecord::KernelBegin {
                time,
                device,
                label,
            } => {
                let lint = devices.entry(*device).or_default();
                if let Some(cap) = lint.max_kernels {
                    if lint.kernels.len() >= cap as usize {
                        diag(
                            &mut diagnostics,
                            *time,
                            format!(
                                "device {device}: kernel '{label}' admitted with {} kernels \
                                 already resident (cap {cap})",
                                lint.kernels.len()
                            ),
                        );
                    }
                }
                lint.kernels.push((label.clone(), *time));
            }
            AnalysisRecord::KernelEnd {
                time,
                device,
                label,
            } => {
                let lint = devices.entry(*device).or_default();
                match lint.kernels.iter().position(|(l, _)| l == label) {
                    Some(i) => {
                        lint.kernels.remove(i);
                    }
                    None => diag(
                        &mut diagnostics,
                        *time,
                        format!(
                            "device {device}: completion of kernel '{label}' without a matching \
                             launch"
                        ),
                    ),
                }
            }
            AnalysisRecord::Alloc {
                time,
                device,
                id,
                bytes,
            } => {
                let lint = devices.entry(*device).or_default();
                if lint.live.insert(*id, *bytes).is_some() {
                    diag(
                        &mut diagnostics,
                        *time,
                        format!("device {device}: allocation id {id} allocated while still live"),
                    );
                }
            }
            AnalysisRecord::Free { time, device, id } => {
                let lint = devices.entry(*device).or_default();
                if lint.live.remove(id).is_none() {
                    diag(
                        &mut diagnostics,
                        *time,
                        format!("device {device}: free of id {id} which is not live"),
                    );
                }
            }
            _ => {}
        }
    }

    // End-of-trace: nothing may still be in flight or allocated.
    let mut devs: Vec<_> = devices.iter().collect();
    devs.sort_by_key(|(d, _)| **d);
    for (device, lint) in devs {
        let mut engines: Vec<_> = lint.engines.iter().collect();
        engines.sort_by_key(|(e, _)| **e);
        for (engine, active) in engines {
            for (label, since) in active {
                diag(
                    &mut diagnostics,
                    *since,
                    format!("device {device} engine {engine}: transfer '{label}' never completed"),
                );
            }
        }
        for (label, since) in &lint.kernels {
            diag(
                &mut diagnostics,
                *since,
                format!("device {device}: kernel '{label}' never completed"),
            );
        }
        if !lint.live.is_empty() {
            let mut ids: Vec<_> = lint.live.iter().map(|(id, b)| (*id, *b)).collect();
            ids.sort_unstable();
            let bytes: u64 = ids.iter().map(|(_, b)| b).sum();
            diag(
                &mut diagnostics,
                SimTime::ZERO,
                format!(
                    "device {device}: {} allocation(s) never freed ({bytes} bytes leaked; \
                     ids {:?})",
                    ids.len(),
                    ids.iter().map(|(id, _)| *id).collect::<Vec<_>>()
                ),
            );
        }
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(device: u32, cap: u32) -> AnalysisRecord {
        AnalysisRecord::DeviceRegistered {
            device,
            max_concurrent_kernels: cap,
        }
    }

    fn copyb(t: u64, engine: u8, label: &str) -> AnalysisRecord {
        AnalysisRecord::CopyBegin {
            time: SimTime::from_nanos(t),
            device: 0,
            engine,
            label: label.to_string(),
        }
    }

    fn copye(t: u64, engine: u8, label: &str) -> AnalysisRecord {
        AnalysisRecord::CopyEnd {
            time: SimTime::from_nanos(t),
            device: 0,
            engine,
            label: label.to_string(),
        }
    }

    fn kernb(t: u64, label: &str) -> AnalysisRecord {
        AnalysisRecord::KernelBegin {
            time: SimTime::from_nanos(t),
            device: 0,
            label: label.to_string(),
        }
    }

    fn kerne(t: u64, label: &str) -> AnalysisRecord {
        AnalysisRecord::KernelEnd {
            time: SimTime::from_nanos(t),
            device: 0,
            label: label.to_string(),
        }
    }

    #[test]
    fn serialized_copies_pass() {
        let recs = vec![
            reg(0, 4),
            copyb(1, 0, "cmd-1"),
            copye(2, 0, "cmd-1"),
            copyb(3, 0, "cmd-2"),
            copye(4, 0, "cmd-2"),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn opposite_engines_overlap_legally() {
        let recs = vec![
            reg(0, 4),
            copyb(1, 0, "cmd-1"),
            copyb(2, 1, "cmd-2"),
            copye(3, 0, "cmd-1"),
            copye(4, 1, "cmd-2"),
        ];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn same_engine_overlap_flagged() {
        let recs = vec![
            reg(0, 4),
            copyb(1, 0, "cmd-1"),
            copyb(2, 0, "cmd-2"),
            copye(3, 0, "cmd-1"),
            copye(4, 0, "cmd-2"),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message.contains("'cmd-2' started while 'cmd-1'"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn kernel_cap_exceeded_flagged() {
        let recs = vec![
            reg(0, 2),
            kernb(1, "k-1"),
            kernb(2, "k-2"),
            kernb(3, "k-3"),
            kerne(4, "k-1"),
            kerne(5, "k-2"),
            kerne(6, "k-3"),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message.contains("'k-3' admitted with 2 kernels"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn unterminated_transfer_flagged() {
        let recs = vec![reg(0, 4), copyb(1, 0, "cmd-1")];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("never completed"));
    }

    #[test]
    fn alloc_free_balance_checked() {
        let recs = vec![
            reg(0, 4),
            AnalysisRecord::Alloc {
                time: SimTime::from_nanos(1),
                device: 0,
                id: 1,
                bytes: 256,
            },
            AnalysisRecord::Alloc {
                time: SimTime::from_nanos(2),
                device: 0,
                id: 2,
                bytes: 512,
            },
            AnalysisRecord::Free {
                time: SimTime::from_nanos(3),
                device: 0,
                id: 1,
            },
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message
                .contains("1 allocation(s) never freed (512 bytes leaked"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn double_free_flagged() {
        let recs = vec![
            AnalysisRecord::Alloc {
                time: SimTime::from_nanos(1),
                device: 0,
                id: 1,
                bytes: 64,
            },
            AnalysisRecord::Free {
                time: SimTime::from_nanos(2),
                device: 0,
                id: 1,
            },
            AnalysisRecord::Free {
                time: SimTime::from_nanos(3),
                device: 0,
                id: 1,
            },
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("free of id 1 which is not live"));
    }
}

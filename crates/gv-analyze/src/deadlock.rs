//! Deadlock and lost-wakeup detection over engine termination records.
//!
//! When the engine dies with every live process parked it emits one
//! `DeadlockWaiter` per blocked process (wait kind, resource, holders) and a
//! single `Deadlock` record carrying the wait-for cycle it found. Sync
//! primitives additionally emit `NotifyLost` whenever a `notify_one` finds
//! no waiter — harmless on its own, but the classic *lost wakeup* signature
//! when a process later deadlocks waiting on that same condition queue.
//!
//! The checker therefore emits:
//!
//! * **`lost-wakeup`** — a deadlocked `cond-wait` waiter whose resource saw
//!   an earlier dropped notification. This *subsumes* the plain deadlock
//!   finding for that trace: the root cause is the dropped notify, so the
//!   trace yields exactly one diagnostic, not two.
//! * **`deadlock`** — any other deadlock, with every blocked process's wait
//!   cause and (when one exists) the wait-for cycle rendered with process
//!   names.

use std::collections::HashMap;

use gv_sim::{AnalysisRecord, Pid, SimTime, WaitKind};

use crate::Diagnostic;

struct Waiter {
    pid: Pid,
    process: String,
    kind: WaitKind,
    resource: String,
    holders: Vec<Pid>,
}

/// Scan `records` for deadlock / lost-wakeup signatures.
pub fn check(records: &[AnalysisRecord]) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let mut lost: Vec<(SimTime, &str)> = Vec::new();
    let mut waiters: Vec<Waiter> = Vec::new();
    let mut deadlock: Option<(SimTime, &[Pid])> = None;

    for rec in records {
        match rec {
            AnalysisRecord::NotifyLost { time, resource } => lost.push((*time, resource)),
            AnalysisRecord::DeadlockWaiter {
                pid,
                process,
                kind,
                resource,
                holders,
                ..
            } => waiters.push(Waiter {
                pid: *pid,
                process: process.clone(),
                kind: *kind,
                resource: resource.clone(),
                holders: holders.clone(),
            }),
            AnalysisRecord::Deadlock { time, cycle } => deadlock = Some((*time, cycle)),
            _ => {}
        }
    }

    let Some((time, cycle)) = deadlock else {
        return diagnostics;
    };
    let names: HashMap<Pid, &str> = waiters
        .iter()
        .map(|w| (w.pid, w.process.as_str()))
        .collect();
    let name_of = |pid: Pid| -> String {
        names
            .get(&pid)
            .map_or_else(|| format!("pid-{}", pid.index()), |n| (*n).to_string())
    };

    // Lost wakeup: a deadlocked cond-waiter whose queue dropped a notify
    // before the deadlock. Root-cause finding; subsumes the generic one.
    let mut found_lost_wakeup = false;
    for w in &waiters {
        if w.kind != WaitKind::CondWait {
            continue;
        }
        if let Some((drop_t, _)) = lost
            .iter()
            .find(|(t, res)| *t <= time && *res == w.resource)
        {
            found_lost_wakeup = true;
            diagnostics.push(Diagnostic {
                checker: "lost-wakeup",
                time,
                message: format!(
                    "process '{}' deadlocked in cond-wait on '{}' after a notify_one \
                     on the same queue found no waiter at t={:.6}ms (wakeup lost)",
                    w.process,
                    w.resource,
                    drop_t.as_millis_f64()
                ),
            });
        }
    }
    if found_lost_wakeup {
        return diagnostics;
    }

    let mut blocked = waiters
        .iter()
        .map(|w| {
            let holders = if w.holders.is_empty() {
                String::new()
            } else {
                format!(
                    " (peers: {})",
                    w.holders
                        .iter()
                        .map(|p| name_of(*p))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            format!(
                "{}: {} on '{}'{}",
                w.process,
                w.kind.label(),
                w.resource,
                holders
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    if !cycle.is_empty() {
        blocked.push_str(&format!(
            "; wait-for cycle: {}",
            cycle
                .iter()
                .map(|p| name_of(*p))
                .collect::<Vec<_>>()
                .join(" -> ")
        ));
    }
    diagnostics.push(Diagnostic {
        checker: "deadlock",
        time,
        message: format!("{} process(es) blocked forever: {blocked}", waiters.len()),
    });
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiter(
        pid: usize,
        process: &str,
        kind: WaitKind,
        res: &str,
        holders: &[usize],
    ) -> AnalysisRecord {
        AnalysisRecord::DeadlockWaiter {
            time: SimTime::from_nanos(100),
            pid: Pid::from_index(pid),
            process: process.to_string(),
            kind,
            resource: res.to_string(),
            holders: holders.iter().map(|i| Pid::from_index(*i)).collect(),
        }
    }

    fn dlock(cycle: &[usize]) -> AnalysisRecord {
        AnalysisRecord::Deadlock {
            time: SimTime::from_nanos(100),
            cycle: cycle.iter().map(|i| Pid::from_index(*i)).collect(),
        }
    }

    #[test]
    fn no_deadlock_record_means_clean() {
        // A dropped notify alone is not a bug.
        let recs = vec![AnalysisRecord::NotifyLost {
            time: SimTime::from_nanos(5),
            resource: "cq".to_string(),
        }];
        assert!(check(&recs).is_empty());
    }

    #[test]
    fn cyclic_deadlock_names_the_cycle() {
        let recs = vec![
            waiter(1, "a", WaitKind::Recv, "/q-ab", &[2]),
            waiter(2, "b", WaitKind::Recv, "/q-ba", &[1]),
            dlock(&[1, 2, 1]),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].checker, "deadlock");
        assert!(d[0].message.contains("a -> b -> a"), "{}", d[0].message);
        assert!(d[0].message.contains("recv on '/q-ab'"));
    }

    #[test]
    fn lost_wakeup_subsumes_deadlock() {
        let recs = vec![
            AnalysisRecord::NotifyLost {
                time: SimTime::from_nanos(50),
                resource: "ready".to_string(),
            },
            waiter(1, "worker", WaitKind::CondWait, "ready", &[]),
            dlock(&[]),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].checker, "lost-wakeup");
        assert!(d[0].message.contains("ready"));
    }

    #[test]
    fn cond_deadlock_without_dropped_notify_stays_deadlock() {
        let recs = vec![
            AnalysisRecord::NotifyLost {
                time: SimTime::from_nanos(50),
                resource: "other-queue".to_string(),
            },
            waiter(1, "worker", WaitKind::CondWait, "ready", &[]),
            dlock(&[]),
        ];
        let d = check(&recs);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].checker, "deadlock");
    }
}

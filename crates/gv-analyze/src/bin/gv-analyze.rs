//! Standalone trace checker and schedule replayer.
//!
//! ```text
//! gv-analyze [--format text|json] <trace.gvtrace> [...]
//! gv-analyze [--format text|json] --replay <schedule.gvsched> [...]
//! ```
//!
//! The default mode reads dump files produced by the harness (`--analyze
//! --dump-trace`, see `repro_all`) or by [`gv_analyze::model::to_dump`],
//! runs every checker, and prints one line per diagnostic. `--replay`
//! re-executes a `.gvsched` schedule file (scenario + choice vector, as
//! written by the explorer for a shrunk counterexample) through the live
//! simulator and checks the resulting trace; if the file carries an
//! `expect <checker>` line, the replay must reproduce that diagnostic.
//! `--format json` emits one JSON array of findings instead of text.
//! Exit codes: 0 = all inputs clean (or all expectations met), 1 =
//! diagnostics found (or an expectation missed), 2 = usage or parse error.

use std::process::ExitCode;

use gv_analyze::explore::Schedule;
use gv_analyze::Diagnostic;
use gv_sim::SimDuration;

fn usage() -> ExitCode {
    eprintln!("usage: gv-analyze [--format text|json] <trace.gvtrace> [more traces...]");
    eprintln!("       gv-analyze [--format text|json] --replay <schedule.gvsched> [...]");
    eprintln!("checks dumped GVM analysis traces for data races, protocol");
    eprintln!("violations, device-invariant breaches, deadlocks, and liveness;");
    eprintln!("--replay re-executes an explorer counterexample schedule");
    ExitCode::from(2)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_finding(source: &str, d: &Diagnostic) -> String {
    format!(
        "{{\"checker\":\"{}\",\"severity\":\"error\",\"time_ms\":{:.6},\"source\":\"{}\",\"message\":\"{}\"}}",
        json_escape(d.checker),
        d.time.as_millis_f64(),
        json_escape(source),
        json_escape(&d.message)
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut replay = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return usage(),
            "--replay" => replay = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--format=json" => json = true,
            "--format=text" => json = false,
            other if other.starts_with('-') => return usage(),
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let mut findings: Vec<String> = Vec::new();
    let mut dirty = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        let diagnostics = if replay {
            let sched = match Schedule::decode(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let result = match sched.replay(SimDuration::from_secs(10)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match (&sched.expect, result.expected_hit) {
                (Some(checker), Some(true)) => {
                    if !json {
                        println!(
                            "{path}: replay of '{}' reproduced the expected '{checker}' diagnostic",
                            sched.scenario
                        );
                    }
                    // The failure is the *expected* outcome: exit clean.
                    for d in &result.diagnostics {
                        if !json {
                            println!("  {d}");
                        }
                        findings.push(json_finding(path, d));
                    }
                    continue;
                }
                (Some(checker), _) => {
                    if !json {
                        println!(
                            "{path}: replay of '{}' did NOT reproduce the expected '{checker}' \
                             diagnostic",
                            sched.scenario
                        );
                    }
                    dirty = true;
                    continue;
                }
                (None, _) => {
                    if !json {
                        println!(
                            "{path}: replay of '{}' with {} scripted choice(s): {} diagnostic(s)",
                            sched.scenario,
                            sched.choices.len(),
                            result.diagnostics.len()
                        );
                    }
                    result.diagnostics
                }
            }
        } else {
            let records = match gv_analyze::model::parse_dump(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let report = gv_analyze::analyze(&records);
            if !json {
                println!("{path}: {}", report.summary());
            }
            report.diagnostics
        };
        for d in &diagnostics {
            if !json {
                println!("  {d}");
            }
            findings.push(json_finding(path, d));
        }
        dirty |= !diagnostics.is_empty();
    }
    if json {
        println!("[{}]", findings.join(","));
    }
    if dirty {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

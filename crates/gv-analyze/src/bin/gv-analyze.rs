//! Standalone trace checker: `gv-analyze <trace.gvtrace> [...]`.
//!
//! Reads dump files produced by the harness (`--analyze --dump-trace`, see
//! `repro_all`) or by [`gv_analyze::model::to_dump`], runs every checker,
//! and prints one line per diagnostic. Exit codes: 0 = all traces clean,
//! 1 = diagnostics found, 2 = usage or parse error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "-h" || p == "--help") {
        eprintln!("usage: gv-analyze <trace.gvtrace> [more traces...]");
        eprintln!("checks dumped GVM analysis traces for data races, protocol");
        eprintln!("violations, and device-invariant breaches");
        return ExitCode::from(2);
    }

    let mut dirty = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        let records = match gv_analyze::model::parse_dump(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = gv_analyze::analyze(&records);
        println!("{path}: {}", report.summary());
        for d in &report.diagnostics {
            println!("  {d}");
        }
        dirty |= !report.is_clean();
    }
    if dirty {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

//! Systematic schedule exploration (DPOR-lite model checking) over the
//! deterministic simulator.
//!
//! The engine consults a [`SchedOracle`](gv_sim::SchedOracle) at every point where more than one
//! continuation is possible (a run queue with ≥2 ready processes, a timer
//! tie). A schedule is therefore fully determined by its *choice vector* —
//! the sequence of candidate indices the oracle returned — and index `0`
//! always reproduces the engine's historical FIFO/arm-order behavior. The
//! explorer drives a scenario through many choice vectors and runs the full
//! checker suite over every resulting trace:
//!
//! * **DFS mode** — loom/shuttle-style stateless search: run the baseline
//!   (all zeros), then branch at every decision whose alternatives fit the
//!   *preemption bound* (number of non-default choices per schedule). A
//!   sleep-set-style reduction keyed on the engine's vector clocks prunes
//!   alternatives that provably commute with the step taken: if candidate
//!   `p` reappears at the next decision with an unchanged clock, the chosen
//!   step neither woke, blocked, nor synchronized with `p`, so running `p`
//!   first reaches the same state the later branch will explore anyway.
//! * **Random mode** — seeded random walks (the same xorshift64* generator
//!   as [`RandomOracle`](gv_sim::RandomOracle)) as a fallback for state
//!   spaces too wide to enumerate.
//!
//! Distinct behaviors are counted by fingerprinting each run's analysis
//! trace, so two choice vectors that collapse to the same execution count
//! once. On the first failing schedule the explorer greedily *shrinks* the
//! choice vector — re-running with each non-default choice reverted — to a
//! minimal counterexample that still trips the same checker, and packages
//! it as a replayable `.gvsched` file (see [`Schedule`]).

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use gv_cuda::CudaDevice;
use gv_gpu::{DeviceConfig, GpuDevice};
use gv_ipc::{Node, NodeConfig};
use gv_kernels::vecadd;
use gv_sim::{
    AnalysisRecord, Decision, SchedOracle, ScriptOracle, SimDuration, SimError, SimTime,
    Simulation, Summary,
};
use gv_virt::fault::{FaultPlan, FaultSpec, QueueSel};
use gv_virt::{ClientPolicy, Gvm, GvmConfig, VgpuClient};

use crate::{analyze, Diagnostic};

/// One execution of a scenario under a scripted schedule.
pub struct ExploredRun {
    /// Analysis records the run produced.
    pub records: Vec<AnalysisRecord>,
    /// Run statistics when the engine returned normally.
    pub summary: Option<Summary>,
    /// The engine error when it did not (deadlock, process panic).
    pub error: Option<SimError>,
    /// Every scheduling decision taken, including candidates and clocks.
    pub decisions: Vec<Decision>,
}

impl ExploredRun {
    /// The full diagnostic set for this run: the seven trace checkers plus
    /// two synthetic findings only the explorer can produce — a process
    /// panic under a legal reordering (`panic`) and a run that outlived the
    /// exploration horizon (`horizon`).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut diags = analyze(&self.records).diagnostics;
        let end = self
            .summary
            .as_ref()
            .map_or_else(|| SimTime::from_nanos(0), |s| s.end_time);
        match &self.error {
            Some(SimError::ProcessPanicked { name, message }) => diags.push(Diagnostic {
                checker: "panic",
                time: end,
                message: format!("process '{name}' panicked under this schedule: {message}"),
            }),
            Some(SimError::Deadlock { .. }) | None => {}
        }
        if self.error.is_none() && self.summary.as_ref().is_some_and(|s| !s.completed) {
            diags.push(Diagnostic {
                checker: "horizon",
                time: end,
                message: "schedule did not terminate within the exploration horizon".to_string(),
            });
        }
        diags
    }
}

/// A scenario the explorer knows how to run under an arbitrary schedule.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Stable name used in `.gvsched` files and on the command line.
    pub name: &'static str,
    /// One-line description for listings.
    pub about: &'static str,
    runner: fn(&[u32], SimDuration) -> ExploredRun,
}

impl Scenario {
    /// Run this scenario under `choices` with a termination `horizon`.
    pub fn run(&self, choices: &[u32], horizon: SimDuration) -> ExploredRun {
        (self.runner)(choices, horizon)
    }
}

/// Every scenario in the catalog (the seeded-bug scenario only with the
/// `seeded-bug` feature).
pub fn scenarios() -> Vec<Scenario> {
    #[allow(unused_mut)]
    let mut all = vec![
        Scenario {
            name: "vecadd2",
            about: "2-rank functional vecadd through the GVM, fault-free",
            runner: |c, h| vecadd_run(2, 64, c, h, false),
        },
        Scenario {
            name: "vecadd3",
            about: "3-rank functional vecadd through the GVM, fault-free",
            runner: |c, h| vecadd_run(3, 48, c, h, false),
        },
        Scenario {
            name: "vecadd2-faulty",
            about: "2-rank vecadd with a dropped request and client retries",
            runner: |c, h| vecadd_run(2, 64, c, h, true),
        },
    ];
    all.push(Scenario {
        name: "quota-pressure",
        about: "4 staggered quota'd ranks oversubscribing a tiny device with demand-swap",
        runner: quota_pressure_run,
    });
    #[cfg(feature = "seeded-bug")]
    all.push(Scenario {
        name: "bug-lost-wakeup",
        about: "deliberately stale flag check racing a notify (test-only)",
        runner: bug_lost_wakeup_run,
    });
    all
}

/// Look up a scenario by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// Run `build`'s simulation under the scripted schedule `choices`.
///
/// This is the generic harness the catalog runners use; it is public so
/// tests can explore ad-hoc simulations without registering a scenario.
pub fn run_scripted(
    choices: &[u32],
    horizon: SimDuration,
    build: impl FnOnce(&mut Simulation),
) -> ExploredRun {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let oracle = ScriptOracle::replay(choices.to_vec());
    let log = oracle.log();
    sim.set_oracle(oracle.into_handle());
    build(&mut sim);
    let tracer = sim.tracer();
    let result = sim.run_until(SimTime::from_nanos(0) + horizon);
    let (summary, error) = match result {
        Ok(s) => (Some(s), None),
        Err(e) => (None, Some(e)),
    };
    ExploredRun {
        records: tracer.analysis_snapshot(),
        summary,
        error,
        decisions: log.snapshot(),
    }
}

fn vecadd_run(
    nranks: usize,
    elems: usize,
    choices: &[u32],
    horizon: SimDuration,
    faulty: bool,
) -> ExploredRun {
    run_scripted(choices, horizon, |sim| {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let device = GpuDevice::install(sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());

        let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..nranks)
            .map(|r| {
                let a: Vec<f32> = (0..elems).map(|i| (i + r * 1000) as f32).collect();
                let b: Vec<f32> = (0..elems).map(|i| (i * 2) as f32).collect();
                (a, b)
            })
            .collect();
        let tasks: Vec<_> = inputs
            .iter()
            .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
            .collect();

        let config = if faulty {
            GvmConfig::fault_tolerant(nranks)
        } else {
            GvmConfig::new(nranks)
        };
        let handle = Gvm::install(sim, &node, &cuda, config, tasks);
        if faulty {
            // Drop the first request-queue send: the client's timeout and
            // retry path must converge under any legal interleaving.
            FaultPlan::new(0)
                .push(FaultSpec::MqDrop {
                    queue: QueueSel::Request,
                    nth: 0,
                })
                .install(&handle, &device);
        }
        for rank in 0..nranks {
            let handle = handle.clone();
            let inputs = inputs.clone();
            node.spawn_pinned(sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let (a, b) = &inputs[rank];
                if faulty {
                    let client = VgpuClient::connect_with_policy(
                        ctx,
                        &handle,
                        rank,
                        ClientPolicy::with_timeout(SimDuration::from_millis(10), 8),
                    );
                    if let Ok((_run, out)) = client.try_run_task(ctx) {
                        let got = vecadd::decode_output(&out.expect("functional output"));
                        assert_eq!(got, vecadd::reference(a, b), "rank {rank} output wrong");
                    }
                } else {
                    let client = VgpuClient::connect(ctx, &handle, rank);
                    let (_run, out) = client.run_task(ctx);
                    let got = vecadd::decode_output(&out.expect("functional output"));
                    assert_eq!(got, vecadd::reference(a, b), "rank {rank} output wrong");
                }
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
    })
}

/// Quota-pressure scenario: four staggered quota'd ranks share a device
/// deliberately sized at ~1.5 working sets, with demand-swap on and FCFS
/// dispatch. Rank 0 seeds a parked working set; ranks 1 and 2 wake at the
/// same instant and race for the leftover memory — whichever is served
/// first demand-swaps rank 0's parked set out and wins, the other takes a
/// clean OOM NAK (there is nothing idle left to evict); rank 3 arrives
/// last and swap-*ins* rank 0's shape. Every interleaving must stay
/// deadlock-free — a swap-in must never wait on admission backpressure —
/// and every trace must satisfy the quota checker.
fn quota_pressure_run(choices: &[u32], horizon: SimDuration) -> ExploredRun {
    use gv_virt::{MemQuota, SchedPolicy};
    run_scripted(choices, horizon, |sim| {
        let elems = [48usize, 40, 40, 48];
        let mut cfg = DeviceConfig::tesla_c2070_paper();
        // vecadd's device working set is 12 bytes/element: size the device
        // at the largest set plus half the smallest so no two fit at once.
        let sets: Vec<u64> = elems.iter().map(|&n| 12 * n as u64).collect();
        cfg.global_mem_bytes =
            sets.iter().copied().max().unwrap() + sets.iter().copied().min().unwrap() / 2;
        let device = GpuDevice::install(sim, cfg.clone());
        let cuda = CudaDevice::new(device.clone());
        let node = Node::new(NodeConfig::dual_xeon_x5560());

        let inputs: Vec<(Vec<f32>, Vec<f32>)> = elems
            .iter()
            .enumerate()
            .map(|(r, &n)| {
                let a: Vec<f32> = (0..n).map(|i| (i + r * 1000) as f32).collect();
                let b: Vec<f32> = (0..n).map(|i| (i * 3) as f32).collect();
                (a, b)
            })
            .collect();
        let tasks: Vec<_> = inputs
            .iter()
            .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
            .collect();
        let quotas: Vec<MemQuota> = tasks
            .iter()
            .map(|t| MemQuota::Bytes(t.device_bytes))
            .collect();

        let config = GvmConfig::new(tasks.len())
            .with_scheduler(SchedPolicy::Fcfs)
            .with_quotas(quotas)
            .with_swap();
        let handle = Gvm::install(sim, &node, &cuda, config, tasks);
        for rank in 0..elems.len() {
            let handle = handle.clone();
            let inputs = inputs.clone();
            node.spawn_pinned(sim, rank, &format!("spmd-{rank}"), move |ctx| {
                let client = VgpuClient::connect_with_policy(
                    ctx,
                    &handle,
                    rank,
                    ClientPolicy::with_timeout(SimDuration::from_millis(10), 8),
                );
                // Rank 0 arrives first; ranks 1 and 2 race at the same
                // instant (which one is served first is a genuine race
                // the explorer can flip — the loser is NAKed either way);
                // rank 3 arrives last to restore the swapped-out shape.
                let hold = [0u64, 5, 5, 10][rank];
                if hold > 0 {
                    ctx.hold(SimDuration::from_millis(hold));
                }
                if let Ok((_run, out)) = client.try_run_task(ctx) {
                    let (a, b) = &inputs[rank];
                    let got = vecadd::decode_output(&out.expect("functional output"));
                    assert_eq!(got, vecadd::reference(a, b), "rank {rank} output wrong");
                }
            })
            .unwrap();
        }
        let h2 = handle.clone();
        let dev2 = device.clone();
        sim.spawn("supervisor", move |ctx| {
            h2.done.wait(ctx);
            dev2.shutdown(ctx);
        });
    })
}

/// Test-only scenario with a deliberately stale flag check: the worker
/// samples the flag at `t=0`, holds, and decides whether to wait based on
/// the *stale* sample. Under the default arm-order timer tie-break the
/// worker reaches its wait before the coordinator's notify and everything
/// is fine; a flipped tie-break delivers the notify into an empty queue and
/// the worker then blocks forever — the canonical lost wakeup.
#[cfg(feature = "seeded-bug")]
fn bug_lost_wakeup_run(choices: &[u32], horizon: SimDuration) -> ExploredRun {
    use gv_sim::CondQueue;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    run_scripted(choices, horizon, |sim| {
        let flag = Arc::new(AtomicBool::new(false));
        let cq = CondQueue::labeled("ready-cq");
        {
            let flag = flag.clone();
            let cq = cq.clone();
            sim.spawn("worker", move |ctx| {
                // BUG under test: sample once, act on the sample later.
                let ready = flag.load(Ordering::SeqCst);
                ctx.hold(SimDuration::from_millis(1));
                if !ready {
                    cq.wait(ctx);
                }
            });
        }
        sim.spawn("coordinator", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            flag.store(true, Ordering::SeqCst);
            cq.notify_one(ctx);
        });
    })
}

/// Search strategy for [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Bounded DFS over choice vectors with sleep-set pruning.
    Dfs,
    /// Seeded random walks.
    Random,
}

/// Tunables for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum schedules to execute (exploration runs, not shrink runs).
    pub budget: usize,
    /// Maximum non-default choices per schedule (DFS mode).
    pub preemption_bound: usize,
    /// Enable the vector-clock sleep-set reduction (DFS mode).
    pub por: bool,
    /// Walk seed (random mode).
    pub seed: u64,
    /// Search strategy.
    pub mode: Mode,
    /// Per-run simulated-time horizon; a run that exceeds it is reported
    /// as a `horizon` diagnostic.
    pub horizon: SimDuration,
    /// Maximum extra runs the shrinker may spend on a counterexample.
    pub shrink_budget: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: 200,
            preemption_bound: 2,
            por: true,
            seed: 1,
            mode: Mode::Dfs,
            horizon: SimDuration::from_secs(10),
            shrink_budget: 64,
        }
    }
}

/// A failing schedule, shrunk and ready to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Scenario that failed.
    pub scenario: String,
    /// Minimal choice vector that still reproduces the failure.
    pub choices: Vec<u32>,
    /// Checker whose diagnostic defines the failure signature.
    pub checker: String,
    /// Rendered diagnostics from the (shrunk) failing run.
    pub diagnostics: Vec<Diagnostic>,
}

impl Counterexample {
    /// Package as a replayable [`Schedule`].
    pub fn schedule(&self) -> Schedule {
        Schedule {
            scenario: self.scenario.clone(),
            expect: Some(self.checker.clone()),
            choices: self.choices.clone(),
        }
    }
}

/// What one call to [`explore`] did.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Scenario explored.
    pub scenario: String,
    /// Schedules actually executed (≤ budget, plus shrink runs).
    pub schedules_run: usize,
    /// Distinct behaviors observed (by trace fingerprint).
    pub distinct: usize,
    /// Alternatives skipped by the sleep-set reduction.
    pub pruned: usize,
    /// First failure found, shrunk — `None` means every schedule was clean.
    pub counterexample: Option<Counterexample>,
}

fn fingerprint(run: &ExploredRun) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    crate::model::to_dump(&run.records).hash(&mut h);
    match &run.error {
        None => 0u8.hash(&mut h),
        Some(SimError::Deadlock { .. }) => 1u8.hash(&mut h),
        Some(SimError::ProcessPanicked { .. }) => 2u8.hash(&mut h),
    }
    h.finish()
}

fn deviations(script: &[u32]) -> usize {
    script.iter().filter(|c| **c != 0).count()
}

/// Explore `scenario` under `cfg`, checking every executed schedule.
pub fn explore(scenario: &Scenario, cfg: &ExploreConfig) -> ExploreOutcome {
    let mut outcome = ExploreOutcome {
        scenario: scenario.name.to_string(),
        schedules_run: 0,
        distinct: 0,
        pruned: 0,
        counterexample: None,
    };
    let mut seen: HashSet<u64> = HashSet::new();

    let check = |outcome: &mut ExploreOutcome,
                 seen: &mut HashSet<u64>,
                 choices: &[u32]|
     -> Option<ExploredRun> {
        let run = scenario.run(choices, cfg.horizon);
        outcome.schedules_run += 1;
        if seen.insert(fingerprint(&run)) {
            outcome.distinct += 1;
        }
        let diags = run.diagnostics();
        if let Some(first) = diags.first() {
            let checker = first.checker.to_string();
            let shrunk = shrink(scenario, choices, &checker, cfg);
            let final_run = scenario.run(&shrunk, cfg.horizon);
            outcome.counterexample = Some(Counterexample {
                scenario: scenario.name.to_string(),
                choices: shrunk,
                checker,
                diagnostics: final_run.diagnostics(),
            });
            return None;
        }
        Some(run)
    };

    match cfg.mode {
        Mode::Random => {
            // Each walk is a seeded scripted prefix rather than a live
            // RandomOracle: the choice vector is then known up front, so a
            // failing walk shrinks and replays exactly like a DFS one.
            for i in 0..cfg.budget {
                let script = random_script(cfg.seed.wrapping_add(i as u64), 64);
                if check(&mut outcome, &mut seen, &script).is_none() {
                    return outcome;
                }
            }
        }
        Mode::Dfs => {
            let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
            while let Some(script) = stack.pop() {
                if outcome.schedules_run >= cfg.budget {
                    break;
                }
                let Some(run) = check(&mut outcome, &mut seen, &script) else {
                    return outcome;
                };
                // Branch at every decision past this script's frozen
                // prefix. Positions inside the prefix are someone else's
                // subtree; freezing them keeps the search free of
                // duplicates without a visited set.
                let d = &run.decisions;
                for i in script.len()..d.len() {
                    for alt in 1..d[i].candidates.len() {
                        if deviations(&script) + 1 > cfg.preemption_bound {
                            continue;
                        }
                        if cfg.por && commutes(d, i, alt) {
                            outcome.pruned += 1;
                            continue;
                        }
                        let mut next = script.clone();
                        next.resize(i, 0);
                        next.push(alt as u32);
                        stack.push(next);
                    }
                }
            }
        }
    }
    outcome
}

/// Sleep-set test: does deferring `candidates[alt]` at decision `i` lose
/// nothing? If the same process shows up at decision `i+1` with an
/// unchanged vector clock, the step actually chosen at `i` did not
/// synchronize with it, so the `alt`-first ordering reaches a state the
/// search will cover from the later decision anyway.
fn commutes(decisions: &[Decision], i: usize, alt: usize) -> bool {
    let Some(next) = decisions.get(i + 1) else {
        return false;
    };
    let cand = &decisions[i].candidates[alt];
    next.candidates
        .iter()
        .any(|n| n.pid == cand.pid && n.clock == cand.clock)
}

/// Deterministic pseudo-random choice vector (xorshift64*, same generator
/// as [`RandomOracle`]). Values are taken modulo each decision's arity at
/// run time by the script oracle's clamping, so large raw values are safe.
fn random_script(seed: u64, len: usize) -> Vec<u32> {
    let mut state = if seed == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        seed
    };
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    // Mostly-default walks stay near the interesting frontier; a fully
    // uniform vector almost always degenerates into one giant preemption
    // storm that the checkers reject as a horizon timeout.
    (0..len)
        .map(|_| {
            let r = next();
            if r % 4 == 0 {
                ((r >> 8) % 3) as u32
            } else {
                0
            }
        })
        .collect()
}

/// Greedily shrink `choices` to a minimal vector that still produces a
/// diagnostic from `checker`: repeatedly revert each non-default choice
/// (right to left) and drop trailing defaults, keeping any reduction that
/// preserves the failure, until a fixpoint or the shrink budget runs out.
pub fn shrink(
    scenario: &Scenario,
    choices: &[u32],
    checker: &str,
    cfg: &ExploreConfig,
) -> Vec<u32> {
    let fails = |c: &[u32], spent: &mut usize| -> bool {
        *spent += 1;
        scenario
            .run(c, cfg.horizon)
            .diagnostics()
            .iter()
            .any(|d| d.checker == checker)
    };
    let trim = |mut c: Vec<u32>| -> Vec<u32> {
        while c.last() == Some(&0) {
            c.pop();
        }
        c
    };

    let mut best = trim(choices.to_vec());
    let mut spent = 0usize;
    let mut changed = true;
    while changed && spent < cfg.shrink_budget {
        changed = false;
        for i in (0..best.len()).rev() {
            if best[i] == 0 || spent >= cfg.shrink_budget {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            let cand = trim(cand);
            if fails(&cand, &mut spent) {
                best = cand;
                changed = true;
            }
        }
    }
    best
}

/// A parsed `.gvsched` replay file: which scenario to run, the choice
/// vector to script, and (optionally) the checker the replay is expected
/// to trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Catalog name of the scenario.
    pub scenario: String,
    /// Checker expected to fire on replay, if recorded.
    pub expect: Option<String>,
    /// The choice vector (`-` in the file encodes an empty vector).
    pub choices: Vec<u32>,
}

/// Header line of the `.gvsched` format.
pub const SCHED_HEADER: &str = "gv-explore-schedule v1";

impl Schedule {
    /// Serialize to the `.gvsched` text format.
    pub fn encode(&self) -> String {
        let mut out = format!("{SCHED_HEADER}\nscenario {}\n", self.scenario);
        if let Some(e) = &self.expect {
            out.push_str(&format!("expect {e}\n"));
        }
        let list = if self.choices.is_empty() {
            "-".to_string()
        } else {
            self.choices
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!("choices {list}\n"));
        out
    }

    /// Parse the `.gvsched` text format (blank lines and `#` comments are
    /// ignored).
    pub fn decode(text: &str) -> Result<Schedule, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some(SCHED_HEADER) {
            return Err(format!("missing header '{SCHED_HEADER}'"));
        }
        let mut scenario = None;
        let mut expect = None;
        let mut choices = None;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "scenario" => scenario = Some(rest.to_string()),
                "expect" => expect = Some(rest.to_string()),
                "choices" => {
                    let parsed = if rest == "-" || rest.is_empty() {
                        Vec::new()
                    } else {
                        rest.split(',')
                            .map(|p| {
                                p.trim()
                                    .parse::<u32>()
                                    .map_err(|_| format!("bad choice '{p}'"))
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    };
                    choices = Some(parsed);
                }
                other => return Err(format!("unknown directive '{other}'")),
            }
        }
        Ok(Schedule {
            scenario: scenario.ok_or("missing 'scenario' line")?,
            expect,
            choices: choices.ok_or("missing 'choices' line")?,
        })
    }

    /// Re-execute this schedule and report what the checkers said.
    pub fn replay(&self, horizon: SimDuration) -> Result<ReplayResult, String> {
        let scenario = find_scenario(&self.scenario)
            .ok_or_else(|| format!("unknown scenario '{}'", self.scenario))?;
        let run = scenario.run(&self.choices, horizon);
        let diagnostics = run.diagnostics();
        let expected_hit = self
            .expect
            .as_ref()
            .map(|e| diagnostics.iter().any(|d| d.checker == *e));
        Ok(ReplayResult {
            diagnostics,
            expected_hit,
            run,
        })
    }
}

/// Outcome of replaying a [`Schedule`].
pub struct ReplayResult {
    /// Diagnostics the replayed schedule produced.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the expected checker fired (`None` when none was recorded).
    pub expected_hit: Option<bool>,
    /// The full re-executed run.
    pub run: ExploredRun,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gvsched_roundtrip() {
        let s = Schedule {
            scenario: "vecadd2".to_string(),
            expect: Some("deadlock".to_string()),
            choices: vec![0, 0, 3, 1],
        };
        assert_eq!(Schedule::decode(&s.encode()).unwrap(), s);
        let empty = Schedule {
            scenario: "vecadd2".to_string(),
            expect: None,
            choices: Vec::new(),
        };
        assert_eq!(Schedule::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn gvsched_rejects_garbage() {
        assert!(Schedule::decode("").is_err());
        assert!(Schedule::decode("gv-explore-schedule v2\nscenario x\nchoices -\n").is_err());
        assert!(Schedule::decode(&format!("{SCHED_HEADER}\nchoices -\n")).is_err());
        assert!(
            Schedule::decode(&format!("{SCHED_HEADER}\nscenario x\nchoices 1,zebra\n")).is_err()
        );
    }

    #[test]
    fn random_script_is_deterministic() {
        assert_eq!(random_script(7, 32), random_script(7, 32));
        assert_ne!(random_script(7, 32), random_script(8, 32));
    }
}

//! Line-oriented dump format for [`AnalysisRecord`] traces.
//!
//! The harness writes one record per line so a run's analysis trace can be
//! archived and re-checked offline with the `gv-analyze` binary. The format
//! is deliberately hand-rolled (no external dependencies) and versioned by
//! the header line:
//!
//! ```text
//! gv-analyze-trace v1
//! device dev=0 maxk=16
//! shm t=2002000 pid=1 off=0 len=1024 rw=w clock=3,1 proc=spmd-0 seg=/gvm-0
//! proto t=2002000 rank=0 seq=1 kind=REQ gvm=gvm
//! flush t=4000000 ranks=0,1,2 gvm=gvm
//! evict t=9000000 rank=1 gvm=gvm
//! copyb t=100 dev=0 eng=0 label=cmd-7
//! copye t=200 dev=0 eng=0 label=cmd-7
//! kernb t=300 dev=0 label=vecadd-3
//! kerne t=400 dev=0 label=vecadd-3
//! alloc t=50 dev=0 id=1 bytes=4096
//! free t=500 dev=0 id=1
//! poolacq t=60 buf=3 bytes=8192 hit=1
//! plan t=70 rank=2 xfer=11 payload=8192 k=2 cap=4 adaptive=1
//! chunk t=80 dev=0 rank=2 xfer=11 dir=in off=0 len=4096 payload=8192 buf=3 label=cmd-12
//! poolrec t=600 buf=3
//! cdev dev=0 mem=6442450944 slots=16
//! cplace t=700 vgpu=3 tenant=1 gang=2 dev=0 wave=0 mem=4096
//! cevict t=800 vgpu=3 dev=0
//! qset t=0 rank=2 quota=8192 demand=4096 gvm=gvm
//! qcharge t=820 rank=2 bytes=4096 charged=4096 gvm=gvm
//! qcredit t=840 rank=2 bytes=4096 charged=0 gvm=gvm
//! swapout t=860 dev=0 buf=5 bytes=4096 gvm=gvm
//! swapin t=880 dev=0 buf=5 bytes=4096 gvm=gvm
//! dlwait t=900 pid=2 kind=recv holders=1 proc=spmd-0 res=/gvm-req
//! dlock t=900 cycle=1,2,1
//! nlost t=850 res=ready-cq
//! runend t=1000 completed=0 deadlocked=1
//! ```
//!
//! Free-text fields (process and segment names, command labels) are
//! percent-escaped so embedded whitespace cannot break the framing.

use gv_sim::{AnalysisRecord, Pid, SimTime, VClock, WaitKind};
use gv_virt::protocol::RequestKind;

/// Header line identifying the format and version.
pub const HEADER: &str = "gv-analyze-trace v1";

/// A malformed dump file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for DumpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dump parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for DumpParseError {}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    s.replace("%20", " ")
        .replace("%0A", "\n")
        .replace("%25", "%")
}

fn clock_str(c: &VClock) -> String {
    c.components()
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Serialize `records` to the dump format (header included).
pub fn to_dump(records: &[AnalysisRecord]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for rec in records {
        match rec {
            AnalysisRecord::ShmAccess {
                time,
                pid,
                process,
                segment,
                offset,
                len,
                is_write,
                clock,
            } => {
                let _ = writeln!(
                    out,
                    "shm t={} pid={} off={} len={} rw={} clock={} proc={} seg={}",
                    time.as_nanos(),
                    pid.index(),
                    offset,
                    len,
                    if *is_write { 'w' } else { 'r' },
                    clock_str(clock),
                    esc(process),
                    esc(segment),
                );
            }
            AnalysisRecord::Proto {
                time,
                gvm,
                rank,
                kind,
                seq,
            } => {
                let _ = writeln!(
                    out,
                    "proto t={} rank={rank} seq={seq} kind={kind} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::ProtoSched {
                time,
                gvm,
                policy,
                partial,
            } => {
                let _ = writeln!(
                    out,
                    "sched t={} partial={} policy={} gvm={}",
                    time.as_nanos(),
                    u8::from(*partial),
                    esc(policy),
                    esc(gvm),
                );
            }
            AnalysisRecord::ProtoFlush { time, gvm, ranks } => {
                let list = ranks
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(
                    out,
                    "flush t={} ranks={list} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::ProtoEvict { time, gvm, rank } => {
                let _ = writeln!(
                    out,
                    "evict t={} rank={rank} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::DeviceRegistered {
                device,
                max_concurrent_kernels,
            } => {
                let _ = writeln!(out, "device dev={device} maxk={max_concurrent_kernels}");
            }
            AnalysisRecord::CopyBegin {
                time,
                device,
                engine,
                label,
            } => {
                let _ = writeln!(
                    out,
                    "copyb t={} dev={device} eng={engine} label={}",
                    time.as_nanos(),
                    esc(label)
                );
            }
            AnalysisRecord::CopyEnd {
                time,
                device,
                engine,
                label,
            } => {
                let _ = writeln!(
                    out,
                    "copye t={} dev={device} eng={engine} label={}",
                    time.as_nanos(),
                    esc(label)
                );
            }
            AnalysisRecord::KernelBegin {
                time,
                device,
                label,
            } => {
                let _ = writeln!(
                    out,
                    "kernb t={} dev={device} label={}",
                    time.as_nanos(),
                    esc(label)
                );
            }
            AnalysisRecord::KernelEnd {
                time,
                device,
                label,
            } => {
                let _ = writeln!(
                    out,
                    "kerne t={} dev={device} label={}",
                    time.as_nanos(),
                    esc(label)
                );
            }
            AnalysisRecord::Alloc {
                time,
                device,
                id,
                bytes,
            } => {
                let _ = writeln!(
                    out,
                    "alloc t={} dev={device} id={id} bytes={bytes}",
                    time.as_nanos()
                );
            }
            AnalysisRecord::Free { time, device, id } => {
                let _ = writeln!(out, "free t={} dev={device} id={id}", time.as_nanos());
            }
            AnalysisRecord::StageChunk {
                time,
                device,
                rank,
                xfer,
                h2d,
                offset,
                len,
                payload,
                buf,
                label,
            } => {
                let _ = writeln!(
                    out,
                    "chunk t={} dev={device} rank={rank} xfer={xfer} dir={} off={offset} \
                     len={len} payload={payload} buf={buf} label={}",
                    time.as_nanos(),
                    if *h2d { "in" } else { "out" },
                    esc(label)
                );
            }
            AnalysisRecord::StagePlan {
                time,
                rank,
                xfer,
                payload,
                k,
                cap,
                adaptive,
            } => {
                let _ = writeln!(
                    out,
                    "plan t={} rank={rank} xfer={xfer} payload={payload} k={k} cap={cap} \
                     adaptive={}",
                    time.as_nanos(),
                    u8::from(*adaptive)
                );
            }
            AnalysisRecord::PoolAcquire {
                time,
                buf,
                bytes,
                hit,
            } => {
                let _ = writeln!(
                    out,
                    "poolacq t={} buf={buf} bytes={bytes} hit={}",
                    time.as_nanos(),
                    u8::from(*hit)
                );
            }
            AnalysisRecord::PoolRecycle { time, buf } => {
                let _ = writeln!(out, "poolrec t={} buf={buf}", time.as_nanos());
            }
            AnalysisRecord::ClusterDevice {
                device,
                mem_bytes,
                kernel_slots,
            } => {
                let _ = writeln!(
                    out,
                    "cdev dev={device} mem={mem_bytes} slots={kernel_slots}"
                );
            }
            AnalysisRecord::ClusterPlace {
                time,
                vgpu,
                tenant,
                gang,
                device,
                wave,
                mem_bytes,
            } => {
                let gang = gang.map_or_else(|| "-".to_string(), |g| g.to_string());
                let _ = writeln!(
                    out,
                    "cplace t={} vgpu={vgpu} tenant={tenant} gang={gang} dev={device} \
                     wave={wave} mem={mem_bytes}",
                    time.as_nanos()
                );
            }
            AnalysisRecord::ClusterEvict { time, vgpu, device } => {
                let _ = writeln!(out, "cevict t={} vgpu={vgpu} dev={device}", time.as_nanos());
            }
            AnalysisRecord::QuotaSet {
                time,
                gvm,
                rank,
                quota,
                demand,
            } => {
                let _ = writeln!(
                    out,
                    "qset t={} rank={rank} quota={quota} demand={demand} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::QuotaCharge {
                time,
                gvm,
                rank,
                bytes,
                charged,
            } => {
                let _ = writeln!(
                    out,
                    "qcharge t={} rank={rank} bytes={bytes} charged={charged} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::QuotaCredit {
                time,
                gvm,
                rank,
                bytes,
                charged,
            } => {
                let _ = writeln!(
                    out,
                    "qcredit t={} rank={rank} bytes={bytes} charged={charged} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::SwapOut {
                time,
                gvm,
                device,
                buf,
                bytes,
            } => {
                let _ = writeln!(
                    out,
                    "swapout t={} dev={device} buf={buf} bytes={bytes} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::SwapIn {
                time,
                gvm,
                device,
                buf,
                bytes,
            } => {
                let _ = writeln!(
                    out,
                    "swapin t={} dev={device} buf={buf} bytes={bytes} gvm={}",
                    time.as_nanos(),
                    esc(gvm)
                );
            }
            AnalysisRecord::DescGrant {
                time,
                gvm,
                rank,
                segment,
                buf,
                generation,
                len,
            } => {
                let _ = writeln!(
                    out,
                    "dgrant t={} rank={rank} buf={buf} gen={generation} len={len} seg={} gvm={}",
                    time.as_nanos(),
                    esc(segment),
                    esc(gvm),
                );
            }
            AnalysisRecord::DescUse {
                time,
                gvm,
                rank,
                buf,
                generation,
                ok,
            } => {
                let _ = writeln!(
                    out,
                    "duse t={} rank={rank} buf={buf} gen={generation} ok={} gvm={}",
                    time.as_nanos(),
                    u8::from(*ok),
                    esc(gvm),
                );
            }
            AnalysisRecord::CoalesceOp {
                time,
                gvm,
                device,
                h2d,
                total,
                ranks,
                offsets,
                lens,
                bufs,
                gens,
                cmds,
            } => {
                let list = |v: &[u64]| {
                    v.iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = writeln!(
                    out,
                    "cop t={} dev={device} dir={} total={total} ranks={} offs={} lens={} \
                     bufs={} gens={} cmds={} gvm={}",
                    time.as_nanos(),
                    if *h2d { "in" } else { "out" },
                    list(ranks),
                    list(offsets),
                    list(lens),
                    list(bufs),
                    list(gens),
                    list(cmds),
                    esc(gvm),
                );
            }
            AnalysisRecord::DeadlockWaiter {
                time,
                pid,
                process,
                kind,
                resource,
                holders,
            } => {
                let list = holders
                    .iter()
                    .map(|p| p.index().to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(
                    out,
                    "dlwait t={} pid={} kind={} holders={list} proc={} res={}",
                    time.as_nanos(),
                    pid.index(),
                    kind.label(),
                    esc(process),
                    esc(resource),
                );
            }
            AnalysisRecord::Deadlock { time, cycle } => {
                let list = cycle
                    .iter()
                    .map(|p| p.index().to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(out, "dlock t={} cycle={list}", time.as_nanos());
            }
            AnalysisRecord::NotifyLost { time, resource } => {
                let _ = writeln!(out, "nlost t={} res={}", time.as_nanos(), esc(resource));
            }
            AnalysisRecord::RunEnd {
                time,
                completed,
                deadlocked,
            } => {
                let _ = writeln!(
                    out,
                    "runend t={} completed={} deadlocked={}",
                    time.as_nanos(),
                    u8::from(*completed),
                    u8::from(*deadlocked),
                );
            }
        }
    }
    out
}

struct Fields<'a> {
    line_no: usize,
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(line_no: usize, rest: &'a str) -> Result<Self, DumpParseError> {
        let mut fields = Vec::new();
        for tok in rest.split_whitespace() {
            let (k, v) = tok.split_once('=').ok_or_else(|| DumpParseError {
                line: line_no,
                reason: format!("expected key=value, got '{tok}'"),
            })?;
            fields.push((k, v));
        }
        Ok(Fields { line_no, fields })
    }

    fn get(&self, key: &str) -> Result<&'a str, DumpParseError> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| DumpParseError {
                line: self.line_no,
                reason: format!("missing field '{key}'"),
            })
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, DumpParseError> {
        self.get(key)?.parse().map_err(|_| DumpParseError {
            line: self.line_no,
            reason: format!("field '{key}' is not a valid number"),
        })
    }

    fn time(&self) -> Result<SimTime, DumpParseError> {
        Ok(SimTime::from_nanos(self.num::<u64>("t")?))
    }

    fn num_list<T: std::str::FromStr>(&self, key: &str) -> Result<Vec<T>, DumpParseError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|p| {
                p.parse().map_err(|_| DumpParseError {
                    line: self.line_no,
                    reason: format!("field '{key}' has a non-numeric element '{p}'"),
                })
            })
            .collect()
    }
}

/// Parse a dump produced by [`to_dump`].
pub fn parse_dump(text: &str) -> Result<Vec<AnalysisRecord>, DumpParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(DumpParseError {
                line: 1,
                reason: format!(
                    "missing header '{HEADER}' (got {:?})",
                    other.map(|(_, l)| l).unwrap_or("<empty>")
                ),
            })
        }
    }

    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        let f = Fields::parse(line_no, rest)?;
        let rec = match tag {
            "shm" => AnalysisRecord::ShmAccess {
                time: f.time()?,
                pid: Pid::from_index(f.num("pid")?),
                process: unesc(f.get("proc")?),
                segment: unesc(f.get("seg")?),
                offset: f.num("off")?,
                len: f.num("len")?,
                is_write: match f.get("rw")? {
                    "w" => true,
                    "r" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'rw' must be 'r' or 'w', got '{other}'"),
                        })
                    }
                },
                clock: VClock::from_components(f.num_list("clock")?),
            },
            "proto" => {
                let raw = f.get("kind")?;
                let kind = RequestKind::from_label(raw)
                    .map(RequestKind::label)
                    .ok_or_else(|| DumpParseError {
                        line: line_no,
                        reason: format!("unknown request kind '{raw}'"),
                    })?;
                AnalysisRecord::Proto {
                    time: f.time()?,
                    gvm: unesc(f.get("gvm")?),
                    rank: f.num("rank")?,
                    kind,
                    seq: f.num("seq")?,
                }
            }
            "sched" => AnalysisRecord::ProtoSched {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                policy: unesc(f.get("policy")?),
                partial: match f.get("partial")? {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'partial' must be '0' or '1', got '{other}'"),
                        })
                    }
                },
            },
            "flush" => AnalysisRecord::ProtoFlush {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                ranks: f.num_list("ranks")?,
            },
            "evict" => AnalysisRecord::ProtoEvict {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                rank: f.num("rank")?,
            },
            "device" => AnalysisRecord::DeviceRegistered {
                device: f.num("dev")?,
                max_concurrent_kernels: f.num("maxk")?,
            },
            "copyb" => AnalysisRecord::CopyBegin {
                time: f.time()?,
                device: f.num("dev")?,
                engine: f.num("eng")?,
                label: unesc(f.get("label")?),
            },
            "copye" => AnalysisRecord::CopyEnd {
                time: f.time()?,
                device: f.num("dev")?,
                engine: f.num("eng")?,
                label: unesc(f.get("label")?),
            },
            "kernb" => AnalysisRecord::KernelBegin {
                time: f.time()?,
                device: f.num("dev")?,
                label: unesc(f.get("label")?),
            },
            "kerne" => AnalysisRecord::KernelEnd {
                time: f.time()?,
                device: f.num("dev")?,
                label: unesc(f.get("label")?),
            },
            "alloc" => AnalysisRecord::Alloc {
                time: f.time()?,
                device: f.num("dev")?,
                id: f.num("id")?,
                bytes: f.num("bytes")?,
            },
            "free" => AnalysisRecord::Free {
                time: f.time()?,
                device: f.num("dev")?,
                id: f.num("id")?,
            },
            "chunk" => AnalysisRecord::StageChunk {
                time: f.time()?,
                device: f.num("dev")?,
                rank: f.num("rank")?,
                xfer: f.num("xfer")?,
                h2d: match f.get("dir")? {
                    "in" => true,
                    "out" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'dir' must be 'in' or 'out', got '{other}'"),
                        })
                    }
                },
                offset: f.num("off")?,
                len: f.num("len")?,
                payload: f.num("payload")?,
                buf: f.num("buf")?,
                label: unesc(f.get("label")?),
            },
            "plan" => AnalysisRecord::StagePlan {
                time: f.time()?,
                rank: f.num("rank")?,
                xfer: f.num("xfer")?,
                payload: f.num("payload")?,
                k: f.num("k")?,
                cap: f.num("cap")?,
                adaptive: match f.get("adaptive")? {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'adaptive' must be '0' or '1', got '{other}'"),
                        })
                    }
                },
            },
            "poolacq" => AnalysisRecord::PoolAcquire {
                time: f.time()?,
                buf: f.num("buf")?,
                bytes: f.num("bytes")?,
                hit: match f.get("hit")? {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'hit' must be '0' or '1', got '{other}'"),
                        })
                    }
                },
            },
            "poolrec" => AnalysisRecord::PoolRecycle {
                time: f.time()?,
                buf: f.num("buf")?,
            },
            "cdev" => AnalysisRecord::ClusterDevice {
                device: f.num("dev")?,
                mem_bytes: f.num("mem")?,
                kernel_slots: f.num("slots")?,
            },
            "cplace" => AnalysisRecord::ClusterPlace {
                time: f.time()?,
                vgpu: f.num("vgpu")?,
                tenant: f.num("tenant")?,
                gang: match f.get("gang")? {
                    "-" => None,
                    _ => Some(f.num("gang")?),
                },
                device: f.num("dev")?,
                wave: f.num("wave")?,
                mem_bytes: f.num("mem")?,
            },
            "cevict" => AnalysisRecord::ClusterEvict {
                time: f.time()?,
                vgpu: f.num("vgpu")?,
                device: f.num("dev")?,
            },
            "qset" => AnalysisRecord::QuotaSet {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                rank: f.num("rank")?,
                quota: f.num("quota")?,
                demand: f.num("demand")?,
            },
            "qcharge" => AnalysisRecord::QuotaCharge {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                rank: f.num("rank")?,
                bytes: f.num("bytes")?,
                charged: f.num("charged")?,
            },
            "qcredit" => AnalysisRecord::QuotaCredit {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                rank: f.num("rank")?,
                bytes: f.num("bytes")?,
                charged: f.num("charged")?,
            },
            "swapout" => AnalysisRecord::SwapOut {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                device: f.num("dev")?,
                buf: f.num("buf")?,
                bytes: f.num("bytes")?,
            },
            "swapin" => AnalysisRecord::SwapIn {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                device: f.num("dev")?,
                buf: f.num("buf")?,
                bytes: f.num("bytes")?,
            },
            "dgrant" => AnalysisRecord::DescGrant {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                rank: f.num("rank")?,
                segment: unesc(f.get("seg")?),
                buf: f.num("buf")?,
                generation: f.num("gen")?,
                len: f.num("len")?,
            },
            "duse" => AnalysisRecord::DescUse {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                rank: f.num("rank")?,
                buf: f.num("buf")?,
                generation: f.num("gen")?,
                ok: match f.get("ok")? {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'ok' must be '0' or '1', got '{other}'"),
                        })
                    }
                },
            },
            "cop" => AnalysisRecord::CoalesceOp {
                time: f.time()?,
                gvm: unesc(f.get("gvm")?),
                device: f.num("dev")?,
                h2d: match f.get("dir")? {
                    "in" => true,
                    "out" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'dir' must be 'in' or 'out', got '{other}'"),
                        })
                    }
                },
                total: f.num("total")?,
                ranks: f.num_list("ranks")?,
                offsets: f.num_list("offs")?,
                lens: f.num_list("lens")?,
                bufs: f.num_list("bufs")?,
                gens: f.num_list("gens")?,
                cmds: f.num_list("cmds")?,
            },
            "dlwait" => {
                let raw = f.get("kind")?;
                let kind = WaitKind::from_label(raw).ok_or_else(|| DumpParseError {
                    line: line_no,
                    reason: format!("unknown wait kind '{raw}'"),
                })?;
                AnalysisRecord::DeadlockWaiter {
                    time: f.time()?,
                    pid: Pid::from_index(f.num("pid")?),
                    process: unesc(f.get("proc")?),
                    kind,
                    resource: unesc(f.get("res")?),
                    holders: f
                        .num_list::<usize>("holders")?
                        .into_iter()
                        .map(Pid::from_index)
                        .collect(),
                }
            }
            "dlock" => AnalysisRecord::Deadlock {
                time: f.time()?,
                cycle: f
                    .num_list::<usize>("cycle")?
                    .into_iter()
                    .map(Pid::from_index)
                    .collect(),
            },
            "nlost" => AnalysisRecord::NotifyLost {
                time: f.time()?,
                resource: unesc(f.get("res")?),
            },
            "runend" => AnalysisRecord::RunEnd {
                time: f.time()?,
                completed: match f.get("completed")? {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'completed' must be '0' or '1', got '{other}'"),
                        })
                    }
                },
                deadlocked: match f.get("deadlocked")? {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(DumpParseError {
                            line: line_no,
                            reason: format!("field 'deadlocked' must be '0' or '1', got '{other}'"),
                        })
                    }
                },
            },
            other => {
                return Err(DumpParseError {
                    line: line_no,
                    reason: format!("unknown record tag '{other}'"),
                })
            }
        };
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<AnalysisRecord> {
        vec![
            AnalysisRecord::DeviceRegistered {
                device: 0,
                max_concurrent_kernels: 16,
            },
            AnalysisRecord::ShmAccess {
                time: SimTime::from_nanos(2_002_000),
                pid: Pid::from_index(3),
                process: "spmd 1".to_string(), // space exercises escaping
                segment: "/gvm-shm-1".to_string(),
                offset: 0,
                len: 1024,
                is_write: true,
                clock: VClock::from_components(vec![3, 0, 1]),
            },
            AnalysisRecord::ProtoSched {
                time: SimTime::from_nanos(5),
                gvm: "gvm a".to_string(), // space exercises escaping
                policy: "sjf".to_string(),
                partial: true,
            },
            AnalysisRecord::Proto {
                time: SimTime::from_nanos(10),
                gvm: "gvm a".to_string(),
                rank: 2,
                kind: "STR",
                seq: 7,
            },
            AnalysisRecord::ProtoFlush {
                time: SimTime::from_nanos(20),
                gvm: "gvm a".to_string(),
                ranks: vec![0, 1, 2],
            },
            AnalysisRecord::ProtoEvict {
                time: SimTime::from_nanos(30),
                gvm: "gvm a".to_string(),
                rank: 1,
            },
            AnalysisRecord::CopyBegin {
                time: SimTime::from_nanos(40),
                device: 0,
                engine: 1,
                label: "cmd-9".to_string(),
            },
            AnalysisRecord::CopyEnd {
                time: SimTime::from_nanos(50),
                device: 0,
                engine: 1,
                label: "cmd-9".to_string(),
            },
            AnalysisRecord::KernelBegin {
                time: SimTime::from_nanos(60),
                device: 0,
                label: "vecadd-3".to_string(),
            },
            AnalysisRecord::KernelEnd {
                time: SimTime::from_nanos(70),
                device: 0,
                label: "vecadd-3".to_string(),
            },
            AnalysisRecord::Alloc {
                time: SimTime::from_nanos(80),
                device: 0,
                id: 5,
                bytes: 4096,
            },
            AnalysisRecord::Free {
                time: SimTime::from_nanos(90),
                device: 0,
                id: 5,
            },
            AnalysisRecord::PoolAcquire {
                time: SimTime::from_nanos(95),
                buf: 3,
                bytes: 8192,
                hit: true,
            },
            AnalysisRecord::StagePlan {
                time: SimTime::from_nanos(98),
                rank: 2,
                xfer: 11,
                payload: 8192,
                k: 2,
                cap: 4,
                adaptive: true,
            },
            AnalysisRecord::StageChunk {
                time: SimTime::from_nanos(100),
                device: 0,
                rank: 2,
                xfer: 11,
                h2d: true,
                offset: 4096,
                len: 4096,
                payload: 8192,
                buf: 3,
                label: "cmd-12".to_string(),
            },
            AnalysisRecord::StageChunk {
                time: SimTime::from_nanos(105),
                device: 0,
                rank: 2,
                xfer: 12,
                h2d: false,
                offset: 0,
                len: 8192,
                payload: 8192,
                buf: 0,
                label: String::new(),
            },
            AnalysisRecord::PoolRecycle {
                time: SimTime::from_nanos(110),
                buf: 3,
            },
            AnalysisRecord::ClusterDevice {
                device: 1,
                mem_bytes: 6_442_450_944,
                kernel_slots: 16,
            },
            AnalysisRecord::ClusterPlace {
                time: SimTime::from_nanos(120),
                vgpu: 42,
                tenant: 3,
                gang: Some(2),
                device: 1,
                wave: 0,
                mem_bytes: 4096,
            },
            AnalysisRecord::ClusterPlace {
                time: SimTime::from_nanos(125),
                vgpu: 43,
                tenant: 3,
                gang: None, // gangless placement exercises the '-' encoding
                device: 1,
                wave: 1,
                mem_bytes: 8192,
            },
            AnalysisRecord::ClusterEvict {
                time: SimTime::from_nanos(130),
                vgpu: 42,
                device: 1,
            },
            AnalysisRecord::QuotaSet {
                time: SimTime::from_nanos(131),
                gvm: "gvm a".to_string(), // space exercises escaping
                rank: 2,
                quota: 8192,
                demand: 4096,
            },
            AnalysisRecord::QuotaCharge {
                time: SimTime::from_nanos(132),
                gvm: "gvm a".to_string(),
                rank: 2,
                bytes: 4096,
                charged: 4096,
            },
            AnalysisRecord::SwapOut {
                time: SimTime::from_nanos(133),
                gvm: "gvm a".to_string(),
                device: 1,
                buf: 5,
                bytes: 4096,
            },
            AnalysisRecord::SwapIn {
                time: SimTime::from_nanos(134),
                gvm: "gvm a".to_string(),
                device: 1,
                buf: 5,
                bytes: 4096,
            },
            AnalysisRecord::QuotaCredit {
                time: SimTime::from_nanos(134),
                gvm: "gvm a".to_string(),
                rank: 2,
                bytes: 4096,
                charged: 0,
            },
            AnalysisRecord::DescGrant {
                time: SimTime::from_nanos(134),
                gvm: "gvm a".to_string(), // space exercises escaping
                rank: 2,
                segment: "/gvm-shm-2".to_string(),
                buf: 7,
                generation: 3,
                len: 8192,
            },
            AnalysisRecord::DescUse {
                time: SimTime::from_nanos(135),
                gvm: "gvm a".to_string(),
                rank: 2,
                buf: 7,
                generation: 2,
                ok: false,
            },
            AnalysisRecord::CoalesceOp {
                time: SimTime::from_nanos(136),
                gvm: "gvm a".to_string(),
                device: 0,
                h2d: true,
                total: 12288,
                ranks: vec![0, 2],
                offsets: vec![0, 4096],
                lens: vec![4096, 8192],
                bufs: vec![3, 7],
                gens: vec![1, 3],
                cmds: vec![12, 13],
            },
            AnalysisRecord::NotifyLost {
                time: SimTime::from_nanos(135),
                resource: "ready cq".to_string(), // space exercises escaping
            },
            AnalysisRecord::DeadlockWaiter {
                time: SimTime::from_nanos(140),
                pid: Pid::from_index(2),
                process: "spmd 0".to_string(),
                kind: WaitKind::Recv,
                resource: "/gvm-req".to_string(),
                holders: vec![Pid::from_index(1), Pid::from_index(3)],
            },
            AnalysisRecord::DeadlockWaiter {
                time: SimTime::from_nanos(140),
                pid: Pid::from_index(3),
                process: "gvm".to_string(),
                kind: WaitKind::Park,
                resource: String::new(), // empty resource exercises the empty field
                holders: Vec::new(),
            },
            AnalysisRecord::Deadlock {
                time: SimTime::from_nanos(140),
                cycle: vec![Pid::from_index(2), Pid::from_index(3), Pid::from_index(2)],
            },
            AnalysisRecord::RunEnd {
                time: SimTime::from_nanos(150),
                completed: false,
                deadlocked: true,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_records() {
        let recs = sample();
        let dump = to_dump(&recs);
        let back = parse_dump(&dump).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_dump("proto t=1 rank=0 seq=1 kind=REQ\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("missing header"));
    }

    #[test]
    fn bad_field_reports_line_number() {
        let text = format!("{HEADER}\nproto t=1 rank=zero seq=1 kind=REQ gvm=gvm\n");
        let err = parse_dump(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("rank"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let text = format!("{HEADER}\nwarp t=1\n");
        let err = parse_dump(&text).unwrap_err();
        assert!(err.reason.contains("unknown record tag"));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = format!("{HEADER}\n\n# a comment\nevict t=5 rank=2 gvm=gvm\n");
        let recs = parse_dump(&text).unwrap();
        assert_eq!(recs.len(), 1);
    }
}

//! End-to-end checks for `gv-analyze`: clean deterministic runs produce
//! zero diagnostics, and each seeded violation produces exactly the
//! expected one.

use gv_cuda::CudaDevice;
use gv_gpu::{DeviceConfig, GpuDevice};
use gv_ipc::{Node, NodeConfig, ShmRegistry};
use gv_kernels::{vecadd, Benchmark, BenchmarkId};
use gv_sim::{SimDuration, Simulation};
use gv_virt::{ClientPolicy, Gvm, GvmConfig, VgpuClient};
use proptest::prelude::*;

/// Run an n-rank fault-free functional vecadd through the GVM with
/// analysis recording on, and return the finished simulation's tracer.
fn clean_gvm_run(nranks: usize, elems: usize) -> gv_sim::trace::Tracer {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());

    let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..nranks)
        .map(|r| {
            let a: Vec<f32> = (0..elems).map(|i| (i + r * 1000) as f32).collect();
            let b: Vec<f32> = (0..elems).map(|i| (i * 2) as f32).collect();
            (a, b)
        })
        .collect();
    let tasks: Vec<_> = inputs
        .iter()
        .map(|(a, b)| vecadd::functional_task(&cfg, a, b))
        .collect();

    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(nranks), tasks);
    for rank in 0..nranks {
        let handle = handle.clone();
        let inputs = inputs.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let (_run, out) = client.run_task(ctx);
            let got = vecadd::decode_output(&out.expect("functional output"));
            let (a, b) = &inputs[rank];
            assert_eq!(got, vecadd::reference(a, b), "rank {rank} output wrong");
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    let tracer = sim.tracer();
    sim.run().unwrap();
    tracer
}

/// A clean fault-free run trips none of the three checkers, while all
/// three actually saw events (the run is not vacuously clean).
#[test]
fn clean_run_reports_zero_diagnostics() {
    let tracer = clean_gvm_run(2, 256);
    let report = gv_analyze::analyze_tracer(&tracer);
    assert!(
        report.is_clean(),
        "unexpected diagnostics:\n{}",
        report.render()
    );
    assert!(report.shm_accesses > 0, "race detector saw no accesses");
    assert!(
        report.proto_messages > 0,
        "conformance linter saw no receipts"
    );
    assert!(report.device_events > 0, "device checker saw no events");
    // Satellite check: the begin/end event stream is also well-paired.
    assert!(tracer.validate_spans().is_empty());
}

/// Fault-tolerant run where one rank dies before ever connecting: the GVM
/// evicts it at the barrier timeout and flushes at reduced width. The
/// eviction is a *recovery*, not a protocol violation — the trace must
/// still analyze clean.
#[test]
fn fault_tolerant_eviction_run_is_clean() {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..128).map(|i| (i * 3) as f32).collect();
    let tasks = vec![vecadd::functional_task(&cfg, &a, &b); 2];
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::fault_tolerant(2), tasks);

    // Rank 0 never talks to the GVM at all; rank 1 runs the full cycle.
    {
        let handle = handle.clone();
        node.spawn_pinned(&mut sim, 1, "spmd-1", move |ctx| {
            let client = VgpuClient::connect_with_policy(
                ctx,
                &handle,
                1,
                ClientPolicy::with_timeout(SimDuration::from_millis(10), 8),
            );
            let (_run, out) = client.try_run_task(ctx).expect("survivor completes");
            let got = vecadd::decode_output(&out.expect("functional output"));
            assert_eq!(got, vecadd::reference(&a, &b));
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    let tracer = sim.tracer();
    sim.run().unwrap();

    assert_eq!(handle.stats.lock().evictions, 1, "rank 0 must be evicted");
    let report = gv_analyze::analyze_tracer(&tracer);
    assert!(
        report.is_clean(),
        "unexpected diagnostics:\n{}",
        report.render()
    );
}

/// Golden fixture: a client that skips REQ and opens with SND. The
/// fault-free GVM happily serves it (resources are pre-created), so only
/// the conformance linter can catch the violation — and it reports
/// exactly one diagnostic, at the SND, then resynchronizes.
#[test]
fn golden_snd_before_req_yields_one_conformance_diagnostic() {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..64).map(|i| (i + 7) as f32).collect();
    let tasks = vec![vecadd::functional_task(&cfg, &a, &b)];
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(1), tasks);
    {
        let handle = handle.clone();
        node.spawn_pinned(&mut sim, 0, "spmd-0", move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, 0);
            // BUG under test: no client.req(ctx) before staging data.
            client.snd(ctx);
            client.str(ctx);
            client.stp_until_done(ctx);
            let out = client.rcv(ctx).expect("functional output");
            assert_eq!(vecadd::decode_output(&out), vecadd::reference(&a, &b));
            client.rls(ctx);
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    let tracer = sim.tracer();
    sim.run().unwrap();

    let report = gv_analyze::analyze_tracer(&tracer);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly the SND-before-REQ diagnostic:\n{}",
        report.render()
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.checker, "conformance");
    assert!(
        d.message.contains("SND") && d.message.contains("illegal in stage 'init'"),
        "unexpected message: {}",
        d.message
    );
}

/// Golden fixture: two processes write the same shared-memory range with
/// no synchronization between them. The schedule happens to space the
/// writes apart in simulated time, but there is no happens-before edge —
/// the detector must still flag exactly one race.
#[test]
fn golden_seeded_shm_race_yields_one_race_diagnostic() {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let reg = ShmRegistry::new(&NodeConfig::dual_xeon_x5560());
    let seg = reg.create("/gvm-race", 64).unwrap();

    for p in 0..2u64 {
        let seg = seg.clone();
        sim.spawn(&format!("writer-{p}"), move |ctx| {
            // Stagger in time only: no sync primitive orders the writes.
            ctx.hold(SimDuration::from_micros(1 + p * 50));
            seg.write(ctx, 0, &[p as u8; 16]).unwrap();
        });
    }
    let tracer = sim.tracer();
    sim.run().unwrap();

    let report = gv_analyze::analyze_tracer(&tracer);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one race:\n{}",
        report.render()
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.checker, "race");
    assert!(
        d.message.contains("/gvm-race")
            && d.message.contains("writer-0")
            && d.message.contains("writer-1"),
        "unexpected message: {}",
        d.message
    );
}

/// Control for the race fixture: the same two writes ordered through a
/// channel (writer-0 signals, writer-1 waits) are not a race.
#[test]
fn channel_synchronized_writes_do_not_race() {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let reg = ShmRegistry::new(&NodeConfig::dual_xeon_x5560());
    let seg = reg.create("/gvm-sync", 64).unwrap();
    let ch: gv_sim::SimChannel<()> = gv_sim::SimChannel::unbounded();

    {
        let seg = seg.clone();
        let tx = ch.clone();
        sim.spawn("writer-0", move |ctx| {
            seg.write(ctx, 0, &[0u8; 16]).unwrap();
            tx.send(ctx, ()).unwrap();
        });
    }
    {
        let seg = seg.clone();
        sim.spawn("writer-1", move |ctx| {
            ch.recv(ctx).unwrap();
            seg.write(ctx, 0, &[1u8; 16]).unwrap();
        });
    }
    let tracer = sim.tracer();
    sim.run().unwrap();

    let report = gv_analyze::analyze_tracer(&tracer);
    assert!(report.is_clean(), "false positive:\n{}", report.render());
    assert_eq!(report.shm_accesses, 2);
}

/// Golden fixture: a dumped trace where two transfers overlap on the same
/// copy engine. The real device model never produces this, so the fixture
/// exercises the offline path: parse the dump, run the checkers, get
/// exactly one device diagnostic.
#[test]
fn golden_copy_engine_overlap_dump_yields_one_device_diagnostic() {
    let dump = "\
gv-analyze-trace v1
# seeded violation: cmd-2 starts on engine 0 while cmd-1 is still active
device dev=0 maxk=16
copyb t=1000 dev=0 eng=0 label=cmd-1
copyb t=2000 dev=0 eng=0 label=cmd-2
copye t=3000 dev=0 eng=0 label=cmd-1
copye t=4000 dev=0 eng=0 label=cmd-2
";
    let records = gv_analyze::model::parse_dump(dump).unwrap();
    let report = gv_analyze::analyze(&records);
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly the overlap diagnostic:\n{}",
        report.render()
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.checker, "device");
    assert!(
        d.message.contains("'cmd-2' started while 'cmd-1'"),
        "unexpected message: {}",
        d.message
    );
}

/// A real run's records survive the dump format round-trip, and the
/// re-parsed trace analyzes identically (clean, same event counts).
#[test]
fn dump_roundtrip_preserves_analysis() {
    let tracer = clean_gvm_run(2, 128);
    let records = tracer.analysis_snapshot();
    let text = gv_analyze::model::to_dump(&records);
    let reparsed = gv_analyze::model::parse_dump(&text).unwrap();
    assert_eq!(records.len(), reparsed.len());

    let before = gv_analyze::analyze(&records);
    let after = gv_analyze::analyze(&reparsed);
    assert!(
        after.is_clean(),
        "roundtrip introduced diagnostics:\n{}",
        after.render()
    );
    assert_eq!(before.shm_accesses, after.shm_accesses);
    assert_eq!(before.proto_messages, after.proto_messages);
    assert_eq!(before.device_events, after.device_events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any fault-free schedule — varying rank count and problem size —
    /// analyzes clean. The GVM's synchronization (channels, the STR
    /// barrier) must always produce the happens-before edges that order
    /// its shared-memory traffic.
    #[test]
    fn random_fault_free_schedules_are_clean(nranks in 1usize..=3, elems in 16usize..=96) {
        let tracer = clean_gvm_run(nranks, elems);
        let report = gv_analyze::analyze_tracer(&tracer);
        prop_assert!(report.is_clean(), "diagnostics:\n{}", report.render());
        prop_assert!(tracer.validate_spans().is_empty());
    }
}

/// Scheduler-throughput scenario (non-functional, timed tasks) also
/// analyzes clean — covers the DMA/kernel device records at scale.
#[test]
fn timed_benchmark_run_is_clean() {
    let mut sim = Simulation::new();
    sim.tracer().set_analysis(true);
    let cfg = DeviceConfig::tesla_c2070_paper();
    let device = GpuDevice::install(&mut sim, cfg.clone());
    let cuda = CudaDevice::new(device.clone());
    let node = Node::new(NodeConfig::dual_xeon_x5560());
    let tasks: Vec<_> = (0..3)
        .map(|_| Benchmark::scaled_task(BenchmarkId::VecAdd, &cfg, 100))
        .collect();
    let handle = Gvm::install(&mut sim, &node, &cuda, GvmConfig::new(3), tasks);
    for rank in 0..3 {
        let handle = handle.clone();
        node.spawn_pinned(&mut sim, rank, &format!("spmd-{rank}"), move |ctx| {
            let client = VgpuClient::connect(ctx, &handle, rank);
            let _ = client.run_task(ctx);
        })
        .unwrap();
    }
    let h2 = handle.clone();
    let dev2 = device.clone();
    sim.spawn("supervisor", move |ctx| {
        h2.done.wait(ctx);
        dev2.shutdown(ctx);
    });
    let tracer = sim.tracer();
    sim.run().unwrap();

    let report = gv_analyze::analyze_tracer(&tracer);
    assert!(
        report.is_clean(),
        "unexpected diagnostics:\n{}",
        report.render()
    );
    assert!(report.device_events > 0);
}

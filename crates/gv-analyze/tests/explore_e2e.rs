//! End-to-end checks for the schedule explorer: baselines are clean,
//! exploration covers many distinct schedules, record→replay is bitwise
//! identical, golden concurrency bugs produce exactly one diagnostic each,
//! and (with the `seeded-bug` feature) a planted ordering bug is found,
//! shrunk, and replayed.

use gv_analyze::explore::{explore, find_scenario, run_scripted, ExploreConfig, Mode, Schedule};
use gv_sim::{SimChannel, SimDuration};
use proptest::prelude::*;

const HORIZON: SimDuration = SimDuration::from_secs(10);

/// Every catalog scenario is clean under its default (all-FIFO) schedule.
#[test]
fn baseline_schedules_are_clean() {
    for scenario in gv_analyze::explore::scenarios() {
        let run = scenario.run(&[], HORIZON);
        let diags = run.diagnostics();
        // The seeded-bug scenario is *designed* to be clean at baseline
        // too — only a flipped tie-break trips it.
        assert!(
            diags.is_empty(),
            "scenario '{}' dirty at baseline:\n{:?}",
            scenario.name,
            diags
        );
        assert!(
            run.summary.as_ref().is_some_and(|s| s.completed),
            "scenario '{}' did not complete at baseline",
            scenario.name
        );
    }
}

/// Acceptance: exploring the 2-process VectorAdd scenario with preemption
/// bound 2 covers at least 100 distinct schedules, all green. Choice
/// vectors are unique by DFS construction, so every run is a distinct
/// schedule; the reduction is off here to enumerate the full bounded
/// space.
#[test]
fn vecadd2_exploration_covers_100_distinct_schedules() {
    let scenario = find_scenario("vecadd2").unwrap();
    let cfg = ExploreConfig {
        budget: 400,
        preemption_bound: 2,
        por: false,
        ..ExploreConfig::default()
    };
    let outcome = explore(&scenario, &cfg);
    assert!(
        outcome.counterexample.is_none(),
        "unexpected failure: {:?}",
        outcome.counterexample
    );
    assert!(
        outcome.schedules_run >= 100,
        "only {} schedules run ({} distinct behaviors, {} pruned)",
        outcome.schedules_run,
        outcome.distinct,
        outcome.pruned
    );
    // Many interleavings converge to the same trace, but not all of them:
    // the pick order must actually reach behaviorally different executions.
    assert!(
        outcome.distinct > 1,
        "exploration never left the baseline behavior"
    );
}

/// The quota-pressure scenario actually exercises demand-swap at
/// baseline: the stagger serializes three over-committed sessions, so the
/// trace must carry both a `SwapOut` (rank 1 displacing rank 0's parked
/// working set) and a `SwapIn` (rank 2 restoring rank 0's shape).
#[test]
fn quota_pressure_baseline_swaps_out_and_back_in() {
    use gv_sim::AnalysisRecord;
    let scenario = find_scenario("quota-pressure").unwrap();
    let run = scenario.run(&[], HORIZON);
    assert!(run.diagnostics().is_empty());
    let outs = run
        .records
        .iter()
        .filter(|r| matches!(r, AnalysisRecord::SwapOut { .. }))
        .count();
    let ins = run
        .records
        .iter()
        .filter(|r| matches!(r, AnalysisRecord::SwapIn { .. }))
        .count();
    assert!(outs >= 1, "baseline schedule never swapped out");
    assert!(ins >= 1, "baseline schedule never swapped back in");
}

/// Satellite acceptance: exploring quota pressure with preemption bound 2
/// covers at least 100 distinct schedules with no deadlock between the
/// swap path and admission backpressure (and no other diagnostic) on any
/// of them.
#[test]
fn quota_pressure_exploration_covers_100_schedules_without_deadlock() {
    let scenario = find_scenario("quota-pressure").unwrap();
    let cfg = ExploreConfig {
        budget: 400,
        preemption_bound: 2,
        por: false,
        ..ExploreConfig::default()
    };
    let outcome = explore(&scenario, &cfg);
    assert!(
        outcome.counterexample.is_none(),
        "quota/swap schedule failed: {:?}",
        outcome.counterexample
    );
    assert!(
        outcome.schedules_run >= 100,
        "only {} schedules run ({} distinct behaviors, {} pruned)",
        outcome.schedules_run,
        outcome.distinct,
        outcome.pruned
    );
    assert!(
        outcome.distinct > 1,
        "exploration never left the baseline behavior"
    );
}

/// The vector-clock sleep-set reduction prunes commuting alternatives
/// without changing the verdict.
#[test]
fn por_prunes_commuting_alternatives() {
    let scenario = find_scenario("vecadd2").unwrap();
    let cfg = ExploreConfig {
        budget: 120,
        preemption_bound: 1,
        por: true,
        ..ExploreConfig::default()
    };
    let outcome = explore(&scenario, &cfg);
    assert!(outcome.counterexample.is_none());
    assert!(
        outcome.pruned > 0,
        "reduction never fired over {} runs",
        outcome.schedules_run
    );
}

/// Random-walk mode also runs clean on the fault-injected scenario.
#[test]
fn random_walks_on_faulty_scenario_are_clean() {
    let scenario = find_scenario("vecadd2-faulty").unwrap();
    let cfg = ExploreConfig {
        budget: 12,
        mode: Mode::Random,
        seed: 42,
        ..ExploreConfig::default()
    };
    let outcome = explore(&scenario, &cfg);
    assert!(
        outcome.counterexample.is_none(),
        "unexpected failure: {:?}",
        outcome.counterexample
    );
    assert!(outcome.schedules_run == 12);
}

/// Golden fixture: a two-process channel ring where each process consumes
/// the one message the other sent and then receives again. Both second
/// receives block forever — a cyclic deadlock the checker must report as
/// exactly one diagnostic naming the wait-for cycle.
#[test]
fn golden_cyclic_deadlock_yields_one_diagnostic_with_cycle() {
    let run = run_scripted(&[], HORIZON, |sim| {
        let ab: SimChannel<u32> = SimChannel::unbounded();
        let ba: SimChannel<u32> = SimChannel::unbounded();
        ab.set_label("/ring-ab");
        ba.set_label("/ring-ba");
        {
            let ab = ab.clone();
            let ba = ba.clone();
            sim.spawn("ring-a", move |ctx| {
                ab.send(ctx, 1).unwrap();
                let _ = ba.recv(ctx);
                let _ = ba.recv(ctx); // nothing left to receive: blocks
            });
        }
        sim.spawn("ring-b", move |ctx| {
            ba.send(ctx, 2).unwrap();
            let _ = ab.recv(ctx);
            let _ = ab.recv(ctx); // nothing left to receive: blocks
        });
    });
    assert!(run.error.is_some(), "expected a deadlock");
    let diags = run.diagnostics();
    assert_eq!(diags.len(), 1, "expected exactly one finding:\n{diags:?}");
    let d = &diags[0];
    assert_eq!(d.checker, "deadlock");
    assert!(
        d.message.contains("ring-a -> ring-b -> ring-a")
            || d.message.contains("ring-b -> ring-a -> ring-b"),
        "cycle missing from: {}",
        d.message
    );
    assert!(
        d.message.contains("recv on '/ring-ab'") && d.message.contains("recv on '/ring-ba'"),
        "wait causes missing from: {}",
        d.message
    );
}

/// Golden fixture: a notify delivered before the waiter arrives is dropped,
/// and the waiter then blocks forever. Exactly one lost-wakeup diagnostic —
/// which subsumes the generic deadlock finding.
#[test]
fn golden_lost_wakeup_yields_one_diagnostic() {
    let run = run_scripted(&[], HORIZON, |sim| {
        let cq = gv_sim::CondQueue::labeled("ready-cq");
        {
            let cq = cq.clone();
            sim.spawn("notifier", move |ctx| {
                cq.notify_one(ctx); // no waiter yet: the wakeup is lost
            });
        }
        sim.spawn("waiter", move |ctx| {
            ctx.hold(SimDuration::from_micros(1));
            cq.wait(ctx); // the notify already happened: blocks forever
        });
    });
    let diags = run.diagnostics();
    assert_eq!(diags.len(), 1, "expected exactly one finding:\n{diags:?}");
    let d = &diags[0];
    assert_eq!(d.checker, "lost-wakeup");
    assert!(d.message.contains("ready-cq"), "{}", d.message);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Record→replay round trip: running a scenario under an arbitrary
    /// choice vector and replaying the *recorded* decisions yields a
    /// bitwise-identical execution — same analysis records, same summary,
    /// same decision log.
    #[test]
    fn record_replay_is_bitwise_identical(
        raw in proptest::collection::vec(0u32..3, 0..10)
    ) {
        let scenario = find_scenario("vecadd2").unwrap();
        let first = scenario.run(&raw, HORIZON);
        // Re-script from what the oracle actually decided (the raw vector
        // may be clamped or shorter than the decision sequence).
        let recorded: Vec<u32> = first.decisions.iter().map(|d| d.chosen as u32).collect();
        let second = scenario.run(&recorded, HORIZON);
        prop_assert_eq!(&first.records, &second.records, "analysis traces diverged");
        prop_assert_eq!(&first.summary, &second.summary, "summaries diverged");
        prop_assert_eq!(&first.decisions, &second.decisions, "decision logs diverged");
    }
}

/// A committed `.gvsched` fixture parses and replays clean.
#[test]
fn committed_clean_fixture_replays() {
    let text = include_str!("fixtures/vecadd2-baseline.gvsched");
    let sched = Schedule::decode(text).unwrap();
    assert_eq!(sched.scenario, "vecadd2");
    let result = sched.replay(HORIZON).unwrap();
    assert!(
        result.diagnostics.is_empty(),
        "fixture replay dirty:\n{:?}",
        result.diagnostics
    );
}

/// With the planted bug compiled in: DFS finds the ordering bug within a
/// small budget, shrinks it to a single non-default choice, and the shrunk
/// counterexample replays to the same diagnostic.
#[cfg(feature = "seeded-bug")]
#[test]
fn seeded_bug_is_found_shrunk_and_replayed() {
    let scenario = find_scenario("bug-lost-wakeup").unwrap();
    let outcome = explore(&scenario, &ExploreConfig::default());
    let cex = outcome
        .counterexample
        .expect("explorer must find the planted bug");
    assert_eq!(cex.checker, "lost-wakeup", "{cex:?}");
    assert!(
        cex.choices.iter().filter(|c| **c != 0).count() == 1,
        "counterexample not minimal: {:?}",
        cex.choices
    );

    // The packaged .gvsched round-trips and replays to the same failure.
    let sched = cex.schedule();
    let reparsed = Schedule::decode(&sched.encode()).unwrap();
    let result = reparsed.replay(HORIZON).unwrap();
    assert_eq!(result.expected_hit, Some(true), "{:?}", result.diagnostics);

    // And the committed fixture pins the same counterexample.
    let fixture = Schedule::decode(include_str!("fixtures/bug-lost-wakeup.gvsched")).unwrap();
    let replayed = fixture.replay(HORIZON).unwrap();
    assert_eq!(
        replayed.expected_hit,
        Some(true),
        "{:?}",
        replayed.diagnostics
    );
}

//! Criterion microbenchmark for [`CoalescePlan`] construction cost.
//!
//! The planner runs on the GVM flush path — inside the simulated host's
//! critical section — so its *real* (wall-clock) cost must stay trivial
//! as the co-flushed rank count grows. This bench is offline-safe: it
//! touches no simulation, no files, and no device model; it just builds
//! member slices in three lease-layout shapes and times the pure
//! partition.
//!
//! * `adjacent` — every lease placed back-to-back: one maximal run, the
//!   planner's happy path (what the contiguity-aware pool produces).
//! * `fragmented` — a hole after every lease: all singletons, the
//!   worst case for run-extension checks.
//! * `mixed` — every third member ineligible (quota-skipped or
//!   multi-span): alternating short runs and singletons.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gv_mem::{CoalesceConfig, CoalesceMember, CoalescePlan};

/// Member slices per layout at one rank count. 64 KiB payloads in 64 KiB
/// size classes — the sweep's small-payload point.
fn members(n: usize, layout: &str) -> Vec<CoalesceMember> {
    const CAP: u64 = 64 << 10;
    (0..n)
        .map(|i| {
            let stride = if layout == "fragmented" { 2 * CAP } else { CAP };
            CoalesceMember {
                rank: i,
                bytes: CAP,
                place: i as u64 * stride,
                cap: CAP,
                buf: i as u64 + 1,
                generation: 1,
                eligible: layout != "mixed" || i % 3 != 2,
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let cfg = CoalesceConfig::on();
    let mut g = c.benchmark_group("coalesce_planner");
    for n in [8usize, 64, 512, 4096] {
        for layout in ["adjacent", "fragmented", "mixed"] {
            let input = members(n, layout);
            g.bench_function(&format!("{layout}_{n}"), |b| {
                b.iter(|| CoalescePlan::plan(black_box(&cfg), black_box(&input)))
            });
        }
    }
    g.finish();

    // Print the partition shape once per count so a bench run doubles as
    // a sanity table (matches the other benches' println convention).
    for n in [8usize, 64, 512, 4096] {
        let plan = CoalescePlan::plan(&cfg, &members(n, "adjacent"));
        println!(
            "planner[adjacent/{n}]: {} runs, {} fused members (max_group {})",
            plan.runs.len(),
            plan.fused_members(),
            cfg.max_group
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion benchmark for the Table III pipeline: experimental vs
//! theoretical speedups at full node width.

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::scenario::Scenario;
use gv_harness::turnaround;
use gv_kernels::BenchmarkId;

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    for id in [BenchmarkId::VecAdd, BenchmarkId::Ep] {
        let p = turnaround::at_n(&sc, id, 8, 16);
        println!(
            "table3[{id:?}]: experimental speedup @8 = {:.3} (scaled 1/16)",
            p.speedup()
        );
    }
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("speedup_at_8_vecadd_scaled16", |b| {
        b.iter(|| turnaround::at_n(&sc, BenchmarkId::VecAdd, 8, 16))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

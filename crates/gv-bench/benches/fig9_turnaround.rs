//! Criterion benchmark for the Fig. 9 sweep (microbenchmarks, 1–8 procs).

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::scenario::Scenario;
use gv_harness::turnaround::{sweep, TurnaroundConfig};
use gv_kernels::BenchmarkId;

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    for id in [BenchmarkId::VecAdd, BenchmarkId::Ep] {
        let series = sweep(
            &sc,
            &TurnaroundConfig {
                benchmark: id,
                max_procs: 8,
                scale_down: 32,
            },
        );
        for p in &series.points {
            println!(
                "fig9[{}] n={}: no-vt {:.1} ms, vt {:.1} ms, S {:.3}",
                series.benchmark,
                p.nprocs,
                p.no_vt_ms,
                p.vt_ms,
                p.speedup()
            );
        }
    }
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("vecadd_sweep_scaled32", |b| {
        b.iter(|| {
            sweep(
                &sc,
                &TurnaroundConfig {
                    benchmark: BenchmarkId::VecAdd,
                    max_procs: 4,
                    scale_down: 32,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion benchmark for the Fig. 10 overhead sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::overhead;
use gv_harness::scenario::Scenario;

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    for p in overhead::sweep(&sc, &[25, 100, 400]) {
        println!(
            "fig10 {:.0} MB: turnaround {:.1} ms, base {:.1} ms, overhead {:.1}%",
            p.data_mb,
            p.turnaround_ms,
            p.base_layer_ms,
            p.overhead_frac * 100.0
        );
    }
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("overhead_point_100mb", |b| {
        b.iter(|| overhead::sweep(&sc, &[100]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

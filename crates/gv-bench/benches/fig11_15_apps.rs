//! Criterion benchmark for the Figs. 11–15 application sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::scenario::Scenario;
use gv_harness::turnaround::{sweep, TurnaroundConfig};
use gv_kernels::{Benchmark, BenchmarkId};

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    for id in BenchmarkId::applications() {
        let series = sweep(
            &sc,
            &TurnaroundConfig {
                benchmark: id,
                max_procs: 8,
                scale_down: 32,
            },
        );
        println!(
            "fig11-15[{}]: S@8 = {:.3} (scaled 1/32)",
            Benchmark::describe(id).name,
            series.final_speedup()
        );
    }
    let mut g = c.benchmark_group("fig11_15");
    g.sample_size(10);
    g.bench_function("cg_sweep_scaled32", |b| {
        b.iter(|| {
            sweep(
                &sc,
                &TurnaroundConfig {
                    benchmark: BenchmarkId::Cg,
                    max_procs: 4,
                    scale_down: 32,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

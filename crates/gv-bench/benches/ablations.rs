//! Criterion benchmark for the mechanism-ablation sweep (extension).

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::ablation::{self, Ablation};
use gv_harness::scenario::Scenario;
use gv_kernels::BenchmarkId;

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    for p in ablation::sweep(&sc, BenchmarkId::Ep, 8, 32) {
        println!(
            "ablation[EP/{}]: vt {:.1} ms, speedup {:.3}",
            p.ablation, p.vt_ms, p.speedup
        );
    }
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ep_no_cke_scaled32", |b| {
        b.iter(|| {
            ablation::run_virtualized_ablated(
                &sc,
                BenchmarkId::Ep,
                4,
                32,
                Ablation::NoConcurrentKernels,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

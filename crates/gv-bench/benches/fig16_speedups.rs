//! Criterion benchmark for the Fig. 16 speedup summary.

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::scenario::Scenario;
use gv_harness::turnaround;
use gv_kernels::{Benchmark, BenchmarkId};

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    for id in BenchmarkId::applications() {
        let p = turnaround::at_n(&sc, id, 8, 32);
        println!(
            "fig16[{}]: speedup @8 = {:.3} (scaled 1/32)",
            Benchmark::describe(id).name,
            p.speedup()
        );
    }
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("mg_point_scaled32", |b| {
        b.iter(|| turnaround::at_n(&sc, BenchmarkId::Mg, 8, 32))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Substrate microbenchmarks: simulation-engine event throughput, IPC
//! primitives, the device allocator, and the numerical kernels' host cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gv_gpu::DeviceMemory;
use gv_kernels::{blackscholes, cg, ep, mg};
use gv_sim::{SimChannel, SimDuration, Simulation};

fn sim_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    g.sample_size(20);
    // Event throughput: two processes ping-pong through a channel.
    g.bench_function("pingpong_1000_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let ch: SimChannel<u32> = SimChannel::unbounded();
            let ch2 = ch.clone();
            sim.spawn("producer", move |ctx| {
                for i in 0..500u32 {
                    ch2.send(ctx, i).unwrap();
                    ctx.hold(SimDuration::from_nanos(10));
                }
            });
            sim.spawn("consumer", move |ctx| {
                for _ in 0..500 {
                    ch.recv(ctx).unwrap();
                }
            });
            sim.run().unwrap()
        })
    });
    g.bench_function("spawn_join_100_processes", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            for i in 0..100 {
                sim.spawn(&format!("p{i}"), |ctx| {
                    ctx.hold(SimDuration::from_micros(1));
                });
            }
            sim.run().unwrap()
        })
    });
    g.finish();
}

fn allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator");
    g.bench_function("alloc_free_churn_1000", |b| {
        b.iter_batched(
            || DeviceMemory::new(64 << 20),
            |mut mem| {
                let mut live = Vec::new();
                for i in 0..1000u64 {
                    live.push(mem.alloc(1024 + (i % 7) * 512).unwrap());
                    if i % 3 == 0 {
                        let p = live.swap_remove((i as usize * 7) % live.len());
                        mem.dealloc(p).unwrap();
                    }
                }
                for p in live {
                    mem.dealloc(p).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn kernels_host(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_host");
    g.sample_size(10);
    g.bench_function("ep_reference_2^16", |b| b.iter(|| ep::reference(16)));
    g.bench_function("mg_vcycle_16^3", |b| {
        let v = mg::class_s_rhs(16);
        let u = mg::Grid3::zeros(16);
        b.iter(|| mg::v_cycle(&u, &v))
    });
    g.bench_function("cg_solve_300x25", |b| {
        let a = cg::make_matrix(300, 7, 42);
        let x = vec![1.0; 300];
        b.iter(|| cg::cg_solve(&a, &x, 25))
    });
    g.bench_function("blackscholes_10k", |b| {
        let (s, x, t) = blackscholes::generate_options(10_000, 1);
        b.iter(|| blackscholes::reference(&s, &x, &t))
    });
    g.finish();
}

criterion_group!(benches, sim_engine, allocator, kernels_host);
criterion_main!(benches);

//! Criterion benchmark for the Table II profiling pipeline: measures the
//! host cost of simulating the microbenchmark profiles and prints the
//! regenerated table rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use gv_harness::profile;
use gv_harness::scenario::Scenario;
use gv_kernels::BenchmarkId;

fn bench(c: &mut Criterion) {
    let sc = Scenario::default();
    // Print the paper rows once per bench invocation.
    for id in [BenchmarkId::VecAdd, BenchmarkId::Ep] {
        let m = profile::measure(&sc, id, 16);
        println!(
            "table2[{}]: Tinit={:.1} Tctx={:.1} Tin={:.3} Tcomp={:.3} Tout={:.3} (ms, scaled 1/16)",
            m.benchmark,
            m.profile.t_init,
            m.profile.t_ctx_switch,
            m.profile.t_data_in,
            m.profile.t_comp,
            m.profile.t_data_out
        );
    }
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("profile_vecadd_scaled16", |b| {
        b.iter(|| profile::measure(&sc, BenchmarkId::VecAdd, 16))
    });
    g.bench_function("profile_ep_scaled16", |b| {
        b.iter(|| profile::measure(&sc, BenchmarkId::Ep, 16))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

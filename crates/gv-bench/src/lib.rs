//! # gv-bench — Criterion benchmark suite
//!
//! See `benches/`: one group per paper table/figure (`table2_profiles`,
//! `table3_speedup`, `fig9_turnaround`, `fig10_overhead`, `fig11_15_apps`,
//! `fig16_speedups`), mechanism ablations (`ablations`), and substrate
//! microbenches (`substrates`). Each paper-artifact bench prints the
//! regenerated series once, then measures the host cost of producing it.

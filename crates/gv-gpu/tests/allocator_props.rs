//! Property tests for the device memory allocator: arbitrary alloc/free
//! interleavings never overlap allocations, never leak, and always
//! coalesce back to a pristine heap.

use gv_gpu::{DeviceMemory, DevicePtr, MemError, DEVICE_ALLOC_ALIGN};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Free the i-th live allocation (mod live count).
    Free(usize),
    /// Write a marker into the i-th live allocation and read it back.
    Touch(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100_000).prop_map(Op::Alloc),
        any::<usize>().prop_map(Op::Free),
        any::<usize>().prop_map(Op::Touch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alloc_free_interleavings_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        const CAPACITY: u64 = 4 << 20;
        let mut mem = DeviceMemory::new(CAPACITY);
        let mut live: Vec<(DevicePtr, u64, u8)> = Vec::new(); // ptr, len, marker
        let mut marker: u8 = 1;

        for op in ops {
            match op {
                Op::Alloc(bytes) => {
                    match mem.alloc(bytes) {
                        Ok(ptr) => {
                            // Stamp the first byte so overlap would corrupt
                            // some other allocation's marker.
                            mem.write_bytes(ptr, &[marker]).unwrap();
                            live.push((ptr, bytes, marker));
                            marker = marker.wrapping_add(1).max(1);
                        }
                        Err(MemError::OutOfMemory { .. }) => {
                            // Requests must only fail when free space is
                            // genuinely short of the aligned size.
                            let aligned = bytes.max(1).div_ceil(DEVICE_ALLOC_ALIGN) * DEVICE_ALLOC_ALIGN;
                            prop_assert!(mem.free() < aligned || aligned > CAPACITY / 2,
                                "spurious OOM: {} free, {} requested", mem.free(), aligned);
                        }
                        Err(e) => prop_assert!(false, "unexpected alloc error {e:?}"),
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (ptr, _, _) = live.remove(i % live.len());
                        mem.dealloc(ptr).unwrap();
                    }
                }
                Op::Touch(i) => {
                    if !live.is_empty() {
                        let (ptr, _, m) = live[i % live.len()];
                        let mut buf = [0u8; 1];
                        mem.read_bytes(ptr, &mut buf).unwrap();
                        prop_assert_eq!(buf[0], m, "allocation marker corrupted");
                    }
                }
            }
            // Accounting invariant.
            prop_assert!(mem.used() <= CAPACITY);
            prop_assert_eq!(mem.allocation_count(), live.len());
        }

        // Every marker still intact at the end.
        for &(ptr, _, m) in &live {
            let mut buf = [0u8; 1];
            mem.read_bytes(ptr, &mut buf).unwrap();
            prop_assert_eq!(buf[0], m);
        }

        // Free everything: heap returns to pristine, fully coalesced state.
        for (ptr, _, _) in live.drain(..) {
            mem.dealloc(ptr).unwrap();
        }
        prop_assert_eq!(mem.used(), 0);
        let whole = mem.alloc(CAPACITY).expect("heap must coalesce completely");
        mem.dealloc(whole).unwrap();
    }

    #[test]
    fn reads_never_observe_other_allocations(sizes in prop::collection::vec(1u64..4096, 2..20)) {
        let mut mem = DeviceMemory::new(16 << 20);
        let ptrs: Vec<(DevicePtr, u64)> = sizes
            .iter()
            .map(|&s| (mem.alloc(s).unwrap(), s))
            .collect();
        // Fill each allocation with its index.
        for (i, &(ptr, len)) in ptrs.iter().enumerate() {
            mem.write_bytes(ptr, &vec![i as u8 + 1; len as usize]).unwrap();
        }
        // Each reads back exactly its own fill.
        for (i, &(ptr, len)) in ptrs.iter().enumerate() {
            let mut buf = vec![0u8; len as usize];
            mem.read_bytes(ptr, &mut buf).unwrap();
            prop_assert!(buf.iter().all(|&b| b == i as u8 + 1));
        }
    }
}

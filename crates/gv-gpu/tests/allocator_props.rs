//! Property tests for the device memory allocator: arbitrary alloc/free
//! interleavings never overlap allocations, never leak, and always
//! coalesce back to a pristine heap.

use gv_gpu::{DeviceMemory, DevicePtr, MemError, DEVICE_ALLOC_ALIGN};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Free the i-th live allocation (mod live count).
    Free(usize),
    /// Write a marker into the i-th live allocation and read it back.
    Touch(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100_000).prop_map(Op::Alloc),
        any::<usize>().prop_map(Op::Free),
        any::<usize>().prop_map(Op::Touch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alloc_free_interleavings_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        const CAPACITY: u64 = 4 << 20;
        let mut mem = DeviceMemory::new(CAPACITY);
        let mut live: Vec<(DevicePtr, u64, u8)> = Vec::new(); // ptr, len, marker
        let mut marker: u8 = 1;

        for op in ops {
            match op {
                Op::Alloc(bytes) => {
                    match mem.alloc(bytes) {
                        Ok(ptr) => {
                            // Stamp the first byte so overlap would corrupt
                            // some other allocation's marker.
                            mem.write_bytes(ptr, &[marker]).unwrap();
                            live.push((ptr, bytes, marker));
                            marker = marker.wrapping_add(1).max(1);
                        }
                        Err(MemError::OutOfMemory { .. }) => {
                            // Requests must only fail when free space is
                            // genuinely short of the aligned size.
                            let aligned = bytes.max(1).div_ceil(DEVICE_ALLOC_ALIGN) * DEVICE_ALLOC_ALIGN;
                            prop_assert!(mem.free() < aligned || aligned > CAPACITY / 2,
                                "spurious OOM: {} free, {} requested", mem.free(), aligned);
                        }
                        Err(e) => prop_assert!(false, "unexpected alloc error {e:?}"),
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (ptr, _, _) = live.remove(i % live.len());
                        mem.dealloc(ptr).unwrap();
                    }
                }
                Op::Touch(i) => {
                    if !live.is_empty() {
                        let (ptr, _, m) = live[i % live.len()];
                        let mut buf = [0u8; 1];
                        mem.read_bytes(ptr, &mut buf).unwrap();
                        prop_assert_eq!(buf[0], m, "allocation marker corrupted");
                    }
                }
            }
            // Accounting invariant.
            prop_assert!(mem.used() <= CAPACITY);
            prop_assert_eq!(mem.allocation_count(), live.len());
        }

        // Every marker still intact at the end.
        for &(ptr, _, m) in &live {
            let mut buf = [0u8; 1];
            mem.read_bytes(ptr, &mut buf).unwrap();
            prop_assert_eq!(buf[0], m);
        }

        // Free everything: heap returns to pristine, fully coalesced state.
        for (ptr, _, _) in live.drain(..) {
            mem.dealloc(ptr).unwrap();
        }
        prop_assert_eq!(mem.used(), 0);
        let whole = mem.alloc(CAPACITY).expect("heap must coalesce completely");
        mem.dealloc(whole).unwrap();
    }

    #[test]
    fn allocations_are_256_byte_aligned(sizes in prop::collection::vec(1u64..100_000, 1..40)) {
        let mut mem = DeviceMemory::new(16 << 20);
        for s in sizes {
            if let Ok(ptr) = mem.alloc(s) {
                let off = mem.region_offset(ptr).expect("live allocation");
                prop_assert_eq!(off % DEVICE_ALLOC_ALIGN, 0,
                    "allocation at offset {} not {}-byte aligned", off, DEVICE_ALLOC_ALIGN);
            }
        }
    }

    #[test]
    fn first_fit_reuses_the_lowest_hole(sizes in prop::collection::vec(1u64..10_000, 3..20),
                                        reuse_frac in 1u64..=100) {
        // Allocate a contiguous run, punch a hole at the lowest offset,
        // then any request that fits the hole must be placed exactly there
        // — first fit always prefers the lowest adequate free region.
        let mut mem = DeviceMemory::new(16 << 20);
        let ptrs: Vec<(DevicePtr, u64)> = sizes.iter().map(|&s| (mem.alloc(s).unwrap(), s)).collect();
        let (lowest, lowest_bytes) = *ptrs
            .iter()
            .min_by_key(|(p, _)| mem.region_offset(*p).unwrap())
            .unwrap();
        let hole_off = mem.region_offset(lowest).unwrap();
        mem.dealloc(lowest).unwrap();
        let request = (lowest_bytes * reuse_frac).div_ceil(100).max(1);
        let again = mem.alloc(request).unwrap();
        prop_assert_eq!(mem.region_offset(again).unwrap(), hole_off,
            "first fit must fill the lowest hole");
    }

    #[test]
    fn fragmented_oom_reports_exact_free_bytes(nblocks in 3usize..16) {
        // Fill the heap with equal blocks, free every other one: total
        // free is large but no hole fits a double block. The OOM error
        // must report the true (fragmented) free total, and a hole-sized
        // request must still succeed.
        let block = 4096u64;
        let cap = block * nblocks as u64;
        let mut mem = DeviceMemory::new(cap);
        let ptrs: Vec<DevicePtr> = (0..nblocks).map(|_| mem.alloc(block).unwrap()).collect();
        let mut holes = 0u64;
        for (i, p) in ptrs.iter().enumerate() {
            if i % 2 == 0 {
                mem.dealloc(*p).unwrap();
                holes += block;
            }
        }
        match mem.alloc(block * 2) {
            Err(MemError::OutOfMemory { requested, free }) => {
                prop_assert_eq!(requested, block * 2);
                prop_assert_eq!(free, holes, "OOM must report the fragmented free total");
                prop_assert_eq!(free, mem.free());
            }
            Ok(_) => prop_assert!(false, "double block cannot fit any single hole"),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
        // A hole-sized allocation still fits.
        prop_assert!(mem.alloc(block).is_ok());
    }

    #[test]
    fn used_equals_sum_of_live_aligned_sizes(ops in prop::collection::vec(op_strategy(), 1..120)) {
        // Alloc/free balance: at every step the accounting equals the sum
        // of aligned live sizes, and a full drain restores the pristine heap.
        const CAPACITY: u64 = 4 << 20;
        let mut mem = DeviceMemory::new(CAPACITY);
        let mut live: Vec<(DevicePtr, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(bytes) => {
                    if let Ok(ptr) = mem.alloc(bytes) {
                        live.push((ptr, bytes));
                    }
                }
                Op::Free(i) | Op::Touch(i) => {
                    if !live.is_empty() {
                        let (ptr, _) = live.remove(i % live.len());
                        mem.dealloc(ptr).unwrap();
                    }
                }
            }
            let aligned: u64 = live
                .iter()
                .map(|(_, b)| (*b).max(1).div_ceil(DEVICE_ALLOC_ALIGN) * DEVICE_ALLOC_ALIGN)
                .sum();
            prop_assert_eq!(mem.used(), aligned, "used() out of balance with live set");
            prop_assert_eq!(mem.free(), CAPACITY - aligned);
        }
        for (ptr, _) in live.drain(..) {
            mem.dealloc(ptr).unwrap();
        }
        prop_assert_eq!(mem.used(), 0);
        prop_assert_eq!(mem.free(), CAPACITY);
    }

    #[test]
    fn reads_never_observe_other_allocations(sizes in prop::collection::vec(1u64..4096, 2..20)) {
        let mut mem = DeviceMemory::new(16 << 20);
        let ptrs: Vec<(DevicePtr, u64)> = sizes
            .iter()
            .map(|&s| (mem.alloc(s).unwrap(), s))
            .collect();
        // Fill each allocation with its index.
        for (i, &(ptr, len)) in ptrs.iter().enumerate() {
            mem.write_bytes(ptr, &vec![i as u8 + 1; len as usize]).unwrap();
        }
        // Each reads back exactly its own fill.
        for (i, &(ptr, len)) in ptrs.iter().enumerate() {
            let mut buf = vec![0u8; len as usize];
            mem.read_bytes(ptr, &mut buf).unwrap();
            prop_assert!(buf.iter().all(|&b| b == i as u8 + 1));
        }
    }
}

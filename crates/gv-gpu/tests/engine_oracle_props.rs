//! The strongest correctness property of the device model: for *any*
//! single kernel, the event-driven engine's execution time equals the
//! closed-form wave-exact oracle (`estimate_kernel_time`). The two are
//! implemented independently — the engine simulates block-by-block
//! processor sharing, the oracle does wave algebra — so agreement across
//! random geometries pins both.

use gv_gpu::{estimate_kernel_time, CommandKind, DeviceConfig, GpuDevice, KernelDesc};
use gv_sim::Simulation;
use proptest::prelude::*;

fn run_engine(cfg: &DeviceConfig, k: KernelDesc) -> f64 {
    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, cfg.clone());
    let d = dev.clone();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(0.0f64));
    let out2 = out.clone();
    sim.spawn("host", move |ctx| {
        let gctx = d.create_context("p");
        let s = d.create_stream(gctx);
        let t0 = ctx.now();
        let h = d.submit(ctx, gctx, s, CommandKind::Kernel(k)).unwrap();
        h.wait(ctx);
        *out2.lock() = ctx.now().duration_since(t0).as_secs_f64();
        d.shutdown(ctx);
    });
    sim.run().unwrap();
    let v = *out.lock();
    v
}

/// A previously checked-in proptest regression seed (grid = 57,
/// tpb_warps = 2, demand_exp = 4 in `concurrency_bounds_for_kernel_pairs`'
/// domain) re-pinned as a plain deterministic test. The stored seed entry
/// was retired after exhaustive sweeps of the whole pair-bounds and oracle
/// domains found zero violations; this keeps the exact case covered on
/// every run regardless of proptest's seed file handling.
#[test]
fn retired_regression_case_grid57_tpb2_exp4() {
    let cfg = DeviceConfig::tesla_c2070_paper();
    let (grid, tpb_warps, demand_exp) = (57u64, 2u32, 4u32);
    let mut k = KernelDesc::new("pair", grid, tpb_warps * 32).regs(16);
    k.block_demand_cycles = 10f64.powi(demand_exp as i32);
    let single = estimate_kernel_time(&cfg, &k).as_secs_f64();
    assert!(single > 1e-9);

    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, cfg.clone());
    let d = dev.clone();
    let k2 = k.clone();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(0.0f64));
    let out2 = out.clone();
    sim.spawn("host", move |ctx| {
        let gctx = d.create_context("p");
        let s1 = d.create_stream(gctx);
        let s2 = d.create_stream(gctx);
        let t0 = ctx.now();
        let h1 = d.submit(ctx, gctx, s1, CommandKind::Kernel(k)).unwrap();
        let h2 = d.submit(ctx, gctx, s2, CommandKind::Kernel(k2)).unwrap();
        h1.wait(ctx);
        h2.wait(ctx);
        *out2.lock() = ctx.now().duration_since(t0).as_secs_f64();
        d.shutdown(ctx);
    });
    sim.run().unwrap();
    let pair = *out.lock();
    let straggler =
        10f64.powi(demand_exp as i32) / (cfg.clock_hz() * cfg.latency_efficiency(tpb_warps));
    assert!(
        pair <= 2.0 * single + straggler + 1e-9,
        "pair {pair:.9}s must not exceed 2x single {single:.9}s + straggler {straggler:.9}s"
    );
    assert!(
        pair >= single * (1.0 - 1e-6),
        "pair {pair:.9}s cannot beat one kernel alone {single:.9}s"
    );
}

proptest! {
    // Each case spins up threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_for_random_kernels(
        grid in 1u64..400,
        tpb_warps in 1u32..12,          // 32..384 threads
        regs in 1u32..40,
        smem_kb in 0u64..16,
        demand_exp in 4u32..8,          // 1e4..1e7 cycles per block
    ) {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let mut k = KernelDesc::new("prop", grid, tpb_warps * 32)
            .regs(regs)
            .smem(smem_kb * 1024);
        k.block_demand_cycles = 10f64.powi(demand_exp as i32);
        let oracle = estimate_kernel_time(&cfg, &k).as_secs_f64();
        prop_assume!(oracle > 0.0);
        let engine = run_engine(&cfg, k);
        // The engine schedules each wave's completion on the ns-quantized
        // simulated clock (+1 ns rounding guard per wave), so allow a
        // proportional slack on top of a 1e-3 floor.
        let rel = (engine - oracle).abs() / oracle;
        prop_assert!(
            rel < 1e-3,
            "grid={grid} tpb={} regs={regs} smem={}K demand=1e{demand_exp}: \
             engine {engine:.9}s vs oracle {oracle:.9}s ({rel:.2e} rel)",
            tpb_warps * 32,
            smem_kb
        );
    }

    /// Work-conservation bounds for two identical kernels in different
    /// streams: never faster than one kernel alone, and never slower than
    /// running them back-to-back *plus one straggler wave* — co-scheduling
    /// can push a handful of blocks into an extra, low-occupancy tail wave
    /// (the classic GPU tail effect), which serial execution avoids.
    #[test]
    fn concurrency_bounds_for_kernel_pairs(
        grid in 1u64..100,
        tpb_warps in 1u32..8,
        demand_exp in 4u32..7,
    ) {
        let cfg = DeviceConfig::tesla_c2070_paper();
        let mut k = KernelDesc::new("pair", grid, tpb_warps * 32).regs(16);
        k.block_demand_cycles = 10f64.powi(demand_exp as i32);
        let single = estimate_kernel_time(&cfg, &k).as_secs_f64();
        prop_assume!(single > 1e-9);

        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, cfg.clone());
        let d = dev.clone();
        let k2 = k.clone();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(0.0f64));
        let out2 = out.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s1 = d.create_stream(gctx);
            let s2 = d.create_stream(gctx);
            let t0 = ctx.now();
            let h1 = d.submit(ctx, gctx, s1, CommandKind::Kernel(k)).unwrap();
            let h2 = d.submit(ctx, gctx, s2, CommandKind::Kernel(k2)).unwrap();
            h1.wait(ctx);
            h2.wait(ctx);
            *out2.lock() = ctx.now().duration_since(t0).as_secs_f64();
            d.shutdown(ctx);
        });
        sim.run().unwrap();
        let pair = *out.lock();
        // Straggler slack: one block alone on an SM at its (possibly
        // latency-limited) solo efficiency.
        let wpb = tpb_warps;
        let straggler = 10f64.powi(demand_exp as i32)
            / (cfg.clock_hz() * cfg.latency_efficiency(wpb));
        prop_assert!(
            pair <= 2.0 * single + straggler + 1e-9,
            "pair {pair:.9}s must not exceed 2× single {single:.9}s + straggler {straggler:.9}s"
        );
        prop_assert!(
            pair >= single * (1.0 - 1e-6),
            "pair {pair:.9}s cannot beat one kernel alone {single:.9}s"
        );
    }
}

//! Scheduler edge cases: dispatch ordering, the context-hold grace window,
//! heterogeneous processor sharing, and the unified-copy-engine ablation.

use gv_gpu::{CommandKind, ComputeMode, DeviceConfig, GpuDevice, KernelDesc};
use gv_sim::{SimDuration, Simulation};

fn tiny() -> DeviceConfig {
    DeviceConfig::test_tiny()
}

/// Head-of-line dispatch: a huge kernel admitted first must finish its
/// dispatch before a later kernel's blocks backfill — but once the big
/// kernel's blocks are all placed or done, the small one proceeds.
#[test]
fn head_of_line_dispatch_is_in_order() {
    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, tiny());
    let d = dev.clone();
    sim.spawn("host", move |ctx| {
        let gctx = d.create_context("p");
        let s1 = d.create_stream(gctx);
        let s2 = d.create_stream(gctx);
        // Big kernel: 8 blocks (device holds 4 resident) of 1 ms each at
        // full rate; 32 threads → eff 1/4 → long occupancy.
        let mut big = KernelDesc::new("big", 8, 32).regs(1);
        big.block_demand_cycles = 1.0e6;
        // Small kernel: 1 block, cheap.
        let mut small = KernelDesc::new("small", 1, 32).regs(1);
        small.block_demand_cycles = 1.0e5;
        let t0 = ctx.now();
        let h_big = d.submit(ctx, gctx, s1, CommandKind::Kernel(big)).unwrap();
        let h_small = d.submit(ctx, gctx, s2, CommandKind::Kernel(small)).unwrap();
        h_big.wait(ctx);
        let t_big = ctx.now().duration_since(t0).as_millis_f64();
        h_small.wait(ctx);
        let t_small = ctx.now().duration_since(t0).as_millis_f64();
        // Strict in-order dispatch: the big kernel's 8 blocks fill the
        // 4-slot device for two 4 ms waves; the small kernel's single
        // block is held behind them (no backfill past a stalled elder)
        // and only then runs its 0.4 ms.
        assert!((t_big - 8.0).abs() < 0.05, "big: {t_big} ms");
        assert!(
            t_small > t_big && (t_small - 8.4).abs() < 0.1,
            "small must dispatch only after the big kernel drains: {t_small} ms"
        );
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// The grace window: a process that keeps feeding its context work within
/// the hold period never loses the device, even though another context has
/// work pending the whole time.
#[test]
fn grace_window_prevents_thrashing() {
    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, tiny());
    let d = dev.clone();
    let d2 = dev.clone();
    sim.spawn("feeder", move |ctx| {
        let gctx = d.create_context("fast");
        let s = d.create_stream(gctx);
        for _ in 0..5 {
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 1.0e5; // 0.4 ms at eff 1/4
            let h = d.submit(ctx, gctx, s, CommandKind::Kernel(k)).unwrap();
            h.wait(ctx);
            // Resume within the 50 µs grace window.
            ctx.hold(SimDuration::from_micros(10));
        }
    });
    sim.spawn("rival", move |ctx| {
        ctx.hold(SimDuration::from_micros(100));
        let gctx = d2.create_context("rival");
        let s = d2.create_stream(gctx);
        let mut k = KernelDesc::new("r", 1, 32).regs(1);
        k.block_demand_cycles = 1.0e5;
        let h = d2.submit(ctx, gctx, s, CommandKind::Kernel(k)).unwrap();
        h.wait(ctx);
        // Exactly one switch to us after the feeder goes quiet; never a
        // ping-pong in the middle of the feeder's burst.
        assert_eq!(d2.stats().ctx_switches, 1);
        d2.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// Heterogeneous processor sharing: a light block and a heavy block share
/// an SM; the light one exits early and the heavy one then speeds up.
/// Work conservation: total busy cycles equal the sum of demands.
#[test]
fn heterogeneous_blocks_share_and_conserve_work() {
    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, tiny());
    let d = dev.clone();
    sim.spawn("host", move |ctx| {
        let gctx = d.create_context("p");
        let s1 = d.create_stream(gctx);
        let s2 = d.create_stream(gctx);
        // Both 128-thread blocks (4 warps = full eff on test_tiny) so the
        // math is exact: two resident blocks share rate 1/2 each.
        let mut heavy = KernelDesc::new("heavy", 1, 128).regs(1);
        heavy.block_demand_cycles = 3.0e6;
        let mut light = KernelDesc::new("light", 1, 128).regs(1);
        light.block_demand_cycles = 1.0e6;
        // Force same SM: device has 2 SMs, but least-loaded placement puts
        // them on different SMs — so instead verify completion times for
        // the different-SM case: each runs at full rate alone.
        let t0 = ctx.now();
        let h1 = d.submit(ctx, gctx, s1, CommandKind::Kernel(heavy)).unwrap();
        let h2 = d.submit(ctx, gctx, s2, CommandKind::Kernel(light)).unwrap();
        h2.wait(ctx);
        let t_light = ctx.now().duration_since(t0).as_millis_f64();
        h1.wait(ctx);
        let t_heavy = ctx.now().duration_since(t0).as_millis_f64();
        // test_tiny clock 1 GHz, eff(4 warps) = 1: 1 ms and 3 ms.
        assert!((t_light - 1.0).abs() < 0.01, "light: {t_light} ms");
        assert!((t_heavy - 3.0).abs() < 0.01, "heavy: {t_heavy} ms");
        let stats = d.stats();
        assert!((stats.sm_busy_cycles - 4.0e6).abs() / 4.0e6 < 1e-6);
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// Unified copy engine: H2D and D2H serialize on one engine.
#[test]
fn unified_copy_engine_serializes_directions() {
    let mut cfg = tiny();
    cfg.unified_copy_engine = true;
    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, cfg);
    let d = dev.clone();
    sim.spawn("host", move |ctx| {
        let gctx = d.create_context("p");
        let s1 = d.create_stream(gctx);
        let s2 = d.create_stream(gctx);
        let a = d.alloc(8 << 20).unwrap();
        let b = d.alloc(8 << 20).unwrap();
        let bytes = 8u64 << 20; // 8 MiB at 1 GB/s ≈ 8.39 ms each
        let h1 = d
            .submit(
                ctx,
                gctx,
                s1,
                CommandKind::CopyH2D {
                    dst: a,
                    bytes,
                    data: None,
                    pinned: true,
                },
            )
            .unwrap();
        let h2 = d
            .submit(
                ctx,
                gctx,
                s2,
                CommandKind::CopyD2H {
                    src: b,
                    bytes,
                    sink: None,
                    sink_offset: 0,
                    pinned: true,
                },
            )
            .unwrap();
        h1.wait(ctx);
        h2.wait(ctx);
        let t = ctx.now().as_millis_f64();
        assert!(
            t > 16.0,
            "one engine must serialize opposite directions, got {t} ms"
        );
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

/// Exclusive mode interacts correctly with the scheduler: a single context
/// device never records a switch no matter how many streams churn.
#[test]
fn exclusive_single_context_never_switches() {
    let mut cfg = tiny();
    cfg.compute_mode = ComputeMode::Exclusive;
    let mut sim = Simulation::new();
    let dev = GpuDevice::install(&mut sim, cfg);
    let d = dev.clone();
    sim.spawn("host", move |ctx| {
        let gctx = d.create_context("only");
        let streams: Vec<_> = (0..4).map(|_| d.create_stream(gctx)).collect();
        for (i, &s) in streams.iter().enumerate() {
            let mut k = KernelDesc::new(format!("k{i}"), 1, 32).regs(1);
            k.block_demand_cycles = 1.0e5;
            d.submit(ctx, gctx, s, CommandKind::Kernel(k)).unwrap();
        }
        // Wait for everything by polling stream idleness.
        for &s in &streams {
            while !d.stream_idle(s) {
                ctx.hold(SimDuration::from_micros(100));
            }
        }
        assert_eq!(d.stats().ctx_switches, 0);
        assert_eq!(d.stats().kernels_completed, 4);
        d.shutdown(ctx);
    });
    sim.run().unwrap();
}

//! Device configuration and presets.
//!
//! The preset used throughout the reproduction is
//! [`DeviceConfig::tesla_c2070_paper`], calibrated against the paper's own
//! microbenchmark profile (Table II): effective host↔device bandwidths of
//! ≈2.94 GB/s (H2D, pageable) and ≈3.0 GB/s (D2H), per-process context
//! creation of ≈190 ms (8 processes → the paper's 1519 ms total `Tinit`),
//! and Fermi occupancy limits from the Fermi whitepaper / CUDA 3.2
//! programming guide.

use gv_sim::SimDuration;

/// GPU compute mode (`nvidia-smi -c`): whether multiple host processes may
/// create contexts on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputeMode {
    /// Shared access: any number of contexts, serialized with switch costs
    /// (the paper's baseline configuration).
    #[default]
    Default,
    /// Exclusive: a single context; further creations are rejected. HPC
    /// sites often configure this — exactly the setting under which only a
    /// GVM-style layer can share the GPU at all.
    Exclusive,
}

/// Static description of a simulated GPU device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,

    // --- compute fabric -------------------------------------------------
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Streaming-processor (CUDA) cores per SM.
    pub sp_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Single-precision FLOPs retired per SP per cycle (1.0 = one FMA slot
    /// counted as one flop; keep consistent with kernel cost specs).
    pub flops_per_cycle_per_sp: f64,

    // --- occupancy limits (per SM) --------------------------------------
    /// Maximum resident blocks.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps.
    pub max_warps_per_sm: u32,
    /// Maximum resident threads.
    pub max_threads_per_sm: u32,
    /// 32-bit registers available.
    pub regs_per_sm: u32,
    /// Shared memory bytes available.
    pub smem_per_sm: u64,

    // --- device-level limits ---------------------------------------------
    /// Concurrent kernels admitted to the dispatch window (same context).
    pub max_concurrent_kernels: u32,
    /// Global device memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Aggregate DRAM bandwidth in GB/s (decimal GB).
    pub dram_bw_gbps: f64,
    /// Resident warps per SM needed to fully hide memory latency; fewer
    /// resident warps scale SM throughput by `warps / latency_hiding_warps`.
    pub latency_hiding_warps: u32,

    // --- host link (PCIe + driver pipeline), effective bandwidths --------
    /// H2D bandwidth from pinned host memory, GB/s.
    pub h2d_pinned_gbps: f64,
    /// D2H bandwidth into pinned host memory, GB/s.
    pub d2h_pinned_gbps: f64,
    /// Multiplier applied to pinned bandwidth for pageable transfers
    /// (pageable goes through an extra staging copy).
    pub pageable_factor: f64,
    /// Fixed per-transfer DMA setup latency.
    pub dma_latency: SimDuration,

    // --- driver costs -----------------------------------------------------
    /// Per-process GPU context creation (device is serialized while it runs).
    pub ctx_create: SimDuration,
    /// Default context-switch cost; individual contexts may override.
    pub ctx_switch: SimDuration,
    /// Host-side latency of a kernel-launch call (the call is asynchronous:
    /// it returns after this long, well before the kernel finishes).
    pub kernel_launch_overhead: SimDuration,
    /// Grace period the device waits for more work from the active context
    /// before switching to another context that has eligible work.
    pub ctx_hold_grace: SimDuration,

    /// Compute mode: shared (default) or exclusive.
    pub compute_mode: ComputeMode,

    // --- ablation switches -------------------------------------------------
    /// Route D2H transfers through the H2D engine (models a single-copy-
    /// engine GPU; disables bidirectional transfer overlap). Ablation only.
    pub unified_copy_engine: bool,
}

impl DeviceConfig {
    /// NVIDIA Tesla C2070 as configured in the paper's testbed, with host
    /// link and driver costs calibrated to the paper's Table II.
    pub fn tesla_c2070_paper() -> Self {
        DeviceConfig {
            name: "Tesla C2070 (paper-calibrated)",
            num_sms: 14,
            sp_per_sm: 32,
            clock_ghz: 1.15,
            warp_size: 32,
            flops_per_cycle_per_sp: 1.0,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 48,
            max_threads_per_sm: 1536,
            regs_per_sm: 32768,
            smem_per_sm: 48 * 1024,
            max_concurrent_kernels: 16,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
            dram_bw_gbps: 144.0,
            latency_hiding_warps: 12,
            // 400 MB in 135.874 ms (Table II, VectorAdd Tdata_in) = 2.944 GB/s
            // through the pageable path the baseline uses; pinned path used
            // by the GVM is faster (Fermi-era measured ~5.3 GB/s).
            h2d_pinned_gbps: 5.3,
            d2h_pinned_gbps: 5.45,
            pageable_factor: 0.5555,
            dma_latency: SimDuration::from_micros(15),
            // 8 processes × 189.9 ms ≈ 1519.4 ms (Table II Tinit).
            ctx_create: SimDuration::from_micros(189_923),
            // Table II: 148.2 ms (VectorAdd) / 220.6 ms (EP); contexts
            // override per benchmark, this is the generic default.
            ctx_switch: SimDuration::from_micros(184_000),
            // CUDA 3.2-era launch-call cost; the paper's 0.038 ms VectorAdd
            // Tcomp is calibrated at the kernel level (see gv-kernels).
            kernel_launch_overhead: SimDuration::from_micros(8),
            ctx_hold_grace: SimDuration::from_micros(200),
            compute_mode: ComputeMode::Default,
            unified_copy_engine: false,
        }
    }

    /// Tesla C2050: same silicon as the C2070 with 3 GB of memory.
    pub fn tesla_c2050() -> Self {
        DeviceConfig {
            name: "Tesla C2050",
            global_mem_bytes: 3 * 1024 * 1024 * 1024,
            ..Self::tesla_c2070_paper()
        }
    }

    /// GeForce GTX 480: 15 SMs at 1.40 GHz, 1.5 GB, consumer host link.
    pub fn gtx_480() -> Self {
        DeviceConfig {
            name: "GeForce GTX 480",
            num_sms: 15,
            clock_ghz: 1.40,
            global_mem_bytes: 1536 * 1024 * 1024,
            dram_bw_gbps: 177.4,
            ..Self::tesla_c2070_paper()
        }
    }

    /// A tiny toy device for unit tests: 2 SMs, small limits, fast costs —
    /// keeps test event counts low while exercising every code path.
    pub fn test_tiny() -> Self {
        DeviceConfig {
            name: "test-tiny",
            num_sms: 2,
            sp_per_sm: 8,
            clock_ghz: 1.0,
            warp_size: 32,
            flops_per_cycle_per_sp: 1.0,
            max_blocks_per_sm: 2,
            max_warps_per_sm: 8,
            max_threads_per_sm: 256,
            regs_per_sm: 4096,
            smem_per_sm: 16 * 1024,
            max_concurrent_kernels: 4,
            global_mem_bytes: 64 * 1024 * 1024,
            dram_bw_gbps: 10.0,
            latency_hiding_warps: 4,
            h2d_pinned_gbps: 1.0,
            d2h_pinned_gbps: 1.0,
            pageable_factor: 0.5,
            dma_latency: SimDuration::from_micros(1),
            ctx_create: SimDuration::from_millis(10),
            ctx_switch: SimDuration::from_millis(5),
            kernel_launch_overhead: SimDuration::from_micros(5),
            ctx_hold_grace: SimDuration::from_micros(50),
            compute_mode: ComputeMode::Default,
            unified_copy_engine: false,
        }
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1.0e9
    }

    /// Aggregate DRAM bandwidth in bytes/second.
    pub fn dram_bytes_per_sec(&self) -> f64 {
        self.dram_bw_gbps * 1.0e9
    }

    /// DRAM bytes one SM can stream per core cycle when all SMs pull their
    /// fair share (the static bandwidth-partitioning assumption of the
    /// timing model).
    pub fn dram_bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bytes_per_sec() / self.clock_hz() / self.num_sms as f64
    }

    /// H2D bandwidth in bytes/sec for the given host memory kind.
    pub fn h2d_bytes_per_sec(&self, pinned: bool) -> f64 {
        let bw = self.h2d_pinned_gbps * 1.0e9;
        if pinned {
            bw
        } else {
            bw * self.pageable_factor
        }
    }

    /// D2H bandwidth in bytes/sec for the given host memory kind.
    pub fn d2h_bytes_per_sec(&self, pinned: bool) -> f64 {
        let bw = self.d2h_pinned_gbps * 1.0e9;
        if pinned {
            bw
        } else {
            bw * self.pageable_factor
        }
    }

    /// Duration of a host↔device copy of `bytes` bytes.
    pub fn copy_time(&self, bytes: u64, to_device: bool, pinned: bool) -> SimDuration {
        let bw = if to_device {
            self.h2d_bytes_per_sec(pinned)
        } else {
            self.d2h_bytes_per_sec(pinned)
        };
        self.dma_latency + SimDuration::from_secs_f64(bytes as f64 / bw)
    }

    /// Memory-latency-hiding efficiency for `warps` resident warps on one SM.
    pub fn latency_efficiency(&self, warps: u32) -> f64 {
        if warps == 0 {
            0.0
        } else {
            (warps as f64 / self.latency_hiding_warps as f64).min(1.0)
        }
    }

    /// Peak single-precision throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.num_sms as f64 * self.sp_per_sm as f64 * self.clock_hz() * self.flops_per_cycle_per_sp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2070_peak_flops_matches_spec() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        // 448 cores at 1.15 GHz = 515 GFLOP/s (1030 with FMA counted as 2).
        assert!((cfg.peak_flops() - 515.2e9).abs() / 515.2e9 < 1e-9);
    }

    #[test]
    fn table2_h2d_calibration() {
        // 400 MB pageable H2D should take ≈ 135.874 ms (paper Table II).
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = cfg.copy_time(400_000_000, true, false);
        let err = (t.as_millis_f64() - 135.874).abs() / 135.874;
        assert!(err < 0.01, "H2D calibration off by {:.2}%", err * 100.0);
    }

    #[test]
    fn table2_d2h_calibration() {
        // 200 MB pageable D2H should take ≈ 66.656 ms (paper Table II).
        let cfg = DeviceConfig::tesla_c2070_paper();
        let t = cfg.copy_time(200_000_000, false, false);
        let err = (t.as_millis_f64() - 66.656).abs() / 66.656;
        assert!(err < 0.01, "D2H calibration off by {:.2}%", err * 100.0);
    }

    #[test]
    fn table2_tinit_calibration() {
        // 8 serialized context creations ≈ 1519.386 ms (paper Table II).
        let cfg = DeviceConfig::tesla_c2070_paper();
        let total = cfg.ctx_create * 8;
        let err = (total.as_millis_f64() - 1519.386).abs() / 1519.386;
        assert!(err < 0.01, "Tinit calibration off by {:.2}%", err * 100.0);
    }

    #[test]
    fn latency_efficiency_saturates() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        assert_eq!(cfg.latency_efficiency(0), 0.0);
        assert!((cfg.latency_efficiency(6) - 0.5).abs() < 1e-12);
        assert_eq!(cfg.latency_efficiency(12), 1.0);
        assert_eq!(cfg.latency_efficiency(48), 1.0);
    }

    #[test]
    fn pinned_beats_pageable() {
        let cfg = DeviceConfig::tesla_c2070_paper();
        assert!(cfg.copy_time(1 << 20, true, true) < cfg.copy_time(1 << 20, true, false));
    }
}

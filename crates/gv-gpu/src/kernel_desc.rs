//! Kernel descriptions, occupancy math, and the analytic timing oracle.
//!
//! A [`KernelDesc`] is what the runtime launches: grid geometry, per-SM
//! resource footprint, a per-block *demand* in SM cycles (the timing model's
//! unit of work), and an optional functional body that computes real results
//! in simulated device memory.
//!
//! Demands come from a [`CostSpec`] — an analytic FLOP/DRAM roofline — or
//! from [`demand_for_kernel_time`], which inverts the wave-exact execution
//! estimate so a kernel hits a calibration target (used for the paper's
//! published per-kernel timings).

use std::sync::Arc;

use gv_sim::SimDuration;

use crate::config::DeviceConfig;
use crate::memory::DeviceMemory;

/// Functional kernel body: runs against device memory when the simulated
/// kernel completes, making results bit-checkable against CPU references.
pub type KernelBody = Arc<dyn Fn(&mut DeviceMemory) + Send + Sync>;

/// Everything the device needs to execute one kernel grid.
#[derive(Clone)]
pub struct KernelDesc {
    /// Kernel name (traces and reports).
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread (occupancy limiter).
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes (occupancy limiter).
    pub smem_per_block: u64,
    /// Work per block, in SM cycles at full throughput.
    pub block_demand_cycles: f64,
    /// Optional functional body.
    pub body: Option<KernelBody>,
}

impl std::fmt::Debug for KernelDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelDesc")
            .field("name", &self.name)
            .field("grid_blocks", &self.grid_blocks)
            .field("threads_per_block", &self.threads_per_block)
            .field("regs_per_thread", &self.regs_per_thread)
            .field("smem_per_block", &self.smem_per_block)
            .field("block_demand_cycles", &self.block_demand_cycles)
            .field("body", &self.body.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl KernelDesc {
    /// A minimal kernel description; demand must be set afterwards (or via
    /// [`with_cost`](Self::with_cost) / [`with_target_time`](Self::with_target_time)).
    pub fn new(name: impl Into<String>, grid_blocks: u64, threads_per_block: u32) -> Self {
        KernelDesc {
            name: name.into(),
            grid_blocks,
            threads_per_block,
            regs_per_thread: 20,
            smem_per_block: 0,
            block_demand_cycles: 1.0,
            body: None,
        }
    }

    /// Set the register footprint.
    pub fn regs(mut self, regs_per_thread: u32) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }

    /// Set the shared-memory footprint.
    pub fn smem(mut self, smem_per_block: u64) -> Self {
        self.smem_per_block = smem_per_block;
        self
    }

    /// Derive the block demand from an analytic cost spec.
    pub fn with_cost(mut self, cfg: &DeviceConfig, cost: &CostSpec) -> Self {
        self.block_demand_cycles = cost.block_demand_cycles(cfg, self.threads_per_block);
        self
    }

    /// Derive the block demand so this kernel, alone on an idle device,
    /// takes `target` (inverts the wave-exact estimator).
    pub fn with_target_time(mut self, cfg: &DeviceConfig, target: SimDuration) -> Self {
        self.block_demand_cycles = demand_for_kernel_time(cfg, &self, target);
        self
    }

    /// Attach a functional body.
    pub fn with_body(mut self, body: KernelBody) -> Self {
        self.body = Some(body);
        self
    }

    /// Warps per block.
    pub fn warps_per_block(&self, cfg: &DeviceConfig) -> u32 {
        self.threads_per_block.div_ceil(cfg.warp_size)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks * self.threads_per_block as u64
    }
}

/// Analytic per-thread cost: a FLOP/DRAM roofline with a calibration scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSpec {
    /// Arithmetic work per thread, in FLOPs (count SFU/transcendental ops
    /// at their cycle cost).
    pub flops_per_thread: f64,
    /// DRAM traffic per thread in bytes (reads + writes, post-coalescing).
    pub dram_bytes_per_thread: f64,
    /// Multiplier folding in unmodeled stalls; 1.0 = pure roofline.
    pub cycles_scale: f64,
}

impl CostSpec {
    /// Pure-roofline spec with unit scale.
    pub fn new(flops_per_thread: f64, dram_bytes_per_thread: f64) -> Self {
        CostSpec {
            flops_per_thread,
            dram_bytes_per_thread,
            cycles_scale: 1.0,
        }
    }

    /// Override the calibration scale.
    pub fn scaled(mut self, k: f64) -> Self {
        self.cycles_scale = k;
        self
    }

    /// Per-block demand in SM cycles: the max of the compute roofline and
    /// the (statically partitioned) DRAM roofline.
    pub fn block_demand_cycles(&self, cfg: &DeviceConfig, threads_per_block: u32) -> f64 {
        let tpb = threads_per_block as f64;
        let compute =
            self.flops_per_thread * tpb / (cfg.sp_per_sm as f64 * cfg.flops_per_cycle_per_sp);
        let mem = self.dram_bytes_per_thread * tpb / cfg.dram_bytes_per_cycle_per_sm();
        compute.max(mem) * self.cycles_scale
    }
}

/// How many blocks of this kernel fit on one SM simultaneously.
pub fn blocks_per_sm(cfg: &DeviceConfig, k: &KernelDesc) -> u32 {
    let by_blocks = cfg.max_blocks_per_sm;
    let by_threads = cfg.max_threads_per_sm / k.threads_per_block.max(1);
    let by_warps = cfg.max_warps_per_sm / k.warps_per_block(cfg).max(1);
    let regs_per_block = k.regs_per_thread.saturating_mul(k.threads_per_block);
    let by_regs = cfg
        .regs_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_smem = cfg
        .smem_per_sm
        .checked_div(k.smem_per_block)
        .map(|v| v as u32)
        .unwrap_or(u32::MAX);
    by_blocks
        .min(by_threads)
        .min(by_warps)
        .min(by_regs)
        .min(by_smem)
}

/// Occupancy as resident warps / max warps, for reports.
pub fn occupancy(cfg: &DeviceConfig, k: &KernelDesc) -> f64 {
    let resident_warps = blocks_per_sm(cfg, k) * k.warps_per_block(cfg);
    resident_warps.min(cfg.max_warps_per_sm) as f64 / cfg.max_warps_per_sm as f64
}

/// Wave-exact estimate of this kernel's execution time alone on an idle
/// device, matching the engine's processor-sharing SM model for identical
/// block demands: in each wave every SM holds up to `r` blocks; with `n`
/// resident blocks (`w` warps) each block completes after
/// `n · demand / (clock · eff(w))`.
pub fn estimate_kernel_time(cfg: &DeviceConfig, k: &KernelDesc) -> SimDuration {
    SimDuration::from_secs_f64(estimate_kernel_secs(cfg, k, k.block_demand_cycles))
}

fn estimate_kernel_secs(cfg: &DeviceConfig, k: &KernelDesc, demand: f64) -> f64 {
    if k.grid_blocks == 0 || demand <= 0.0 {
        return 0.0;
    }
    let r = blocks_per_sm(cfg, k).max(1) as u64;
    let sms = cfg.num_sms as u64;
    let wave_capacity = r * sms;
    let full_waves = k.grid_blocks / wave_capacity;
    let remainder = k.grid_blocks % wave_capacity;
    let wpb = k.warps_per_block(cfg);

    let wave_secs = |blocks_on_busiest_sm: u64| -> f64 {
        let n = blocks_on_busiest_sm;
        if n == 0 {
            return 0.0;
        }
        let warps = (n as u32) * wpb;
        let eff = cfg.latency_efficiency(warps);
        n as f64 * demand / (cfg.clock_hz() * eff)
    };

    let mut total = full_waves as f64 * wave_secs(r);
    if remainder > 0 {
        // Remainder blocks distribute round-robin; the busiest SM gets
        // ceil(remainder / sms) and finishes last.
        total += wave_secs(remainder.div_ceil(sms));
    }
    total
}

/// Invert [`estimate_kernel_time`]: the per-block demand (in cycles) that
/// makes this kernel take `target` alone on an idle device. Execution time
/// is linear in demand, so one probe suffices.
pub fn demand_for_kernel_time(cfg: &DeviceConfig, k: &KernelDesc, target: SimDuration) -> f64 {
    let unit_secs = estimate_kernel_secs(cfg, k, 1.0);
    if unit_secs <= 0.0 {
        return 0.0;
    }
    target.as_secs_f64() / unit_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::tesla_c2070_paper()
    }

    #[test]
    fn blocks_per_sm_limited_by_each_resource() {
        let c = cfg();
        // Thread-limited: 1024-thread blocks → 1536/1024 = 1.
        let k = KernelDesc::new("t", 10, 1024).regs(1);
        assert_eq!(blocks_per_sm(&c, &k), 1);
        // Register-limited: 64 regs × 256 threads = 16384 → 32768/16384 = 2.
        let k = KernelDesc::new("r", 10, 256).regs(64);
        assert_eq!(blocks_per_sm(&c, &k), 2);
        // Smem-limited: 24 KB per block → 2.
        let k = KernelDesc::new("s", 10, 64).regs(1).smem(24 * 1024);
        assert_eq!(blocks_per_sm(&c, &k), 2);
        // Block-count-limited: tiny blocks → 8 (hardware cap).
        let k = KernelDesc::new("b", 10, 32).regs(1);
        assert_eq!(blocks_per_sm(&c, &k), 8);
    }

    #[test]
    fn occupancy_full_for_192x8() {
        let c = cfg();
        // 8 blocks × 6 warps = 48 warps = max → occupancy 1.0.
        let k = KernelDesc::new("o", 100, 192).regs(20);
        assert!((occupancy(&c, &k) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_demand() {
        let c = cfg();
        let spec = CostSpec::new(320.0, 0.0);
        // 320 flops × 256 threads / 32 SPs = 2560 cycles.
        assert!((spec.block_demand_cycles(&c, 256) - 2560.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_demand_dominates() {
        let c = cfg();
        // 12 bytes/thread (vecadd-like): DRAM roofline far above compute.
        let spec = CostSpec::new(1.0, 12.0);
        let d = spec.block_demand_cycles(&c, 256);
        let per_cycle = c.dram_bytes_per_cycle_per_sm();
        assert!((d - 12.0 * 256.0 / per_cycle).abs() < 1e-9);
        assert!(d > 8.0); // compute roofline would be 8 cycles
    }

    #[test]
    fn estimate_single_wave_small_grid() {
        let c = cfg();
        // 4 blocks of 4 warps on 14 SMs: one block per SM, eff = 4/12.
        let k = KernelDesc::new("ep-like", 4, 128).regs(20);
        let mut k = k;
        k.block_demand_cycles = 1.0e6;
        let t = estimate_kernel_time(&c, &k);
        let expected = 1.0e6 / (c.clock_hz() * (4.0 / 12.0));
        assert!((t.as_secs_f64() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn estimate_scales_linearly_with_demand() {
        let c = cfg();
        let mut k = KernelDesc::new("lin", 1000, 256).regs(20);
        k.block_demand_cycles = 1.0e6;
        let t1 = estimate_kernel_time(&c, &k).as_secs_f64();
        k.block_demand_cycles = 2.0e6;
        let t2 = estimate_kernel_time(&c, &k).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn demand_inversion_roundtrips() {
        let c = cfg();
        let target = SimDuration::from_millis_f64(8951.346); // EP Tcomp
        let k = KernelDesc::new("ep", 4, 128).regs(24);
        let k = k.with_target_time(&c, target);
        let t = estimate_kernel_time(&c, &k);
        let err = (t.as_millis_f64() - 8951.346).abs() / 8951.346;
        assert!(err < 1e-6, "roundtrip error {err}");
    }

    #[test]
    fn more_blocks_than_capacity_takes_multiple_waves() {
        let c = cfg();
        let mut k = KernelDesc::new("w", 14 * 8 * 3, 32).regs(1);
        k.block_demand_cycles = 1.0e6;
        let t3 = estimate_kernel_time(&c, &k).as_secs_f64();
        k.grid_blocks = 14 * 8;
        let t1 = estimate_kernel_time(&c, &k).as_secs_f64();
        assert!((t3 / t1 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn zero_grid_estimates_zero() {
        let c = cfg();
        let k = KernelDesc::new("z", 0, 32);
        assert_eq!(estimate_kernel_time(&c, &k), SimDuration::ZERO);
    }
}

//! Streaming-multiprocessor execution state.
//!
//! Each SM holds resident blocks subject to Fermi occupancy limits and
//! executes them under *processor sharing*: with `n` resident blocks and `w`
//! resident warps, every block receives `clock · eff(w) / n` cycles per
//! second, where `eff(w) = min(1, w / latency_hiding_warps)` models memory
//! latency hiding (few warps → the SM idles on stalls — the Peters et al.
//! persistent-kernel critique the paper cites).
//!
//! The scheduler advances SMs lazily: [`SmState::advance`] settles work up
//! to `now`, and [`SmState::next_completion`] predicts the next block finish
//! for the engine's timer.

use gv_sim::SimTime;

use crate::config::DeviceConfig;
use crate::kernel_desc::KernelDesc;

/// Residual work below this many cycles counts as finished (absorbs float
/// round-off from repeated advances).
const COMPLETION_EPS_CYCLES: f64 = 1e-3;

/// One block resident on an SM.
#[derive(Debug, Clone)]
pub struct ResidentBlock {
    /// The running kernel this block belongs to (scheduler sequence id).
    pub kernel_seq: u64,
    /// Warps this block occupies.
    pub warps: u32,
    /// Threads this block occupies.
    pub threads: u32,
    /// Registers this block occupies.
    pub regs: u32,
    /// Shared-memory bytes this block occupies.
    pub smem: u64,
    /// Demand left, in SM cycles at full throughput.
    pub remaining_cycles: f64,
}

/// Execution state of one SM.
#[derive(Debug, Clone)]
pub struct SmState {
    /// SM index (traces only).
    pub id: u32,
    resident: Vec<ResidentBlock>,
    used_warps: u32,
    used_threads: u32,
    used_regs: u32,
    used_smem: u64,
    last_update: SimTime,
    /// Cumulative busy cycles delivered (for utilization reports).
    pub busy_cycles: f64,
}

impl SmState {
    /// An idle SM.
    pub fn new(id: u32) -> Self {
        SmState {
            id,
            resident: Vec::new(),
            used_warps: 0,
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            last_update: SimTime::ZERO,
            busy_cycles: 0.0,
        }
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    /// Resident warps.
    pub fn resident_warps(&self) -> u32 {
        self.used_warps
    }

    /// Is the SM completely idle?
    pub fn is_idle(&self) -> bool {
        self.resident.is_empty()
    }

    /// Cycles per second currently credited to *each* resident block.
    fn per_block_rate(&self, cfg: &DeviceConfig) -> f64 {
        let n = self.resident.len();
        if n == 0 {
            return 0.0;
        }
        cfg.clock_hz() * cfg.latency_efficiency(self.used_warps) / n as f64
    }

    /// Can a block of `k` be placed here right now?
    pub fn can_fit(&self, cfg: &DeviceConfig, k: &KernelDesc) -> bool {
        let warps = k.warps_per_block(cfg);
        let regs = k.regs_per_thread.saturating_mul(k.threads_per_block);
        (self.resident.len() as u32) < cfg.max_blocks_per_sm
            && self.used_warps + warps <= cfg.max_warps_per_sm
            && self.used_threads + k.threads_per_block <= cfg.max_threads_per_sm
            && self.used_regs + regs <= cfg.regs_per_sm
            && self.used_smem + k.smem_per_block <= cfg.smem_per_sm
    }

    /// Place one block of kernel `kernel_seq`. Call [`advance`](Self::advance)
    /// to `now` first so in-flight blocks are settled at the old rate.
    pub fn place(&mut self, cfg: &DeviceConfig, kernel_seq: u64, k: &KernelDesc, now: SimTime) {
        debug_assert!(self.can_fit(cfg, k), "place() without can_fit()");
        debug_assert_eq!(self.last_update, now, "place() before advance()");
        let warps = k.warps_per_block(cfg);
        let regs = k.regs_per_thread.saturating_mul(k.threads_per_block);
        self.used_warps += warps;
        self.used_threads += k.threads_per_block;
        self.used_regs += regs;
        self.used_smem += k.smem_per_block;
        self.resident.push(ResidentBlock {
            kernel_seq,
            warps,
            threads: k.threads_per_block,
            regs,
            smem: k.smem_per_block,
            remaining_cycles: k.block_demand_cycles.max(COMPLETION_EPS_CYCLES),
        });
    }

    /// Settle execution up to `now`; returns the kernel sequence ids of
    /// blocks that completed (one entry per completed block) and frees
    /// their resources.
    pub fn advance(&mut self, cfg: &DeviceConfig, now: SimTime) -> Vec<u64> {
        let dt = now.duration_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if self.resident.is_empty() {
            return Vec::new();
        }
        if dt > 0.0 {
            let rate = self.per_block_rate(cfg);
            let credit = dt * rate;
            self.busy_cycles += credit * self.resident.len() as f64;
            for b in &mut self.resident {
                b.remaining_cycles -= credit;
            }
        }
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.resident.len() {
            if self.resident[i].remaining_cycles <= COMPLETION_EPS_CYCLES {
                let b = self.resident.swap_remove(i);
                self.used_warps -= b.warps;
                self.used_threads -= b.threads;
                self.used_regs -= b.regs;
                self.used_smem -= b.smem;
                done.push(b.kernel_seq);
            } else {
                i += 1;
            }
        }
        done
    }

    /// Predicted time of the next block completion, assuming residency does
    /// not change before then. `None` when idle.
    pub fn next_completion(&self, cfg: &DeviceConfig, now: SimTime) -> Option<SimTime> {
        debug_assert_eq!(self.last_update, now, "next_completion() before advance()");
        let rate = self.per_block_rate(cfg);
        if rate <= 0.0 {
            return None;
        }
        let min_remaining = self
            .resident
            .iter()
            .map(|b| b.remaining_cycles)
            .fold(f64::INFINITY, f64::min);
        if !min_remaining.is_finite() {
            return None;
        }
        let secs = (min_remaining / rate).max(0.0);
        // Guarantee forward progress: never schedule strictly in the past,
        // and round up a hair so the completion check passes at the timer.
        Some(now + gv_sim::SimDuration::from_secs_f64(secs) + gv_sim::SimDuration::from_nanos(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_sim::SimDuration;

    fn cfg() -> DeviceConfig {
        DeviceConfig::tesla_c2070_paper()
    }

    fn kernel(tpb: u32, demand: f64) -> KernelDesc {
        let mut k = KernelDesc::new("k", 100, tpb).regs(16);
        k.block_demand_cycles = demand;
        k
    }

    #[test]
    fn single_block_runs_at_latency_limited_rate() {
        let c = cfg();
        let mut sm = SmState::new(0);
        // 4 warps → eff = 4/12; demand 1.15e6 cycles → 1ms at full rate,
        // 3ms at 1/3 efficiency.
        let k = kernel(128, 1.15e6);
        sm.advance(&c, SimTime::ZERO);
        sm.place(&c, 1, &k, SimTime::ZERO);
        let t = sm.next_completion(&c, SimTime::ZERO).unwrap();
        assert!((t.as_millis_f64() - 3.0).abs() < 1e-4, "{t}");
        let done = sm.advance(&c, t);
        assert_eq!(done, vec![1]);
        assert!(sm.is_idle());
    }

    #[test]
    fn two_blocks_share_but_gain_efficiency() {
        let c = cfg();
        let mut sm = SmState::new(0);
        let k = kernel(128, 1.15e6);
        sm.advance(&c, SimTime::ZERO);
        sm.place(&c, 1, &k, SimTime::ZERO);
        sm.place(&c, 2, &k, SimTime::ZERO);
        // 8 warps → eff 8/12; per-block rate = clock × (8/12)/2 = clock/3:
        // same 3ms per block as a lone block — latency hiding exactly
        // offsets the sharing for this configuration.
        let t = sm.next_completion(&c, SimTime::ZERO).unwrap();
        assert!((t.as_millis_f64() - 3.0).abs() < 1e-4, "{t}");
        let done = sm.advance(&c, t);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn saturated_sm_shares_throughput() {
        let c = cfg();
        let mut sm = SmState::new(0);
        // 512-thread blocks: 16 warps each; 3 blocks → 48 warps, eff = 1.
        let k = kernel(512, 1.15e6);
        sm.advance(&c, SimTime::ZERO);
        for seq in 0..3 {
            assert!(sm.can_fit(&c, &k));
            sm.place(&c, seq, &k, SimTime::ZERO);
        }
        assert!(!sm.can_fit(&c, &k)); // thread limit: 1536
                                      // Each block: 3 × 1.15e6 cycles / clock = 3ms.
        let t = sm.next_completion(&c, SimTime::ZERO).unwrap();
        assert!((t.as_millis_f64() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn partial_advance_preserves_work_conservation() {
        let c = cfg();
        let mut sm = SmState::new(0);
        let k = kernel(384, 1.15e6); // 12 warps → eff 1.0
        sm.advance(&c, SimTime::ZERO);
        sm.place(&c, 7, &k, SimTime::ZERO);
        // Advance halfway, then the rest; total equals the one-shot time (1ms).
        let half = SimTime::ZERO + SimDuration::from_micros(500);
        assert!(sm.advance(&c, half).is_empty());
        let t = sm.next_completion(&c, half).unwrap();
        assert!((t.as_millis_f64() - 1.0).abs() < 1e-4, "{t}");
        assert_eq!(sm.advance(&c, t), vec![7]);
    }

    #[test]
    fn membership_change_recomputes_rates() {
        let c = cfg();
        let mut sm = SmState::new(0);
        let k = kernel(384, 1.15e6); // 12 warps, eff 1.0, 1ms alone
        sm.advance(&c, SimTime::ZERO);
        sm.place(&c, 1, &k, SimTime::ZERO);
        // At 0.5ms, a second identical block arrives.
        let mid = SimTime::ZERO + SimDuration::from_micros(500);
        sm.advance(&c, mid);
        sm.place(&c, 2, &k, mid);
        // Block 1 has 0.575e6 cycles left; rate is now clock/2 (24 warps,
        // eff 1, shared by 2) → finishes at 0.5ms + 1.0ms = 1.5ms.
        let t = sm.next_completion(&c, mid).unwrap();
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-4, "{t}");
    }

    #[test]
    fn busy_cycles_accumulate() {
        let c = cfg();
        let mut sm = SmState::new(0);
        let k = kernel(384, 1.15e6);
        sm.advance(&c, SimTime::ZERO);
        sm.place(&c, 1, &k, SimTime::ZERO);
        let t = sm.next_completion(&c, SimTime::ZERO).unwrap();
        sm.advance(&c, t);
        assert!((sm.busy_cycles - 1.15e6).abs() / 1.15e6 < 1e-6);
    }
}

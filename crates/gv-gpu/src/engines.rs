//! The device scheduler: contexts, streams, DMA engines, and the compute
//! dispatch window.
//!
//! One simulation process (`gpu-sched`) owns all device-side scheduling:
//!
//! * **Streams** are in-order FIFOs; only the head command of an idle
//!   stream is eligible.
//! * **Contexts** serialize: only commands of the *current* context may
//!   start. When the device drains and another context has eligible work,
//!   the scheduler waits a short grace period (driver batching hysteresis —
//!   this is what makes a process's send→compute→retrieve run as one
//!   context episode, as the paper's Fig. 4 assumes) and then performs a
//!   context switch, charging that context's switch cost.
//! * **DMA engines**: one H2D and one D2H engine (Fermi's two copy engines),
//!   each serving one transfer at a time — same-direction copies serialize,
//!   opposite directions overlap, and both overlap compute.
//! * **Compute**: up to `max_concurrent_kernels` kernels of the current
//!   context are admitted to the window; their blocks dispatch FIFO onto
//!   the least-loaded SMs under occupancy limits ([`crate::sm`]).

use std::collections::HashMap;
use std::sync::Arc;

use gv_sim::trace::{AnalysisRecord, Tracer};
use gv_sim::{Ctx, Gate, SimDuration, SimTime};
use parking_lot::Mutex;

use crate::config::DeviceConfig;
use crate::kernel_desc::KernelDesc;
use crate::memory::{DeviceMemory, DevicePtr};
use crate::sm::SmState;

/// Identifier of a GPU context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuCtxId(pub(crate) u32);

/// Identifier of a CUDA-like stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub(crate) u32);

/// A host data source for functional H2D copies.
pub type HostData = Arc<Vec<u8>>;
/// A host destination buffer for functional D2H copies.
pub type HostSink = Arc<Mutex<Vec<u8>>>;

/// The operation a command performs.
pub enum CommandKind {
    /// Host-to-device copy.
    CopyH2D {
        /// Destination on the device.
        dst: DevicePtr,
        /// Transfer size in bytes (drives timing even without `data`).
        bytes: u64,
        /// Real bytes for functional runs (`None` = timing-only).
        data: Option<HostData>,
        /// Source host memory is pinned.
        pinned: bool,
    },
    /// Device-to-host copy.
    CopyD2H {
        /// Source on the device.
        src: DevicePtr,
        /// Transfer size in bytes.
        bytes: u64,
        /// Destination buffer for functional runs (grown to cover the
        /// written range if needed).
        sink: Option<HostSink>,
        /// Byte offset within `sink` the copy lands at (chunked transfers
        /// write their span in place; whole-buffer copies use 0).
        sink_offset: u64,
        /// Destination host memory is pinned.
        pinned: bool,
    },
    /// Device-to-device copy (served by the D2H engine at DRAM bandwidth;
    /// reads and writes device memory, so it costs two DRAM passes).
    CopyD2D {
        /// Source on the device.
        src: DevicePtr,
        /// Destination on the device.
        dst: DevicePtr,
        /// Bytes to copy.
        bytes: u64,
        /// Perform the functional copy (timing-only when false).
        functional: bool,
    },
    /// Kernel launch.
    Kernel(KernelDesc),
}

impl std::fmt::Debug for CommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandKind::CopyH2D { bytes, pinned, .. } => f
                .debug_struct("CopyH2D")
                .field("bytes", bytes)
                .field("pinned", pinned)
                .finish(),
            CommandKind::CopyD2H { bytes, pinned, .. } => f
                .debug_struct("CopyD2H")
                .field("bytes", bytes)
                .field("pinned", pinned)
                .finish(),
            CommandKind::CopyD2D { bytes, .. } => {
                f.debug_struct("CopyD2D").field("bytes", bytes).finish()
            }
            CommandKind::Kernel(k) => f.debug_tuple("Kernel").field(&k.name).finish(),
        }
    }
}

pub(crate) struct Command {
    pub(crate) id: u64,
    /// Owning context (checked at enqueue; kept for trace labelling).
    #[allow(dead_code)]
    pub(crate) ctx: GpuCtxId,
    pub(crate) stream: StreamId,
    pub(crate) kind: CommandKind,
    pub(crate) gate: Gate,
    /// Coalesce-group tag: commands submitted as one batched DMA carry the
    /// same id. When a member dispatches back-to-back behind another member
    /// of the same group on the same engine, the per-op DMA setup latency
    /// is charged only once for the whole group.
    pub(crate) fuse: Option<u64>,
}

/// Handle to an asynchronously executing device command.
#[derive(Clone)]
pub struct CommandHandle {
    pub(crate) gate: Gate,
    /// Global submission-order id.
    pub id: u64,
}

impl std::fmt::Debug for CommandHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandHandle")
            .field("id", &self.id)
            .field("done", &self.gate.is_open())
            .finish()
    }
}

impl CommandHandle {
    /// Block (in simulated time) until the command completes.
    pub fn wait(&self, ctx: &mut Ctx) {
        self.gate.wait(ctx);
    }

    /// Has the command completed?
    pub fn is_done(&self) -> bool {
        self.gate.is_open()
    }
}

pub(crate) struct CtxInfo {
    /// Context name (surfaced in panics and future traces).
    #[allow(dead_code)]
    pub(crate) name: String,
    pub(crate) switch_cost: SimDuration,
}

struct StreamState {
    ctx: GpuCtxId,
    queue: std::collections::VecDeque<Command>,
    in_flight: bool,
}

struct DmaEngine {
    active: Option<Command>,
    busy_until: SimTime,
    busy_total: SimDuration,
    served: u64,
    /// Coalesce group of the last completed command (continuation check).
    last_fuse: Option<u64>,
    /// Completion time of the last command: a fused follower only gets the
    /// setup-latency discount when it starts the instant its predecessor
    /// finished (back-to-back on the engine, nothing interleaved).
    last_done: SimTime,
}

impl DmaEngine {
    fn new() -> Self {
        DmaEngine {
            active: None,
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            served: 0,
            last_fuse: None,
            last_done: SimTime::ZERO,
        }
    }

    /// Does starting a member of coalesce group `fuse` at `now` continue a
    /// fused run (predecessor of the same group completed exactly now)?
    fn continues_fused_run(&self, fuse: Option<u64>, now: SimTime) -> bool {
        fuse.is_some() && self.last_fuse == fuse && self.last_done == now
    }
}

struct RunningKernel {
    seq: u64,
    cmd: Command,
    blocks_left: u64,
    outstanding: u64,
}

/// Aggregate device statistics, snapshot via `GpuDevice::stats`.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Completed context switches.
    pub ctx_switches: u64,
    /// Total simulated time spent switching contexts.
    pub ctx_switch_time: SimDuration,
    /// Kernels run to completion.
    pub kernels_completed: u64,
    /// H2D transfers completed / busy time.
    pub h2d_transfers: u64,
    /// Total H2D engine busy time.
    pub h2d_busy: SimDuration,
    /// D2H transfers completed.
    pub d2h_transfers: u64,
    /// D2D transfers completed.
    pub d2d_transfers: u64,
    /// Total D2H engine busy time.
    pub d2h_busy: SimDuration,
    /// Largest number of kernels ever simultaneously in the window.
    pub max_concurrent_kernels: usize,
    /// Total SM busy cycles delivered.
    pub sm_busy_cycles: f64,
    /// DMA ops that ran as fused continuations (setup latency elided).
    pub fused_dma_ops: u64,
    /// Total DMA setup latency elided by fused continuations.
    pub fused_dma_saved: SimDuration,
}

pub(crate) struct SchedState {
    next_cmd_id: u64,
    next_fuse_id: u64,
    next_kernel_seq: u64,
    next_stream_id: u32,
    next_ctx_id: u32,
    pub(crate) contexts: HashMap<GpuCtxId, CtxInfo>,
    streams: HashMap<StreamId, StreamState>,
    current_ctx: Option<GpuCtxId>,
    switching: Option<(GpuCtxId, SimTime)>,
    last_activity: SimTime,
    h2d: DmaEngine,
    d2h: DmaEngine,
    window: Vec<RunningKernel>,
    sms: Vec<SmState>,
    pub(crate) shutdown: bool,
    stats: DeviceStats,
    /// Tracer ordinal of the owning device (set by `GpuDevice::install`).
    pub(crate) dev_ord: u32,
}

impl SchedState {
    pub(crate) fn new(cfg: &DeviceConfig) -> Self {
        SchedState {
            next_cmd_id: 1,
            next_fuse_id: 1,
            next_kernel_seq: 1,
            next_stream_id: 1,
            next_ctx_id: 1,
            contexts: HashMap::new(),
            streams: HashMap::new(),
            current_ctx: None,
            switching: None,
            last_activity: SimTime::ZERO,
            h2d: DmaEngine::new(),
            d2h: DmaEngine::new(),
            window: Vec::new(),
            sms: (0..cfg.num_sms).map(SmState::new).collect(),
            shutdown: false,
            stats: DeviceStats::default(),
            dev_ord: 0,
        }
    }

    pub(crate) fn register_context(&mut self, name: &str, switch_cost: SimDuration) -> GpuCtxId {
        let id = GpuCtxId(self.next_ctx_id);
        self.next_ctx_id += 1;
        self.contexts.insert(
            id,
            CtxInfo {
                name: name.to_string(),
                switch_cost,
            },
        );
        id
    }

    pub(crate) fn context_count(&self) -> usize {
        self.contexts.len()
    }

    pub(crate) fn register_stream(&mut self, ctx: GpuCtxId) -> StreamId {
        assert!(self.contexts.contains_key(&ctx), "unknown context");
        let id = StreamId(self.next_stream_id);
        self.next_stream_id += 1;
        self.streams.insert(
            id,
            StreamState {
                ctx,
                queue: std::collections::VecDeque::new(),
                in_flight: false,
            },
        );
        id
    }

    pub(crate) fn enqueue(
        &mut self,
        ctx: GpuCtxId,
        stream: StreamId,
        kind: CommandKind,
    ) -> CommandHandle {
        self.enqueue_fused(ctx, stream, kind, None)
    }

    /// Enqueue a command carrying an optional coalesce-group tag (see
    /// [`Command::fuse`]). Plain submissions pass `None`.
    pub(crate) fn enqueue_fused(
        &mut self,
        ctx: GpuCtxId,
        stream: StreamId,
        kind: CommandKind,
        fuse: Option<u64>,
    ) -> CommandHandle {
        let st = self.streams.get_mut(&stream).expect("unknown stream");
        assert_eq!(st.ctx, ctx, "stream belongs to a different context");
        let id = self.next_cmd_id;
        self.next_cmd_id += 1;
        let gate = Gate::new();
        st.queue.push_back(Command {
            id,
            ctx,
            stream,
            kind,
            gate: gate.clone(),
            fuse,
        });
        CommandHandle { gate, id }
    }

    /// Allocate a fresh coalesce-group id for one batched submission.
    pub(crate) fn alloc_fuse_id(&mut self) -> u64 {
        let id = self.next_fuse_id;
        self.next_fuse_id += 1;
        id
    }

    pub(crate) fn stream_idle(&self, stream: StreamId) -> bool {
        self.streams
            .get(&stream)
            .map(|s| s.queue.is_empty() && !s.in_flight)
            .unwrap_or(true)
    }

    pub(crate) fn stats(&self) -> DeviceStats {
        let mut s = self.stats.clone();
        s.sm_busy_cycles = self.sms.iter().map(|sm| sm.busy_cycles).sum();
        s
    }

    /// Eligible stream heads (idle stream, non-empty queue), as
    /// `(command id, stream id, ctx)` sorted by submission order.
    fn eligible_heads(&self) -> Vec<(u64, StreamId, GpuCtxId)> {
        let mut v: Vec<_> = self
            .streams
            .iter()
            .filter(|(_, s)| !s.in_flight && !s.queue.is_empty())
            .map(|(&sid, s)| (s.queue.front().expect("non-empty").id, sid, s.ctx))
            .collect();
        v.sort();
        v
    }

    fn device_busy(&self) -> bool {
        self.h2d.active.is_some() || self.d2h.active.is_some() || !self.window.is_empty()
    }

    /// One scheduling step at time `now`. Returns gates to open (outside
    /// the lock) and the next internal event time, if any. Engine activity
    /// is recorded as spans on `tracer` (no-ops while tracing is off):
    /// category `"h2d"`/`"d2h"` for DMA transfers, `"kernel"` for kernel
    /// residency in the window, `"ctx-switch"` for switch intervals.
    pub(crate) fn step(
        &mut self,
        cfg: &DeviceConfig,
        memory: &Mutex<DeviceMemory>,
        tracer: &Tracer,
        now: SimTime,
    ) -> (Vec<Gate>, Option<SimTime>) {
        let mut opened: Vec<Gate> = Vec::new();

        // 1. Context switch completion.
        if let Some((target, t)) = self.switching {
            if t <= now {
                self.current_ctx = Some(target);
                self.switching = None;
                self.stats.ctx_switches += 1;
                self.last_activity = now;
                tracer.end(now, "ctx-switch", format!("to-ctx-{}", target.0), 0);
            }
        }

        // 2. DMA completions.
        for dir in [true, false] {
            let engine = if dir { &mut self.h2d } else { &mut self.d2h };
            if engine.active.is_some() && engine.busy_until <= now {
                let cmd = engine.active.take().expect("checked above");
                engine.served += 1;
                engine.last_fuse = cmd.fuse;
                engine.last_done = now;
                match &cmd.kind {
                    CommandKind::CopyH2D {
                        dst,
                        data: Some(data),
                        ..
                    } => {
                        memory
                            .lock()
                            .write_bytes(*dst, data)
                            .expect("validated at submit");
                    }
                    CommandKind::CopyD2D {
                        src,
                        dst,
                        bytes,
                        functional: true,
                    } => {
                        memory
                            .lock()
                            .copy_within(*src, *dst, *bytes)
                            .expect("validated at submit");
                    }
                    CommandKind::CopyD2H {
                        src,
                        bytes,
                        sink: Some(sink),
                        sink_offset,
                        ..
                    } => {
                        let mut buf = vec![0u8; *bytes as usize];
                        memory
                            .lock()
                            .read_bytes(*src, &mut buf)
                            .expect("validated at submit");
                        let off = *sink_offset as usize;
                        let mut guard = sink.lock();
                        if guard.len() < off + buf.len() {
                            guard.resize(off + buf.len(), 0);
                        }
                        guard[off..off + buf.len()].copy_from_slice(&buf);
                    }
                    _ => {}
                }
                let _ = dir;
                match &cmd.kind {
                    CommandKind::CopyH2D { .. } => self.stats.h2d_transfers += 1,
                    CommandKind::CopyD2H { .. } => self.stats.d2h_transfers += 1,
                    CommandKind::CopyD2D { .. } => self.stats.d2d_transfers += 1,
                    CommandKind::Kernel(_) => unreachable!("DMA engine held a kernel"),
                }
                let category = if matches!(cmd.kind, CommandKind::CopyH2D { .. }) {
                    "h2d"
                } else {
                    "d2h"
                };
                tracer.end(now, category, format!("cmd-{}", cmd.id), cmd.stream.0);
                tracer.record_analysis(AnalysisRecord::CopyEnd {
                    time: now,
                    device: self.dev_ord,
                    engine: if dir { 0 } else { 1 },
                    label: format!("cmd-{}", cmd.id),
                });
                self.streams
                    .get_mut(&cmd.stream)
                    .expect("stream exists")
                    .in_flight = false;
                opened.push(cmd.gate.clone());
                self.last_activity = now;
            }
        }

        // 3. SM advance & kernel completions.
        for sm in &mut self.sms {
            for seq in sm.advance(cfg, now) {
                let rk = self
                    .window
                    .iter_mut()
                    .find(|rk| rk.seq == seq)
                    .expect("completed block belongs to a window kernel");
                rk.outstanding -= 1;
            }
        }
        let mut finished: Vec<RunningKernel> = Vec::new();
        let mut i = 0;
        while i < self.window.len() {
            if self.window[i].blocks_left == 0 && self.window[i].outstanding == 0 {
                finished.push(self.window.remove(i));
            } else {
                i += 1;
            }
        }
        for rk in finished {
            if let CommandKind::Kernel(k) = &rk.cmd.kind {
                if let Some(body) = &k.body {
                    body(&mut memory.lock());
                }
                tracer.end(
                    now,
                    "kernel",
                    format!("{}-{}", k.name, rk.seq),
                    rk.cmd.stream.0,
                );
                tracer.record_analysis(AnalysisRecord::KernelEnd {
                    time: now,
                    device: self.dev_ord,
                    label: format!("{}-{}", k.name, rk.seq),
                });
            }
            self.stats.kernels_completed += 1;
            self.streams
                .get_mut(&rk.cmd.stream)
                .expect("stream exists")
                .in_flight = false;
            opened.push(rk.cmd.gate.clone());
            self.last_activity = now;
        }

        // 4. Dispatch.
        let mut grace_deadline: Option<SimTime> = None;
        if self.switching.is_none() {
            loop {
                let mut progress = self.dispatch_blocks(cfg, now);

                let heads = self.eligible_heads();
                if self.current_ctx.is_none() {
                    if let Some(&(_, _, c)) = heads.first() {
                        // First use of the device: adopting a context is free
                        // (creation cost is charged by the runtime layer).
                        self.current_ctx = Some(c);
                    }
                }
                let current = self.current_ctx;
                for (_, sid, cctx) in heads {
                    if Some(cctx) != current {
                        continue;
                    }
                    let stream = self.streams.get_mut(&sid).expect("stream exists");
                    let startable = match stream.queue.front().map(|c| &c.kind) {
                        Some(CommandKind::Kernel(_)) => {
                            self.window.len() < cfg.max_concurrent_kernels as usize
                        }
                        Some(CommandKind::CopyH2D { .. }) => self.h2d.active.is_none(),
                        Some(CommandKind::CopyD2H { .. }) | Some(CommandKind::CopyD2D { .. }) => {
                            if cfg.unified_copy_engine {
                                self.h2d.active.is_none()
                            } else {
                                self.d2h.active.is_none()
                            }
                        }
                        None => false,
                    };
                    if !startable {
                        continue;
                    }
                    let cmd = stream.queue.pop_front().expect("checked non-empty");
                    stream.in_flight = true;
                    match &cmd.kind {
                        CommandKind::Kernel(k) => {
                            let seq = self.next_kernel_seq;
                            self.next_kernel_seq += 1;
                            tracer.begin(now, "kernel", format!("{}-{seq}", k.name), cmd.stream.0);
                            tracer.record_analysis(AnalysisRecord::KernelBegin {
                                time: now,
                                device: self.dev_ord,
                                label: format!("{}-{seq}", k.name),
                            });
                            let blocks = k.grid_blocks;
                            self.window.push(RunningKernel {
                                seq,
                                cmd,
                                blocks_left: blocks,
                                outstanding: 0,
                            });
                            self.stats.max_concurrent_kernels =
                                self.stats.max_concurrent_kernels.max(self.window.len());
                        }
                        CommandKind::CopyH2D { bytes, pinned, .. } => {
                            let mut t = cfg.copy_time(*bytes, true, *pinned);
                            if self.h2d.continues_fused_run(cmd.fuse, now) {
                                t = t.saturating_sub(cfg.dma_latency);
                                self.stats.fused_dma_ops += 1;
                                self.stats.fused_dma_saved += cfg.dma_latency;
                            }
                            tracer.begin(now, "h2d", format!("cmd-{}", cmd.id), cmd.stream.0);
                            tracer.record_analysis(AnalysisRecord::CopyBegin {
                                time: now,
                                device: self.dev_ord,
                                engine: 0,
                                label: format!("cmd-{}", cmd.id),
                            });
                            self.h2d.busy_until = now + t;
                            self.h2d.busy_total += t;
                            self.stats.h2d_busy += t;
                            self.h2d.active = Some(cmd);
                        }
                        CommandKind::CopyD2D { bytes, .. } => {
                            // Two DRAM passes (read + write) plus setup.
                            let t = cfg.dma_latency
                                + SimDuration::from_secs_f64(
                                    2.0 * *bytes as f64 / cfg.dram_bytes_per_sec(),
                                );
                            tracer.begin(now, "d2h", format!("cmd-{}", cmd.id), cmd.stream.0);
                            tracer.record_analysis(AnalysisRecord::CopyBegin {
                                time: now,
                                device: self.dev_ord,
                                engine: if cfg.unified_copy_engine { 0 } else { 1 },
                                label: format!("cmd-{}", cmd.id),
                            });
                            let engine = if cfg.unified_copy_engine {
                                &mut self.h2d
                            } else {
                                &mut self.d2h
                            };
                            engine.busy_until = now + t;
                            engine.busy_total += t;
                            engine.active = Some(cmd);
                        }
                        CommandKind::CopyD2H { bytes, pinned, .. } => {
                            let mut t = cfg.copy_time(*bytes, false, *pinned);
                            let engine = if cfg.unified_copy_engine {
                                &self.h2d
                            } else {
                                &self.d2h
                            };
                            if engine.continues_fused_run(cmd.fuse, now) {
                                t = t.saturating_sub(cfg.dma_latency);
                                self.stats.fused_dma_ops += 1;
                                self.stats.fused_dma_saved += cfg.dma_latency;
                            }
                            tracer.begin(now, "d2h", format!("cmd-{}", cmd.id), cmd.stream.0);
                            tracer.record_analysis(AnalysisRecord::CopyBegin {
                                time: now,
                                device: self.dev_ord,
                                engine: if cfg.unified_copy_engine { 0 } else { 1 },
                                label: format!("cmd-{}", cmd.id),
                            });
                            let engine = if cfg.unified_copy_engine {
                                &mut self.h2d
                            } else {
                                &mut self.d2h
                            };
                            engine.busy_until = now + t;
                            engine.busy_total += t;
                            self.stats.d2h_busy += t;
                            engine.active = Some(cmd);
                        }
                    }
                    self.last_activity = now;
                    progress = true;
                }
                if !progress {
                    break;
                }
            }

            // 4c. Context-switch decision.
            if !self.device_busy() {
                let current = self.current_ctx;
                let foreign = self
                    .eligible_heads()
                    .into_iter()
                    .find(|&(_, _, c)| Some(c) != current);
                if let Some((_, _, target)) = foreign {
                    let deadline = self.last_activity + cfg.ctx_hold_grace;
                    if now >= deadline || current.is_none() {
                        let cost = self
                            .contexts
                            .get(&target)
                            .expect("context exists")
                            .switch_cost;
                        tracer.begin(now, "ctx-switch", format!("to-ctx-{}", target.0), 0);
                        self.switching = Some((target, now + cost));
                        self.stats.ctx_switch_time += cost;
                    } else {
                        grace_deadline = Some(deadline);
                    }
                }
            }
        }

        // 5. Next internal event.
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(match next {
                Some(n) => n.min(t),
                None => t,
            });
        };
        if let Some((_, t)) = self.switching {
            consider(t);
        }
        if self.h2d.active.is_some() {
            consider(self.h2d.busy_until);
        }
        if self.d2h.active.is_some() {
            consider(self.d2h.busy_until);
        }
        for sm in &self.sms {
            if let Some(t) = sm.next_completion(cfg, now) {
                consider(t);
            }
        }
        if let Some(t) = grace_deadline {
            consider(t);
        }
        (opened, next)
    }

    /// Dispatch pending blocks of window kernels (strict FIFO over kernels)
    /// onto the least-loaded fitting SMs. Returns true if anything placed.
    fn dispatch_blocks(&mut self, cfg: &DeviceConfig, now: SimTime) -> bool {
        let mut placed_any = false;
        for rk in &mut self.window {
            if rk.blocks_left == 0 {
                continue;
            }
            let CommandKind::Kernel(k) = &rk.cmd.kind else {
                unreachable!("window holds only kernels")
            };
            while rk.blocks_left > 0 {
                // Least-loaded SM that fits (ties → lowest id).
                let target = self
                    .sms
                    .iter_mut()
                    .filter(|sm| sm.can_fit(cfg, k))
                    .min_by_key(|sm| (sm.resident_blocks(), sm.id));
                match target {
                    Some(sm) => {
                        sm.place(cfg, rk.seq, k, now);
                        rk.blocks_left -= 1;
                        rk.outstanding += 1;
                        placed_any = true;
                    }
                    None => break,
                }
            }
            if rk.blocks_left > 0 {
                // Head-of-line: don't backfill later kernels past a stalled
                // older one (in-order dispatch, like the hardware).
                break;
            }
        }
        placed_any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligible_heads_sorted_by_submission() {
        let cfg = DeviceConfig::test_tiny();
        let mut st = SchedState::new(&cfg);
        let c = st.register_context("c", cfg.ctx_switch);
        let s1 = st.register_stream(c);
        let s2 = st.register_stream(c);
        let k = KernelDesc::new("k", 1, 32);
        st.enqueue(c, s2, CommandKind::Kernel(k.clone()));
        st.enqueue(c, s1, CommandKind::Kernel(k));
        let heads = st.eligible_heads();
        assert_eq!(heads.len(), 2);
        assert_eq!(heads[0].1, s2); // submitted first
        assert!(heads[0].0 < heads[1].0);
    }

    #[test]
    fn stream_head_only_is_eligible() {
        let cfg = DeviceConfig::test_tiny();
        let mut st = SchedState::new(&cfg);
        let c = st.register_context("c", cfg.ctx_switch);
        let s = st.register_stream(c);
        let k = KernelDesc::new("k", 1, 32);
        st.enqueue(c, s, CommandKind::Kernel(k.clone()));
        st.enqueue(c, s, CommandKind::Kernel(k));
        assert_eq!(st.eligible_heads().len(), 1);
    }

    #[test]
    #[should_panic(expected = "different context")]
    fn enqueue_on_foreign_context_stream_panics() {
        let cfg = DeviceConfig::test_tiny();
        let mut st = SchedState::new(&cfg);
        let c1 = st.register_context("c1", cfg.ctx_switch);
        let c2 = st.register_context("c2", cfg.ctx_switch);
        let s1 = st.register_stream(c1);
        st.enqueue(c2, s1, CommandKind::Kernel(KernelDesc::new("k", 1, 32)));
    }
}

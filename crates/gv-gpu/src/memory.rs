//! Device global memory and its allocator.
//!
//! Allocation is first-fit over a free list with coalescing on free, with
//! 256-byte alignment (the CUDA allocation granularity that matters for
//! coalesced accesses). Backing storage is materialized lazily: timing-only
//! experiments allocate hundreds of MB of *simulated* memory without
//! touching host RAM, while functional runs read and write real bytes.

use std::collections::HashMap;

/// Alignment of every device allocation, in bytes.
pub const DEVICE_ALLOC_ALIGN: u64 = 256;

/// A pointer into device global memory: an allocation handle plus an offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr {
    pub(crate) alloc: u64,
    pub(crate) offset: u64,
}

impl DevicePtr {
    /// A pointer `delta` bytes further into the same allocation.
    /// (Deliberately named like pointer arithmetic; this is a plain method,
    /// not `std::ops::Add`.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: u64) -> DevicePtr {
        DevicePtr {
            alloc: self.alloc,
            offset: self.offset + delta,
        }
    }

    /// The allocation this pointer refers into (diagnostics only).
    pub fn allocation_id(self) -> u64 {
        self.alloc
    }
}

/// Errors from device memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Not enough contiguous device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes free (possibly fragmented).
        free: u64,
    },
    /// Pointer did not refer to a live allocation.
    InvalidPointer,
    /// Access past the end of an allocation.
    OutOfBounds {
        /// Offset of the first byte past the access.
        end: u64,
        /// Allocation length.
        len: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory { requested, free } => {
                write!(f, "device OOM: requested {requested} B, {free} B free")
            }
            MemError::InvalidPointer => write!(f, "invalid device pointer"),
            MemError::OutOfBounds { end, len } => {
                write!(f, "device access out of bounds: end {end} > len {len}")
            }
        }
    }
}

impl std::error::Error for MemError {}

struct Allocation {
    region_offset: u64,
    len: u64,
    /// Lazily materialized backing bytes (zero-initialized on first touch).
    data: Option<Vec<u8>>,
}

/// Simulated device global memory.
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    next_id: u64,
    allocs: HashMap<u64, Allocation>,
    /// Sorted, disjoint, coalesced `(offset, len)` free regions.
    free_list: Vec<(u64, u64)>,
    /// Allocation calls observed so far (fault-injection bookkeeping).
    alloc_seq: u64,
    /// Absolute `alloc_seq` indices armed to fail with OOM.
    armed_oom: Vec<u64>,
    /// Quota bytes the virtualization layer has charged against this
    /// device — logical commitments, independent of physical `used`.
    committed: u64,
    /// High-water mark of `committed`.
    peak_committed: u64,
}

impl DeviceMemory {
    /// Device memory of `capacity` bytes, all free.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            used: 0,
            next_id: 1,
            allocs: HashMap::new(),
            free_list: vec![(0, capacity)],
            alloc_seq: 0,
            armed_oom: Vec::new(),
            committed: 0,
            peak_committed: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocs.len()
    }

    /// Allocation calls made so far, successful or not (fault-injection
    /// bookkeeping: the index space [`arm_oom`](Self::arm_oom) counts in).
    pub fn alloc_calls(&self) -> u64 {
        self.alloc_seq
    }

    /// Arm a deterministic out-of-memory fault at the `nth` upcoming
    /// allocation call (`0` = the very next one). The armed call fails with
    /// [`MemError::OutOfMemory`] regardless of actual free space and the
    /// fault is consumed; all other calls behave normally.
    pub fn arm_oom(&mut self, nth: u64) {
        self.armed_oom.push(self.alloc_seq + nth);
    }

    /// Number of armed OOM faults that have not fired yet.
    pub fn armed_oom_count(&self) -> usize {
        self.armed_oom.len()
    }

    /// Charge `bytes` of quota commitment against this device and return
    /// the new committed total. The ledger is logical tenant accounting by
    /// the virtualization layer, separate from physical [`used`](Self::used):
    /// with demand-swap, committed bytes of *idle* working sets may exceed
    /// what is physically resident.
    pub fn charge(&mut self, bytes: u64) -> u64 {
        self.committed += bytes;
        self.peak_committed = self.peak_committed.max(self.committed);
        self.committed
    }

    /// Credit back `bytes` of quota commitment (saturating at zero) and
    /// return the new committed total.
    pub fn credit(&mut self, bytes: u64) -> u64 {
        self.committed = self.committed.saturating_sub(bytes);
        self.committed
    }

    /// Quota bytes currently committed by the virtualization layer.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// High-water mark of [`committed`](Self::committed) over the device's
    /// lifetime; `peak_committed() / capacity()` is the achieved
    /// oversubscription factor.
    pub fn peak_committed(&self) -> u64 {
        self.peak_committed
    }

    /// Allocate `bytes` bytes (rounded up to [`DEVICE_ALLOC_ALIGN`]),
    /// first-fit.
    pub fn alloc(&mut self, bytes: u64) -> Result<DevicePtr, MemError> {
        let len = bytes.max(1).div_ceil(DEVICE_ALLOC_ALIGN) * DEVICE_ALLOC_ALIGN;
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        if let Some(i) = self.armed_oom.iter().position(|&s| s == seq) {
            self.armed_oom.swap_remove(i);
            return Err(MemError::OutOfMemory {
                requested: len,
                free: self.free(),
            });
        }
        let slot = self
            .free_list
            .iter()
            .position(|&(_, flen)| flen >= len)
            .ok_or(MemError::OutOfMemory {
                requested: len,
                free: self.free(),
            })?;
        let (foff, flen) = self.free_list[slot];
        if flen == len {
            self.free_list.remove(slot);
        } else {
            self.free_list[slot] = (foff + len, flen - len);
        }
        self.used += len;
        let id = self.next_id;
        self.next_id += 1;
        self.allocs.insert(
            id,
            Allocation {
                region_offset: foff,
                len,
                data: None,
            },
        );
        Ok(DevicePtr {
            alloc: id,
            offset: 0,
        })
    }

    /// Absolute device offset of the region `ptr`'s allocation occupies
    /// (ignoring the pointer's own offset), or `None` for a dead pointer.
    /// Introspection for tests and invariant checkers: lets them verify
    /// alignment and first-fit placement without reaching into internals.
    pub fn region_offset(&self, ptr: DevicePtr) -> Option<u64> {
        self.allocs.get(&ptr.alloc).map(|a| a.region_offset)
    }

    /// Free the allocation `ptr` points into (any offset is accepted).
    pub fn dealloc(&mut self, ptr: DevicePtr) -> Result<(), MemError> {
        let alloc = self
            .allocs
            .remove(&ptr.alloc)
            .ok_or(MemError::InvalidPointer)?;
        self.used -= alloc.len;
        // Insert into the sorted free list, coalescing neighbours.
        let off = alloc.region_offset;
        let len = alloc.len;
        let idx = self.free_list.partition_point(|&(foff, _)| foff < off);
        self.free_list.insert(idx, (off, len));
        // Coalesce with successor, then predecessor.
        if idx + 1 < self.free_list.len() {
            let (noff, nlen) = self.free_list[idx + 1];
            if off + len == noff {
                self.free_list[idx].1 += nlen;
                self.free_list.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (poff, plen) = self.free_list[idx - 1];
            if poff + plen == self.free_list[idx].0 {
                self.free_list[idx - 1].1 += self.free_list[idx].1;
                self.free_list.remove(idx);
            }
        }
        Ok(())
    }

    fn backing(&mut self, alloc_id: u64) -> Result<(&mut Vec<u8>, u64), MemError> {
        let alloc = self
            .allocs
            .get_mut(&alloc_id)
            .ok_or(MemError::InvalidPointer)?;
        let len = alloc.len;
        let data = alloc.data.get_or_insert_with(|| vec![0u8; len as usize]);
        Ok((data, len))
    }

    /// Write raw bytes at `ptr`.
    pub fn write_bytes(&mut self, ptr: DevicePtr, src: &[u8]) -> Result<(), MemError> {
        let (data, len) = self.backing(ptr.alloc)?;
        let end = ptr.offset + src.len() as u64;
        if end > len {
            return Err(MemError::OutOfBounds { end, len });
        }
        data[ptr.offset as usize..end as usize].copy_from_slice(src);
        Ok(())
    }

    /// Read raw bytes at `ptr`. Untouched (never-written) memory reads as
    /// zeroes, matching a freshly materialized backing store.
    pub fn read_bytes(&mut self, ptr: DevicePtr, dst: &mut [u8]) -> Result<(), MemError> {
        let (data, len) = self.backing(ptr.alloc)?;
        let end = ptr.offset + dst.len() as u64;
        if end > len {
            return Err(MemError::OutOfBounds { end, len });
        }
        dst.copy_from_slice(&data[ptr.offset as usize..end as usize]);
        Ok(())
    }

    /// Write a slice of `f32`s at `ptr` (little-endian device layout).
    pub fn write_f32(&mut self, ptr: DevicePtr, src: &[f32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_bytes(ptr, &bytes)
    }

    /// Read `count` `f32`s from `ptr`.
    pub fn read_f32(&mut self, ptr: DevicePtr, count: usize) -> Result<Vec<f32>, MemError> {
        let mut bytes = vec![0u8; count * 4];
        self.read_bytes(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Write a slice of `f64`s at `ptr`.
    pub fn write_f64(&mut self, ptr: DevicePtr, src: &[f64]) -> Result<(), MemError> {
        let bytes: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_bytes(ptr, &bytes)
    }

    /// Read `count` `f64`s from `ptr`.
    pub fn read_f64(&mut self, ptr: DevicePtr, count: usize) -> Result<Vec<f64>, MemError> {
        let mut bytes = vec![0u8; count * 8];
        self.read_bytes(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Check that `[ptr, ptr+bytes)` lies inside a live allocation without
    /// materializing backing storage (used to validate timing-only copies
    /// at submission).
    pub fn validate_range(&self, ptr: DevicePtr, bytes: u64) -> Result<(), MemError> {
        let alloc = self
            .allocs
            .get(&ptr.alloc)
            .ok_or(MemError::InvalidPointer)?;
        let end = ptr.offset + bytes;
        if end > alloc.len {
            return Err(MemError::OutOfBounds {
                end,
                len: alloc.len,
            });
        }
        Ok(())
    }

    /// Device-to-device copy of `bytes` bytes.
    pub fn copy_within(
        &mut self,
        src: DevicePtr,
        dst: DevicePtr,
        bytes: u64,
    ) -> Result<(), MemError> {
        let mut buf = vec![0u8; bytes as usize];
        self.read_bytes(src, &mut buf)?;
        self.write_bytes(dst, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_up_to_alignment() {
        let mut m = DeviceMemory::new(4096);
        let _p = m.alloc(1).unwrap();
        assert_eq!(m.used(), 256);
    }

    #[test]
    fn charge_credit_ledger_is_independent_of_used() {
        let mut m = DeviceMemory::new(1024);
        assert_eq!(m.committed(), 0);
        assert_eq!(m.charge(2048), 2048, "commitments may oversubscribe");
        assert_eq!(m.charge(512), 2560);
        assert_eq!(m.used(), 0, "ledger does not touch physical usage");
        assert_eq!(m.credit(2048), 512);
        assert_eq!(m.credit(4096), 0, "credit saturates at zero");
        assert_eq!(m.peak_committed(), 2560);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = DeviceMemory::new(1024);
        let _a = m.alloc(512).unwrap();
        match m.alloc(1024) {
            Err(MemError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, 1024);
                assert_eq!(free, 512);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn armed_oom_fires_once_at_the_nth_alloc() {
        let mut m = DeviceMemory::new(1 << 20);
        m.arm_oom(1); // the second upcoming alloc fails
        let a = m.alloc(256).unwrap();
        assert!(matches!(
            m.alloc(256),
            Err(MemError::OutOfMemory { requested: 256, .. })
        ));
        assert_eq!(m.armed_oom_count(), 0);
        // Fault consumed: the next call succeeds again.
        let b = m.alloc(256).unwrap();
        assert_eq!(m.alloc_calls(), 3);
        m.dealloc(a).unwrap();
        m.dealloc(b).unwrap();
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut m = DeviceMemory::new(4096);
        let a = m.alloc(1024).unwrap();
        let b = m.alloc(1024).unwrap();
        let c = m.alloc(1024).unwrap();
        m.dealloc(a).unwrap();
        m.dealloc(c).unwrap();
        m.dealloc(b).unwrap();
        assert_eq!(m.used(), 0);
        // Fully coalesced: a single allocation of the whole capacity fits.
        let all = m.alloc(4096).unwrap();
        m.dealloc(all).unwrap();
    }

    #[test]
    fn write_read_roundtrip_f32() {
        let mut m = DeviceMemory::new(1 << 20);
        let p = m.alloc(1024).unwrap();
        let data: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
        m.write_f32(p, &data).unwrap();
        assert_eq!(m.read_f32(p, 256).unwrap(), data);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let mut m = DeviceMemory::new(1 << 20);
        let p = m.alloc(64).unwrap();
        assert_eq!(m.read_f32(p, 4).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = DeviceMemory::new(1 << 20);
        let p = m.alloc(256).unwrap();
        assert!(matches!(
            m.write_bytes(p.add(250), &[0u8; 10]),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn dangling_pointer_rejected() {
        let mut m = DeviceMemory::new(1 << 20);
        let p = m.alloc(256).unwrap();
        m.dealloc(p).unwrap();
        assert_eq!(m.dealloc(p), Err(MemError::InvalidPointer));
        assert_eq!(
            m.read_bytes(p, &mut [0u8; 4]).unwrap_err(),
            MemError::InvalidPointer
        );
    }

    #[test]
    fn ptr_add_offsets_within_allocation() {
        let mut m = DeviceMemory::new(1 << 20);
        let p = m.alloc(1024).unwrap();
        m.write_f32(p.add(512), &[7.0]).unwrap();
        assert_eq!(m.read_f32(p.add(512), 1).unwrap(), vec![7.0]);
        assert_eq!(m.read_f32(p, 1).unwrap(), vec![0.0]);
    }

    #[test]
    fn copy_within_moves_bytes() {
        let mut m = DeviceMemory::new(1 << 20);
        let a = m.alloc(64).unwrap();
        let b = m.alloc(64).unwrap();
        m.write_f32(a, &[1.0, 2.0]).unwrap();
        m.copy_within(a, b, 8).unwrap();
        assert_eq!(m.read_f32(b, 2).unwrap(), vec![1.0, 2.0]);
    }
}

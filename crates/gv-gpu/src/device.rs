//! The device façade: install a GPU into a simulation and talk to it.
//!
//! [`GpuDevice::install`] spawns the `gpu-sched` scheduler process and hands
//! back a cloneable handle. Host-side simulation processes then create
//! contexts and streams, allocate device memory, and submit asynchronous
//! commands; [`CommandHandle::wait`] blocks the caller in simulated time
//! until the device completes the command.

use std::sync::Arc;

use gv_sim::{Ctx, Pid, SimTime, Simulation};
use parking_lot::Mutex;

use crate::config::{ComputeMode, DeviceConfig};
use crate::engines::{CommandHandle, CommandKind, DeviceStats, GpuCtxId, SchedState, StreamId};
use crate::memory::{DeviceMemory, DevicePtr, MemError};

/// Errors surfaced when submitting a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// A copy referenced device memory that is dead or too small.
    Memory(MemError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Memory(e) => write!(f, "submit failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Error creating a GPU context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxError {
    /// The device is in exclusive compute mode and already has a context
    /// ("all CUDA-capable devices are busy" on real hardware).
    ExclusiveModeBusy,
}

impl std::fmt::Display for CtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtxError::ExclusiveModeBusy => {
                write!(f, "device is in exclusive compute mode and busy")
            }
        }
    }
}

impl std::error::Error for CtxError {}

pub(crate) struct DeviceShared {
    pub(crate) config: DeviceConfig,
    pub(crate) memory: Mutex<DeviceMemory>,
    pub(crate) sched: Mutex<SchedState>,
    pub(crate) sched_pid: Mutex<Option<Pid>>,
    /// Tracer ordinal of this device (disambiguates analysis records).
    pub(crate) ord: u32,
    /// Simulation tracer, kept for Ctx-less call sites (alloc/free).
    pub(crate) tracer: gv_sim::trace::Tracer,
}

/// Handle to a simulated GPU. Cheap to clone; all clones share the device.
#[derive(Clone)]
pub struct GpuDevice {
    pub(crate) shared: Arc<DeviceShared>,
}

impl GpuDevice {
    /// Create the device and spawn its scheduler process into `sim`.
    pub fn install(sim: &mut Simulation, config: DeviceConfig) -> GpuDevice {
        let tracer = sim.tracer();
        let ord = tracer.register_device(config.max_concurrent_kernels);
        let mut sched = SchedState::new(&config);
        sched.dev_ord = ord;
        let shared = Arc::new(DeviceShared {
            memory: Mutex::new(DeviceMemory::new(config.global_mem_bytes)),
            sched: Mutex::new(sched),
            sched_pid: Mutex::new(None),
            config,
            ord,
            tracer,
        });
        let dev = GpuDevice {
            shared: Arc::clone(&shared),
        };
        let pid = sim.spawn("gpu-sched", {
            let shared = Arc::clone(&shared);
            move |ctx| scheduler_main(ctx, shared)
        });
        *shared.sched_pid.lock() = Some(pid);
        dev
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.shared.config
    }

    /// Tracer ordinal assigned at install: the `device` field carried by
    /// this device's analysis records.
    pub fn tracer_ordinal(&self) -> u32 {
        self.shared.ord
    }

    /// Register a GPU context using the device's default switch cost.
    /// (Creation *time* is charged by the runtime layer, serialized through
    /// the driver — see `gv-cuda`.) Panics in exclusive compute mode when a
    /// context exists; use [`try_create_context`](Self::try_create_context)
    /// to handle that case.
    pub fn create_context(&self, name: &str) -> GpuCtxId {
        let cost = self.shared.config.ctx_switch;
        self.try_create_context(name, cost)
            .expect("device in exclusive compute mode is busy")
    }

    /// Register a GPU context with an explicit switch cost (the paper's
    /// Table II measures per-benchmark switch costs; benchmarks carry them).
    pub fn create_context_with_switch_cost(
        &self,
        name: &str,
        switch_cost: gv_sim::SimDuration,
    ) -> GpuCtxId {
        self.try_create_context(name, switch_cost)
            .expect("device in exclusive compute mode is busy")
    }

    /// Fallible context registration honouring the compute mode.
    pub fn try_create_context(
        &self,
        name: &str,
        switch_cost: gv_sim::SimDuration,
    ) -> Result<GpuCtxId, CtxError> {
        let mut sched = self.shared.sched.lock();
        if self.shared.config.compute_mode == ComputeMode::Exclusive && sched.context_count() > 0 {
            return Err(CtxError::ExclusiveModeBusy);
        }
        Ok(sched.register_context(name, switch_cost))
    }

    /// Create an in-order command stream within `ctx`.
    pub fn create_stream(&self, ctx: GpuCtxId) -> StreamId {
        self.shared.sched.lock().register_stream(ctx)
    }

    /// Allocate device global memory (instantaneous driver call).
    pub fn alloc(&self, bytes: u64) -> Result<DevicePtr, MemError> {
        let ptr = self.shared.memory.lock().alloc(bytes)?;
        self.shared
            .tracer
            .record_analysis(gv_sim::AnalysisRecord::Alloc {
                time: self.shared.tracer.now_hint(),
                device: self.shared.ord,
                id: ptr.allocation_id(),
                bytes,
            });
        Ok(ptr)
    }

    /// Free a device allocation.
    pub fn free(&self, ptr: DevicePtr) -> Result<(), MemError> {
        self.shared.memory.lock().dealloc(ptr)?;
        self.shared
            .tracer
            .record_analysis(gv_sim::AnalysisRecord::Free {
                time: self.shared.tracer.now_hint(),
                device: self.shared.ord,
                id: ptr.allocation_id(),
            });
        Ok(())
    }

    /// Direct access to device memory, for seeding inputs and verifying
    /// outputs outside the timed path (tests and harness plumbing).
    pub fn with_memory<R>(&self, f: impl FnOnce(&mut DeviceMemory) -> R) -> R {
        f(&mut self.shared.memory.lock())
    }

    /// Arm a deterministic OOM fault at the `nth` upcoming device
    /// allocation (fault injection; see [`DeviceMemory::arm_oom`]).
    pub fn arm_oom(&self, nth: u64) {
        self.shared.memory.lock().arm_oom(nth);
    }

    /// Validate a command's memory references ahead of enqueue, so
    /// completion cannot fail.
    fn validate_kind(&self, kind: &CommandKind) -> Result<(), SubmitError> {
        match kind {
            CommandKind::CopyH2D {
                dst, bytes, data, ..
            } => {
                if let Some(d) = data {
                    assert_eq!(
                        d.len() as u64,
                        *bytes,
                        "functional H2D payload length must equal byte count"
                    );
                }
                self.shared
                    .memory
                    .lock()
                    .validate_range(*dst, *bytes)
                    .map_err(SubmitError::Memory)
            }
            CommandKind::CopyD2H { src, bytes, .. } => self
                .shared
                .memory
                .lock()
                .validate_range(*src, *bytes)
                .map_err(SubmitError::Memory),
            CommandKind::CopyD2D {
                src, dst, bytes, ..
            } => {
                let mem = self.shared.memory.lock();
                mem.validate_range(*src, *bytes)
                    .and_then(|()| mem.validate_range(*dst, *bytes))
                    .map_err(SubmitError::Memory)
            }
            CommandKind::Kernel(_) => Ok(()),
        }
    }

    /// Submit an asynchronous command to `stream`. Copy ranges are
    /// validated now, so completion cannot fail.
    pub fn submit(
        &self,
        ctx: &mut Ctx,
        gpu_ctx: GpuCtxId,
        stream: StreamId,
        kind: CommandKind,
    ) -> Result<CommandHandle, SubmitError> {
        self.validate_kind(&kind)?;
        let handle = self.shared.sched.lock().enqueue(gpu_ctx, stream, kind);
        self.kick(ctx);
        Ok(handle)
    }

    /// Submit several commands as **one coalesced batch**: every item is
    /// validated up front, then all are enqueued under a single scheduler
    /// lock with consecutive command ids and a shared coalesce-group tag,
    /// followed by one scheduler kick. Copy members of the group that run
    /// back-to-back on a DMA engine pay the per-op setup latency only once
    /// (the follower ops run at pure bandwidth cost); each member keeps its
    /// own [`CommandHandle`], so completion fans out per sub-op exactly as
    /// with individual submission. On validation failure nothing is
    /// enqueued.
    pub fn submit_batch(
        &self,
        ctx: &mut Ctx,
        gpu_ctx: GpuCtxId,
        items: Vec<(StreamId, CommandKind)>,
    ) -> Result<Vec<CommandHandle>, SubmitError> {
        for (_, kind) in &items {
            self.validate_kind(kind)?;
        }
        let handles = {
            let mut sched = self.shared.sched.lock();
            let fuse = sched.alloc_fuse_id();
            items
                .into_iter()
                .map(|(stream, kind)| sched.enqueue_fused(gpu_ctx, stream, kind, Some(fuse)))
                .collect()
        };
        self.kick(ctx);
        Ok(handles)
    }

    /// Is `stream` drained (no queued or in-flight command)?
    pub fn stream_idle(&self, stream: StreamId) -> bool {
        self.shared.sched.lock().stream_idle(stream)
    }

    /// Snapshot device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.shared.sched.lock().stats()
    }

    /// Stop the scheduler process so the simulation can complete. Call once
    /// all device work is done.
    pub fn shutdown(&self, ctx: &Ctx) {
        self.shared.sched.lock().shutdown = true;
        self.kick(ctx);
    }

    /// Wake the scheduler (submission or shutdown).
    fn kick(&self, ctx: &Ctx) {
        let pid = self
            .sched_pid()
            .expect("device scheduler not yet installed");
        ctx.unpark(pid);
    }

    fn sched_pid(&self) -> Option<Pid> {
        *self.shared.sched_pid.lock()
    }
}

/// The `gpu-sched` process: repeatedly settle device state at `now`, open
/// completion gates, then sleep until the next internal event or external
/// submission.
fn scheduler_main(ctx: &mut Ctx, shared: Arc<DeviceShared>) {
    loop {
        if shared.sched.lock().shutdown {
            break;
        }
        let now = ctx.now();
        let tracer = ctx.tracer().clone();
        let (opened, next) = {
            let mut sched = shared.sched.lock();
            sched.step(&shared.config, &shared.memory, &tracer, now)
        };
        for gate in opened {
            gate.open(ctx);
        }
        match next {
            Some(t) => {
                let now = ctx.now();
                if t > now {
                    ctx.park_timeout(t.duration_since(now));
                }
                // t <= now: immediately re-step.
            }
            None => {
                ctx.park();
            }
        }
    }
}

/// Convenience: the simulated time at which the device last did anything —
/// used by tests to reason about makespans.
pub fn device_now(_ctx: &Ctx) -> SimTime {
    _ctx.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CommandKind;
    use crate::kernel_desc::{estimate_kernel_time, KernelDesc};
    use gv_sim::{SimDuration, Simulation};

    fn tiny() -> DeviceConfig {
        DeviceConfig::test_tiny()
    }

    /// One process, one stream: H2D → kernel → D2H must serialize in-order.
    #[test]
    fn single_stream_runs_in_order() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p0");
            let stream = d.create_stream(gctx);
            let buf = d.alloc(1 << 20).unwrap();
            // 1 MiB pinned at 1 GB/s ≈ 1.049 ms + 1 µs latency.
            let h2d = d
                .submit(
                    ctx,
                    gctx,
                    stream,
                    CommandKind::CopyH2D {
                        dst: buf,
                        bytes: 1 << 20,
                        data: None,
                        pinned: true,
                    },
                )
                .unwrap();
            let mut k = KernelDesc::new("k", 2, 32).regs(1);
            k.block_demand_cycles = 1.0e6; // 1 ms at full rate, eff 1/4 → 4 ms
            let kt = estimate_kernel_time(d.config(), &k);
            let kh = d.submit(ctx, gctx, stream, CommandKind::Kernel(k)).unwrap();
            let d2h = d
                .submit(
                    ctx,
                    gctx,
                    stream,
                    CommandKind::CopyD2H {
                        src: buf,
                        bytes: 1 << 20,
                        sink: None,
                        sink_offset: 0,
                        pinned: true,
                    },
                )
                .unwrap();
            h2d.wait(ctx);
            let t_h2d = ctx.now();
            kh.wait(ctx);
            let t_k = ctx.now();
            d2h.wait(ctx);
            let t_d2h = ctx.now();
            assert!(t_h2d < t_k && t_k < t_d2h);
            // Kernel time matches the analytic oracle.
            let measured = t_k.duration_since(t_h2d);
            let err = (measured.as_secs_f64() - kt.as_secs_f64()).abs() / kt.as_secs_f64();
            assert!(err < 1e-6, "kernel time {measured} vs oracle {kt}");
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// Two streams in one context: H2D of stream B overlaps kernel of A
    /// (copy/compute overlap), and both kernels run concurrently.
    #[test]
    fn same_context_streams_overlap() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s1 = d.create_stream(gctx);
            let s2 = d.create_stream(gctx);
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 8.0e6; // 8 ms at full rate; eff 1/4 → 32 ms
            let k1 = d
                .submit(ctx, gctx, s1, CommandKind::Kernel(k.clone()))
                .unwrap();
            let k2 = d.submit(ctx, gctx, s2, CommandKind::Kernel(k)).unwrap();
            k1.wait(ctx);
            k2.wait(ctx);
            // Two 1-block kernels land on different SMs → fully concurrent:
            // makespan ≈ one kernel, not two.
            let t = ctx.now().as_millis_f64();
            assert!(t < 40.0, "expected concurrency, makespan {t} ms");
            let stats = d.stats();
            assert_eq!(stats.kernels_completed, 2);
            assert_eq!(stats.max_concurrent_kernels, 2);
            assert_eq!(stats.ctx_switches, 0);
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// Two contexts serialize and pay the switch cost.
    #[test]
    fn cross_context_serializes_with_switch() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let c1 = d.create_context("p1");
            let c2 = d.create_context("p2");
            let s1 = d.create_stream(c1);
            let s2 = d.create_stream(c2);
            let mut k = KernelDesc::new("k", 1, 32).regs(1);
            k.block_demand_cycles = 1.0e6; // 4 ms with eff 1/4
            let k1 = d
                .submit(ctx, c1, s1, CommandKind::Kernel(k.clone()))
                .unwrap();
            let k2 = d.submit(ctx, c2, s2, CommandKind::Kernel(k)).unwrap();
            k1.wait(ctx);
            let t1 = ctx.now().as_millis_f64();
            k2.wait(ctx);
            let t2 = ctx.now().as_millis_f64();
            // k1: 4 ms. Then grace (0.05 ms) + switch (5 ms) + k2 (4 ms).
            assert!((t1 - 4.0).abs() < 0.1, "t1 = {t1}");
            assert!((t2 - 13.05).abs() < 0.1, "t2 = {t2}");
            assert_eq!(d.stats().ctx_switches, 1);
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// H2D and D2H engines overlap (bi-directional transfers).
    #[test]
    fn bidirectional_copies_overlap() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s1 = d.create_stream(gctx);
            let s2 = d.create_stream(gctx);
            let a = d.alloc(8 << 20).unwrap();
            let b = d.alloc(8 << 20).unwrap();
            let bytes = 8u64 << 20; // 8 MiB at 1 GB/s ≈ 8.39 ms
            let h1 = d
                .submit(
                    ctx,
                    gctx,
                    s1,
                    CommandKind::CopyH2D {
                        dst: a,
                        bytes,
                        data: None,
                        pinned: true,
                    },
                )
                .unwrap();
            let h2 = d
                .submit(
                    ctx,
                    gctx,
                    s2,
                    CommandKind::CopyD2H {
                        src: b,
                        bytes,
                        sink: None,
                        sink_offset: 0,
                        pinned: true,
                    },
                )
                .unwrap();
            h1.wait(ctx);
            h2.wait(ctx);
            let t = ctx.now().as_millis_f64();
            assert!(t < 9.0, "bidirectional copies should overlap, got {t} ms");
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// Same-direction copies serialize on the single H2D engine.
    #[test]
    fn same_direction_copies_serialize() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s1 = d.create_stream(gctx);
            let s2 = d.create_stream(gctx);
            let a = d.alloc(8 << 20).unwrap();
            let b = d.alloc(8 << 20).unwrap();
            let bytes = 8u64 << 20;
            let h1 = d
                .submit(
                    ctx,
                    gctx,
                    s1,
                    CommandKind::CopyH2D {
                        dst: a,
                        bytes,
                        data: None,
                        pinned: true,
                    },
                )
                .unwrap();
            let h2 = d
                .submit(
                    ctx,
                    gctx,
                    s2,
                    CommandKind::CopyH2D {
                        dst: b,
                        bytes,
                        data: None,
                        pinned: true,
                    },
                )
                .unwrap();
            h1.wait(ctx);
            h2.wait(ctx);
            let t = ctx.now().as_millis_f64();
            assert!(t > 16.0, "same-direction copies must serialize, got {t} ms");
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// Functional copies move real bytes through device memory.
    #[test]
    fn functional_roundtrip_h2d_d2h() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s = d.create_stream(gctx);
            let buf = d.alloc(16).unwrap();
            let payload = Arc::new(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
            let sink: crate::engines::HostSink = Arc::new(Mutex::new(Vec::new()));
            d.submit(
                ctx,
                gctx,
                s,
                CommandKind::CopyH2D {
                    dst: buf,
                    bytes: 8,
                    data: Some(payload.clone()),
                    pinned: true,
                },
            )
            .unwrap();
            let d2h = d
                .submit(
                    ctx,
                    gctx,
                    s,
                    CommandKind::CopyD2H {
                        src: buf,
                        bytes: 8,
                        sink: Some(sink.clone()),
                        sink_offset: 0,
                        pinned: true,
                    },
                )
                .unwrap();
            d2h.wait(ctx);
            assert_eq!(*sink.lock(), *payload);
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// Submitting a copy that overruns its allocation fails fast.
    #[test]
    fn submit_validates_ranges() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s = d.create_stream(gctx);
            let buf = d.alloc(256).unwrap();
            let err = d
                .submit(
                    ctx,
                    gctx,
                    s,
                    CommandKind::CopyH2D {
                        dst: buf,
                        bytes: 512,
                        data: None,
                        pinned: true,
                    },
                )
                .unwrap_err();
            assert!(matches!(
                err,
                SubmitError::Memory(MemError::OutOfBounds { .. })
            ));
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// A big grid is processed in waves and matches the analytic oracle.
    #[test]
    fn multi_wave_kernel_matches_oracle() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let s = d.create_stream(gctx);
            // tiny device: 2 SMs × 2 blocks resident; 12 blocks → 3 waves.
            let mut k = KernelDesc::new("waves", 12, 64).regs(1);
            k.block_demand_cycles = 5.0e5;
            let oracle = estimate_kernel_time(d.config(), &k);
            let h = d.submit(ctx, gctx, s, CommandKind::Kernel(k)).unwrap();
            h.wait(ctx);
            let t = ctx.now();
            let err = (t.as_secs_f64() - oracle.as_secs_f64()).abs() / oracle.as_secs_f64();
            assert!(err < 1e-6, "engine {t} vs oracle {oracle}");
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// The 16-kernel (here 4) window limit throttles admission.
    #[test]
    fn concurrent_kernel_window_is_limited() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            let gctx = d.create_context("p");
            let streams: Vec<_> = (0..6).map(|_| d.create_stream(gctx)).collect();
            let mut k = KernelDesc::new("w", 1, 32).regs(1);
            k.block_demand_cycles = 1.0e6;
            let handles: Vec<_> = streams
                .iter()
                .map(|&s| {
                    d.submit(ctx, gctx, s, CommandKind::Kernel(k.clone()))
                        .unwrap()
                })
                .collect();
            for h in &handles {
                h.wait(ctx);
            }
            let stats = d.stats();
            assert_eq!(stats.kernels_completed, 6);
            assert!(stats.max_concurrent_kernels <= 4); // test_tiny window
            d.shutdown(ctx);
        });
        sim.run().unwrap();
    }

    /// A coalesced batch of same-direction copies pays the DMA setup
    /// latency once: back-to-back followers run at pure bandwidth cost.
    #[test]
    fn batched_copies_elide_follower_setup_latency() {
        let run = |batched: bool| -> (f64, DeviceStats) {
            let mut sim = Simulation::new();
            let dev = GpuDevice::install(&mut sim, tiny());
            let d = dev.clone();
            let done = Arc::new(Mutex::new(0.0f64));
            let out = Arc::clone(&done);
            sim.spawn("host", move |ctx| {
                let gctx = d.create_context("p");
                let streams: Vec<_> = (0..3).map(|_| d.create_stream(gctx)).collect();
                let bufs: Vec<_> = (0..3).map(|_| d.alloc(1 << 20).unwrap()).collect();
                let kind = |i: usize| CommandKind::CopyH2D {
                    dst: bufs[i],
                    bytes: 1 << 20,
                    data: None,
                    pinned: true,
                };
                let handles: Vec<_> = if batched {
                    d.submit_batch(ctx, gctx, (0..3).map(|i| (streams[i], kind(i))).collect())
                        .unwrap()
                } else {
                    (0..3)
                        .map(|i| d.submit(ctx, gctx, streams[i], kind(i)).unwrap())
                        .collect()
                };
                for h in &handles {
                    h.wait(ctx);
                }
                *out.lock() = ctx.now().as_millis_f64();
                d.shutdown(ctx);
            });
            sim.run().unwrap();
            let t = *done.lock();
            (t, dev.stats())
        };
        let (t_plain, s_plain) = run(false);
        let (t_batch, s_batch) = run(true);
        assert_eq!(s_plain.fused_dma_ops, 0);
        assert_eq!(
            s_batch.fused_dma_ops, 2,
            "two followers fuse behind the head"
        );
        let saved_ms = tiny().dma_latency.as_millis_f64() * 2.0;
        assert!(
            (t_plain - t_batch - saved_ms).abs() < 1e-9,
            "batch must be exactly two setup latencies faster: plain {t_plain} batch {t_batch}"
        );
        assert_eq!(s_batch.h2d_transfers, 3, "per-sub-op completion fan-out");
    }

    /// Shutdown lets the simulation finish even though the scheduler would
    /// otherwise park forever.
    #[test]
    fn shutdown_terminates_scheduler() {
        let mut sim = Simulation::new();
        let dev = GpuDevice::install(&mut sim, tiny());
        let d = dev.clone();
        sim.spawn("host", move |ctx| {
            ctx.hold(SimDuration::from_millis(1));
            d.shutdown(ctx);
        });
        let s = sim.run().unwrap();
        assert!(s.completed);
    }
}

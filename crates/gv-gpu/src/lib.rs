//! # gv-gpu — Fermi-class GPU device model
//!
//! A discrete-event, cycle-approximate model of an NVIDIA Fermi GPU
//! (Tesla C2070 preset), substituting for the physical GPU of the paper's
//! testbed. It models exactly the mechanisms the paper's results hinge on:
//!
//! * **SM-level block execution** with Fermi occupancy limits and a
//!   processor-sharing timing model with memory-latency-hiding efficiency
//!   ([`sm`]);
//! * **concurrent kernel execution** (≤16 kernels of one context) and
//!   in-order streams ([`engines`]);
//! * **two DMA engines** — H2D/D2H overlap each other and compute;
//! * **GPU contexts** that serialize the device and charge switch costs —
//!   the overhead the paper's virtualization eliminates;
//! * **device global memory** with a real allocator and optional functional
//!   storage so kernels compute checkable results ([`memory`]).
//!
//! Calibration constants live in [`DeviceConfig::tesla_c2070_paper`] and are
//! tied to the paper's Table II (see `DESIGN.md` §6).
//!
//! ```
//! use gv_gpu::{estimate_kernel_time, DeviceConfig, KernelDesc};
//! use gv_sim::SimDuration;
//!
//! let cfg = DeviceConfig::tesla_c2070_paper();
//! // The paper's EP kernel: 4 blocks of 128 threads, calibrated to its
//! // Table II compute time — the analytic oracle inverts exactly.
//! let k = KernelDesc::new("ep", 4, 128)
//!     .regs(24)
//!     .with_target_time(&cfg, SimDuration::from_millis_f64(8951.346));
//! let t = estimate_kernel_time(&cfg, &k);
//! assert!((t.as_millis_f64() - 8951.346).abs() < 0.001);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod engines;
pub mod kernel_desc;
pub mod memory;
pub mod sm;

pub use config::{ComputeMode, DeviceConfig};
pub use device::{CtxError, GpuDevice, SubmitError};
pub use engines::{
    CommandHandle, CommandKind, DeviceStats, GpuCtxId, HostData, HostSink, StreamId,
};
pub use kernel_desc::{
    blocks_per_sm, demand_for_kernel_time, estimate_kernel_time, occupancy, CostSpec, KernelBody,
    KernelDesc,
};
pub use memory::{DeviceMemory, DevicePtr, MemError, DEVICE_ALLOC_ALIGN};
